//! The `ccl-pipeline` execution layer end to end: a raster behind a
//! device-paced decoder (a fixed stall per band, like a disk seek or
//! sensor readout — the common generation-bound case) run three ways:
//! synchronous, with band prefetch (decode ∥ label), and as the full
//! three-stage pipeline (decode ∥ scan ∥ merge) — with identical
//! analysis output and the wall-time win printed. Hiding device latency
//! needs no spare core, so the win shows on any machine.
//!
//! ```text
//! cargo run --release --example pipeline_prefetch
//! ```

use std::time::{Duration, Instant};

use paremsp::datasets::synth::stream::bernoulli_stream;
use paremsp::pipeline::PacedRows;
use paremsp::prelude::{
    analyze_stream, analyze_tiles, analyze_tiles_pipelined, GridSource, PrefetchRows,
    PrefetchTiles, StripConfig, TileGridConfig,
};

const W: usize = 512;
const H: usize = 4096;
const BAND: usize = 256;
const TILE: usize = 256;
/// One simulated device stall per delivered band.
const LATENCY: Duration = Duration::from_millis(4);

fn source() -> PacedRows<paremsp::datasets::synth::stream::RowStream> {
    PacedRows::new(bernoulli_stream(W, H, 0.5, 42), LATENCY)
}

fn main() {
    let mpix = (W * H) as f64 / 1e6;
    println!(
        "{W}x{H} raster ({mpix:.1} Mpixel) behind a {:.0} ms/band decoder: \
         a generation-bound workload\n",
        LATENCY.as_secs_f64() * 1e3
    );

    // 1. Row bands, synchronous: the labeler idles through every device
    //    stall, the device idles through every labeled band.
    let t = Instant::now();
    let mut src = source();
    let (sync_records, sync_stats) =
        analyze_stream(&mut src, BAND, StripConfig::default()).expect("synchronous stream");
    let sync_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "rows, synchronous:        {sync_ms:7.1} ms  ({} components)",
        sync_stats.components
    );

    // 2. Row bands behind a prefetcher: the next band decodes on a
    //    worker thread while the current one labels.
    let t = Instant::now();
    let mut prefetched = PrefetchRows::new(source(), BAND);
    let (pf_records, pf_stats) =
        analyze_stream(&mut prefetched, BAND, StripConfig::default()).expect("prefetched stream");
    let pf_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "rows, decode∥label:       {pf_ms:7.1} ms  ({:.2}x)",
        sync_ms / pf_ms
    );
    assert_eq!(pf_records, sync_records, "prefetching changes nothing");
    assert_eq!(pf_stats.components, sync_stats.components);

    // 3. Tile grid, synchronous vs the full three-stage pipeline:
    //    decode (worker) ∥ scan tiles (worker) ∥ merge seams (main).
    let t = Instant::now();
    let mut grid = GridSource::new(source(), TILE, TILE);
    let (tiles_sync_records, _) =
        analyze_tiles(&mut grid, TileGridConfig::default()).expect("synchronous tiles");
    let tiles_sync_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("tiles, synchronous:       {tiles_sync_ms:7.1} ms");

    let t = Instant::now();
    let grid = GridSource::new(source(), TILE, TILE);
    let mut staged = PrefetchTiles::new(grid);
    let (tiles_pipe_records, tiles_pipe_stats) =
        analyze_tiles_pipelined(&mut staged, TileGridConfig::default()).expect("pipelined tiles");
    let tiles_pipe_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "tiles, decode∥scan∥merge: {tiles_pipe_ms:7.1} ms  ({:.2}x)",
        tiles_sync_ms / tiles_pipe_ms
    );
    assert_eq!(
        tiles_pipe_records, tiles_sync_records,
        "pipelining changes nothing"
    );
    println!(
        "\npipelined residency: {} pixel rows (≤ {} = 2 tile rows + carry) ✓",
        tiles_pipe_stats.peak_resident_rows,
        2 * TILE + 1
    );
    assert!(tiles_pipe_stats.peak_resident_rows <= 2 * TILE + 1);
}
