//! Land-cover analysis: the NLCD-style workload of the paper's
//! evaluation. Generates a large land-cover-like mask, labels it in
//! parallel with PAREMSP, and reports per-phase timings and the largest
//! cover patches — the kind of query (patch size distribution) NLCD
//! rasters are labeled for in practice.
//!
//! ```text
//! cargo run --release --example landcover_analysis [-- <megapixels>]
//! ```

use paremsp::core::par::{paremsp_with, ParemspConfig};
use paremsp::datasets::synth::landcover::{landcover, LandcoverParams};

fn main() {
    let megapixels: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8.0);
    let height = ((megapixels * 1.0e6) / (4.0 / 3.0)).sqrt().round() as usize;
    let width = (megapixels * 1.0e6 / height as f64).round() as usize;
    eprintln!("generating {width}x{height} land-cover mask…");
    let img = landcover(width, height, LandcoverParams::default(), 2026);
    println!(
        "raster: {width}x{height} ({:.1} MB), cover fraction {:.1}%",
        img.raster_bytes() as f64 / 1e6,
        img.density() * 100.0
    );

    let threads = std::thread::available_parallelism().map_or(8, |n| n.get());
    let (labels, timings) = paremsp_with(&img, &ParemspConfig::with_threads(threads));
    println!(
        "PAREMSP({} threads): {} patches in {:.1} ms \
         (scan {:.1} + merge {:.1} + flatten {:.1} + relabel {:.1})",
        threads,
        labels.num_components(),
        timings.total().as_secs_f64() * 1e3,
        timings.scan.as_secs_f64() * 1e3,
        timings.merge.as_secs_f64() * 1e3,
        timings.flatten.as_secs_f64() * 1e3,
        timings.relabel.as_secs_f64() * 1e3,
    );

    // Patch size distribution: the top 5 patches and a size histogram.
    let mut sizes: Vec<(u32, usize)> = labels
        .component_sizes()
        .into_iter()
        .enumerate()
        .skip(1)
        .map(|(l, s)| (l as u32, s))
        .collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\nlargest cover patches:");
    for (label, size) in sizes.iter().take(5) {
        println!(
            "  patch {label}: {size} px ({:.2}% of raster)",
            *size as f64 / img.len() as f64 * 100.0
        );
    }
    let mut histogram = [0usize; 7]; // decades: 1, 10, 100, …
    for &(_, s) in &sizes {
        histogram[(s as f64).log10().floor().min(6.0) as usize] += 1;
    }
    println!("\npatch size histogram (by decade):");
    for (decade, count) in histogram.iter().enumerate() {
        if *count > 0 {
            println!("  10^{decade}..10^{} px: {count} patches", decade + 1);
        }
    }
}
