//! Fully out-of-core labeling with `ccl-tiles`: a raster streamed from a
//! generator in 64×64 tiles (never resident as a whole), labels spilled
//! to disk as 16-bit PGM tiles with a sidecar merge table, final ids
//! patched on close — then the spill is read back and verified against
//! whole-image AREMSP.
//!
//! ```text
//! cargo run --release --example tiles_outofcore
//! ```

use paremsp::datasets::synth::noise::bernoulli;
use paremsp::datasets::synth::stream::bernoulli_stream;
use paremsp::prelude::{
    aremsp, labelings_equivalent, read_spilled_label_image, spill_tiles, GridSource, SpillFormat,
    TileGridConfig,
};

fn main() {
    let (w, h, tile) = (512usize, 1536usize, 64usize);
    let dir = std::env::temp_dir().join(format!("paremsp_tiles_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Stream the image as tile rows and label it; every labeled tile
    //    spills to disk the moment it is finished.
    let source = bernoulli_stream(w, h, 0.4, 11);
    let mut grid = GridSource::new(source, tile, tile);
    let (manifest, stats) = spill_tiles(
        &mut grid,
        TileGridConfig::default(),
        &dir,
        SpillFormat::Pgm16,
    )
    .expect("spill pipeline");
    println!(
        "labeled {}x{} ({:.1} Mpixel) in {}x{} tiles: {} components, \
         peak {} resident pixel rows (≤ {} = 2 tile rows)",
        w,
        h,
        (w * h) as f64 / 1e6,
        tile,
        tile,
        stats.components,
        stats.peak_resident_rows,
        2 * tile,
    );
    println!(
        "spilled {} PGM16 tiles + sidecar with {} merge entries to {}",
        manifest.tiles.len(),
        manifest.merges.len(),
        dir.display(),
    );
    assert!(stats.peak_resident_rows <= 2 * tile);

    // 2. Reconstruct the exact partition from the spilled tiles + merge
    //    table and verify against the whole-image reference.
    let spilled = read_spilled_label_image(&dir).expect("read spill back");
    let reference = aremsp(&bernoulli(w, h, 0.4, 11));
    assert_eq!(spilled.num_components(), reference.num_components());
    assert!(labelings_equivalent(&spilled, &reference));
    println!(
        "spill reconstructs the exact whole-image partition ({} components) ✓",
        reference.num_components()
    );

    std::fs::remove_dir_all(&dir).expect("clean up spill dir");
}
