//! The full image pipeline of the paper's Figure 3: a color image is
//! converted to grayscale, binarized with `im2bw(0.5)`, labeled, and the
//! result written as Netpbm files you can open in any image viewer:
//!
//! * `target/pipeline_input.ppm`  — the synthetic color scene,
//! * `target/pipeline_binary.pbm` — the binarized image (Figure 3b),
//! * `target/pipeline_labels.ppm` — pseudo-colored components.
//!
//! ```text
//! cargo run --release --example pipeline_netpbm
//! ```

use ::paremsp::core::par::paremsp;
use ::paremsp::image::io::{pbm, ppm};
use ::paremsp::image::threshold::im2bw;
use ::paremsp::image::RgbImage;

fn main() -> std::io::Result<()> {
    // A synthetic color scene: bright disks on a dark gradient background.
    let (w, h) = (640usize, 480usize);
    let img = RgbImage::from_fn(w, h, |r, c| {
        let bg = (40 + (r * 40 / h)) as u8;
        // deterministic "objects": bright disks on a grid with varying radii
        let (gr, gc) = (r / 80, c / 80);
        let (cy, cx) = (gr * 80 + 40, gc * 80 + 40);
        let rad = 12 + ((gr * 7 + gc * 13) % 20);
        let d2 = (r as isize - cy as isize).pow(2) + (c as isize - cx as isize).pow(2);
        if d2 < (rad * rad) as isize {
            [220, 200 - (gr * 20) as u8, (60 + gc * 25) as u8]
        } else {
            [bg / 2, bg, bg / 3]
        }
    });

    // Figure 3 pipeline: RGB -> gray (Rec.601) -> im2bw(0.5).
    let gray = img.to_gray();
    let binary = im2bw(&gray, 0.5);
    println!("binarized: {:.1}% foreground", binary.density() * 100.0);

    // Label in parallel.
    let labels = paremsp(&binary, 8);
    println!("{} components", labels.num_components());

    std::fs::create_dir_all("target")?;
    std::fs::write("target/pipeline_input.ppm", ppm::write_binary(&img))?;
    std::fs::write("target/pipeline_binary.pbm", pbm::write_binary(&binary))?;
    std::fs::write(
        "target/pipeline_labels.ppm",
        ppm::write_label_colormap(labels.as_slice(), labels.width(), labels.height()),
    )?;
    println!("wrote target/pipeline_input.ppm, pipeline_binary.pbm, pipeline_labels.ppm");

    // Round-trip check: the PBM we wrote parses back identically.
    let reread =
        pbm::read(&std::fs::read("target/pipeline_binary.pbm")?).expect("round-trip parse");
    assert_eq!(reread, binary);
    println!("PBM round-trip verified");
    Ok(())
}
