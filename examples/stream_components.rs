//! Streaming component analysis: label a raster far taller than the
//! working set, without ever materializing it.
//!
//! ```text
//! cargo run --release --example stream_components
//! ```
//!
//! Two pipelines:
//!
//! 1. A 512 × 8192 synthetic land-cover raster streamed straight from the
//!    generator in 256-row bands — component statistics (count, areas,
//!    bounding boxes, centroids) computed on the fly while the labeler
//!    holds at most 257 pixel rows.
//! 2. The same engine fed from a PGM byte stream (incremental decode +
//!    `im2bw` per band), proving the file path is O(band) end to end.

use ::paremsp::datasets::synth::landcover::LandcoverParams;
use ::paremsp::datasets::synth::stream::landcover_stream;
use ::paremsp::image::io::pgm;
use ::paremsp::image::GrayImage;
use ::paremsp::prelude::{analyze_stream, StripConfig};
use ::paremsp::stream::PgmSource;

fn main() {
    // --- 1. generator -> strip labeler, never materialized ------------
    let (width, height, band) = (512usize, 8192usize, 256usize);
    let params = LandcoverParams::default();
    let mut source = landcover_stream(width, height, params, 0x5EED);
    let t0 = std::time::Instant::now();
    let (mut components, stats) =
        analyze_stream(&mut source, band, StripConfig::default()).expect("generator stream");
    let dt = t0.elapsed();

    println!(
        "streamed {width}x{height} land-cover ({:.1} Mpixel) in {band}-row bands: \
         {} components in {:.0} ms",
        (width * height) as f64 / 1e6,
        stats.components,
        dt.as_secs_f64() * 1e3,
    );
    println!(
        "peak resident: {} pixel rows ({:.2}% of the image) — O(band), not O(image)",
        stats.peak_resident_rows,
        100.0 * stats.peak_resident_rows as f64 / height as f64,
    );
    assert!(stats.peak_resident_rows <= band + 1);

    components.sort_by_key(|c| std::cmp::Reverse(c.area));
    println!("\nlargest components (analysis computed on the fly):");
    println!("      id       area                bbox          centroid");
    for c in components.iter().take(5) {
        println!(
            "{:>8} {:>10}  {:>18}  {:>8.1},{:>7.1}",
            c.id,
            c.area,
            format!("({},{})-({},{})", c.bbox.0, c.bbox.1, c.bbox.2, c.bbox.3),
            c.centroid.0,
            c.centroid.1,
        );
    }

    // --- 2. the same engine on a PGM byte stream ----------------------
    let gray = GrayImage::from_fn(96, 400, |r, c| {
        (128.0 + 120.0 * ((r as f64 * 0.11).sin() * (c as f64 * 0.23).cos())) as u8
    });
    let bytes = pgm::write_binary(&gray);
    let mut file_source = PgmSource::new(bytes.as_slice(), 0.5).expect("valid PGM header");
    let (file_components, file_stats) =
        analyze_stream(&mut file_source, 64, StripConfig::default()).expect("PGM stream");
    println!(
        "\nPGM byte stream (96x400, 64-row bands): {} components, \
         peak resident {} rows",
        file_stats.components, file_stats.peak_resident_rows,
    );
    assert_eq!(file_components.len() as u64, file_stats.components);
    assert!(file_stats.peak_resident_rows <= 65);
}
