//! Quickstart: label a small image with every algorithm in the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paremsp::core::Algorithm;
use paremsp::image::BinaryImage;

fn main() {
    // A small scene with three 8-connected components.
    let img = BinaryImage::parse(
        "##....##..
         ##....##..
         ..........
         ...####...
         ...#..#...
         ...####...",
    );
    println!("input ({}x{}):\n{img:?}", img.width(), img.height());

    // The paper's best sequential algorithm…
    let labels = Algorithm::Aremsp.run(&img);
    println!("AREMSP found {} components", labels.num_components());
    println!("{labels:?}");

    // …and the parallel PAREMSP, plus every baseline, all agreeing
    // (canonicalized: the one-line and two-line scan families number
    // components in different orders — see `Algorithm::numbering`).
    let reference = labels.canonicalized();
    let mut algorithms: Vec<Algorithm> = Algorithm::all_sequential().to_vec();
    algorithms.push(Algorithm::Paremsp(2));
    algorithms.push(Algorithm::Paremsp(8));
    for algo in algorithms {
        let out = algo.run(&img);
        assert_eq!(out.canonicalized(), reference, "{} disagreed", algo.name());
        println!(
            "{:<12} -> {} components ✓",
            algo.name(),
            out.num_components()
        );
    }

    // Component statistics.
    let sizes = labels.component_sizes();
    for (label, bbox) in labels.bounding_boxes().iter().enumerate() {
        println!(
            "component {}: {} px, bbox rows {}..={} cols {}..={}",
            label + 1,
            sizes[label + 1],
            bbox.0,
            bbox.2,
            bbox.1,
            bbox.3
        );
    }
}
