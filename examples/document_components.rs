//! Character-blob extraction from a synthetic document page — the
//! character-recognition workload the paper's introduction motivates.
//! Labels a dot-matrix "text page", then groups the glyph components
//! into text lines via their bounding boxes.
//!
//! ```text
//! cargo run --release --example document_components
//! ```

use paremsp::core::seq::aremsp;
use paremsp::datasets::synth::shapes::text_page;

fn main() {
    let img = text_page(960, 720, 2, 77);
    println!(
        "document page: {}x{}, ink fraction {:.1}%",
        img.width(),
        img.height(),
        img.density() * 100.0
    );

    let labels = aremsp(&img);
    println!("{} glyph components found", labels.num_components());

    // Group components into text lines by bounding-box vertical overlap.
    let boxes = labels.bounding_boxes();
    let mut by_top: Vec<(usize, usize)> = boxes.iter().enumerate().map(|(i, b)| (b.0, i)).collect();
    by_top.sort_unstable();
    let mut lines: Vec<Vec<usize>> = Vec::new();
    let mut current_bottom = 0usize;
    for (top, idx) in by_top {
        match lines.last_mut() {
            Some(line) if top <= current_bottom => {
                line.push(idx);
                current_bottom = current_bottom.max(boxes[idx].2);
            }
            _ => {
                lines.push(vec![idx]);
                current_bottom = boxes[idx].2;
            }
        }
    }
    println!("{} text lines detected", lines.len());
    for (i, line) in lines.iter().take(5).enumerate() {
        let sizes = labels.component_sizes();
        let ink: usize = line.iter().map(|&idx| sizes[idx + 1]).sum();
        println!(
            "  line {}: {} glyphs, rows {}..={}, {} ink px",
            i + 1,
            line.len(),
            boxes[line[0]].0,
            line.iter().map(|&idx| boxes[idx].2).max().unwrap(),
            ink
        );
    }
    if lines.len() > 5 {
        println!("  …");
    }

    // Typical glyph metrics (useful as OCR features).
    let sizes = labels.component_sizes();
    let mut glyph_sizes: Vec<usize> = sizes[1..].to_vec();
    glyph_sizes.sort_unstable();
    if !glyph_sizes.is_empty() {
        println!(
            "glyph ink: median {} px, min {} px, max {} px",
            glyph_sizes[glyph_sizes.len() / 2],
            glyph_sizes[0],
            glyph_sizes[glyph_sizes.len() - 1]
        );
    }
}
