//! Thread-scaling demo: a miniature Figure 5 in one binary. Sweeps
//! PAREMSP over thread counts on one image and prints per-phase times,
//! speedup and efficiency.
//!
//! ```text
//! cargo run --release --example scaling_demo [-- <megapixels>]
//! ```

use paremsp::core::par::{paremsp_with, ParemspConfig};
use paremsp::datasets::harness::time_best_of;
use paremsp::datasets::report::Table;
use paremsp::datasets::speedup::speedup;
use paremsp::datasets::synth::landcover::{landcover, LandcoverParams};

fn main() {
    let megapixels: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let side = (megapixels * 1.0e6).sqrt().round() as usize;
    eprintln!("generating {side}x{side} image…");
    let img = landcover(side, side, LandcoverParams::default(), 4242);

    let max_threads = std::thread::available_parallelism().map_or(8, |n| n.get());
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let mut t = 8;
    while t < max_threads {
        threads.push(t);
        t *= 2;
    }
    threads.push(max_threads);
    threads.dedup();

    let mut table = Table::new([
        "#threads",
        "scan ms",
        "merge ms",
        "total ms",
        "speedup",
        "efficiency",
    ]);
    let mut baseline = 0.0f64;
    for &t in &threads {
        let cfg = ParemspConfig::with_threads(t);
        // best-of-3 total; phases from a representative run
        let total = time_best_of(3, || paremsp_with(&img, &cfg));
        let (_, phases) = paremsp_with(&img, &cfg);
        if t == 1 {
            baseline = total;
        }
        let s = speedup(baseline, total);
        table.push_row([
            t.to_string(),
            format!("{:.1}", phases.scan.as_secs_f64() * 1e3),
            format!("{:.1}", phases.merge.as_secs_f64() * 1e3),
            format!("{total:.1}"),
            format!("{s:.2}"),
            format!("{:.0}%", s / t as f64 * 100.0),
        ]);
    }
    println!("\n{}", table.render());
}
