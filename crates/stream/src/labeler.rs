//! [`StripLabeler`] — the bounded-memory streaming two-pass engine.
//!
//! PAREMSP's structure (disjoint provisional-label ranges per row chunk,
//! boundary rows merged afterwards) is exactly what out-of-core labeling
//! needs: treat every arriving band as a chunk, merge its first row
//! against the *carried* last row of the previous band, and throw the
//! band away. The only state that crosses bands is
//!
//! * one boundary row of labels (the **carry row**),
//! * one [`Accum`](crate::analysis) per component still *open* on that
//!   row (area, bbox, centroid sums, anchor, perimeter, id),
//!
//! so the resident footprint is O(band + open components), independent of
//! image height. Label slots are recycled: after each band, the provisional
//! label space is compacted to `1..=k` active ids (components with a pixel
//! on the carry row) and everything else is retired — closed components
//! are emitted through [`ComponentSink`] and their slots reused.
//!
//! The per-band work splits into two stages with one dependency between
//! consecutive bands (mirroring the `ccl-tiles` grid labeler):
//!
//! * **scan stage** (`scan_band`) — the two-line scan + RemSP
//!   ([`StripConfig::threads`]` == 1`) or full PAREMSP across threads
//!   within the resident band, chunk-boundary seams included. Carried
//!   ids are reserved by capacity (the synchronous path passes the exact
//!   open-component count, the pipelined executor the width bound
//!   `⌈w/2⌉`), so the stage never looks at the carry row. In
//!   [`FoldMode::Fused`] each scan worker also builds the per-chunk
//!   **partial accumulator table** for its pixels while it scans (see
//!   [`crate::analysis`] for the invariants).
//! * **merge stage** (`StripLabeler::merge_scanned_band`) — the carry
//!   seam, the accumulator fold (per *label* when fused, per pixel in
//!   [`FoldMode::Sequential`]), compaction and component emission:
//!   inherently sequential, because each band's carry feeds the next.
//!
//! Both modes and both fold paths produce identical output — the
//! band-end bookkeeping only ever sees set-minimum roots, which every
//! path agrees on, and the fused fold is exact (commutative, associative,
//! integer-valued f64 sums).

use std::ops::Range;

use ccl_core::par::MergerKind;
use ccl_core::scan::{max_labels_two_line, merge_seam, scan_two_line, split_spans, FoldingStore};
use ccl_image::BinaryImage;
use ccl_unionfind::par::ConcurrentParents;
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

use crate::analysis::{Accum, ComponentSink, LabelSink};
use crate::error::StreamError;
use crate::parallel::{carry_seam_parallel, scan_band_parallel};

/// How component statistics are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldMode {
    /// One sequential pass over the band's pixels after the seams (the
    /// pre-fused baseline, kept for comparison benches).
    Sequential,
    /// Scan workers build per-chunk partial accumulator tables while they
    /// scan; the merge stage folds partials per label as (or right after)
    /// the seams union them. No sequential per-pixel pass remains — the
    /// default.
    #[default]
    Fused,
}

impl std::fmt::Display for FoldMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FoldMode::Sequential => "seq",
            FoldMode::Fused => "fused",
        })
    }
}

impl std::str::FromStr for FoldMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seq" | "sequential" => Ok(FoldMode::Sequential),
            "fused" => Ok(FoldMode::Fused),
            other => Err(format!(
                "unknown fold mode `{other}` (expected seq or fused)"
            )),
        }
    }
}

/// Configuration for [`StripLabeler`].
#[derive(Debug, Clone)]
pub struct StripConfig {
    /// Worker threads for the in-band scan (1 = sequential AREMSP).
    pub threads: usize,
    /// Boundary-merge implementation for the parallel mode.
    pub merger: MergerKind,
    /// Lock stripes for [`MergerKind::Locked`]; `None` = default.
    pub lock_stripes: Option<usize>,
    /// Accumulation strategy (default [`FoldMode::Fused`]).
    pub fold: FoldMode,
}

impl Default for StripConfig {
    fn default() -> Self {
        StripConfig {
            threads: 1,
            merger: MergerKind::default(),
            lock_stripes: None,
            fold: FoldMode::default(),
        }
    }
}

impl StripConfig {
    /// Sequential in-band scanning (AREMSP per band).
    pub fn sequential() -> Self {
        StripConfig::default()
    }

    /// PAREMSP across `threads` workers within each band.
    pub fn parallel(threads: usize) -> Self {
        StripConfig {
            threads,
            ..StripConfig::default()
        }
    }

    /// Builder: replaces the boundary-merge implementation.
    pub fn with_merger(mut self, merger: MergerKind) -> Self {
        self.merger = merger;
        self
    }

    /// Builder: replaces the accumulation strategy.
    pub fn with_fold(mut self, fold: FoldMode) -> Self {
        self.fold = fold;
        self
    }
}

/// Summary returned by [`StripLabeler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Stream width in pixels.
    pub width: usize,
    /// Total rows labeled.
    pub rows: usize,
    /// Number of bands pushed.
    pub bands: usize,
    /// Total components emitted.
    pub components: u64,
    /// Maximum pixel rows resident at any point: the tallest band plus
    /// the one carried boundary row — the labeler's bounded-memory
    /// guarantee (≤ 2 bands for any band height ≥ 1).
    pub peak_resident_rows: usize,
}

/// Post-scan view of one band's (or tile row's) equivalences: sequential
/// RemSP or the parallel shared parent array. Both are Rem-family
/// (parents ≤ children), so [`BandUf::find`] returns the set's minimum
/// label in either case — the property the end-of-band bookkeeping
/// relies on for mode-independent output.
///
/// Public for the same reason as [`Accum`]: it is the mode-bridging
/// building block shared by every labeler with the strip structure (the
/// `ccl-tiles` grid labeler reuses it verbatim).
pub enum BandUf {
    /// Sequential mode: one RemSP store owns the whole label space.
    Seq(RemSP),
    /// Parallel mode: the shared parent array the worker scans and
    /// seam merges operated on (all workers joined).
    Par(ConcurrentParents),
}

impl BandUf {
    /// Root (set minimum) of `x`'s equivalence class.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        match self {
            BandUf::Seq(uf) => uf.find(x),
            BandUf::Par(p) => {
                let mut r = x;
                loop {
                    let q = p.load(r);
                    if q == r {
                        return r;
                    }
                    r = q;
                }
            }
        }
    }

    /// Memoized [`BandUf::find`]: `cache` holds one slot per label
    /// (`u32::MAX` = unresolved). The merge stage's per-label fold,
    /// compaction and gid-fill passes all resolve through one cache —
    /// callers that resolve *before* a late seam must not reuse the
    /// same cache after it.
    #[inline]
    pub fn find_cached(&mut self, cache: &mut [u32], x: u32) -> u32 {
        if cache[x as usize] != u32::MAX {
            cache[x as usize]
        } else {
            let r = self.find(x);
            cache[x as usize] = r;
            r
        }
    }

    /// Size of the underlying label slot space (registered or not).
    pub fn slots(&self) -> usize {
        match self {
            BandUf::Seq(uf) => uf.len(),
            BandUf::Par(p) => p.capacity(),
        }
    }
}

/// Post-scan state of one band: the label buffer with all in-band seams
/// merged, the union-find view the merge stage resolves roots through,
/// and (fused mode) the scan workers' partial accumulator tables.
/// Produced by [`scan_band`], consumed by
/// [`StripLabeler::merge_scanned_band`]; the two called back-to-back are
/// exactly [`StripLabeler::push_band`], while the pipelined executor
/// ([`crate::pipeline`]) runs them on different threads, one band apart.
pub(crate) struct ScannedBand {
    /// Band height in rows (kept for degenerate rows too).
    pub(crate) h: usize,
    /// The band's labels, row-major. Carried-id slots `1..=carry_cap`
    /// are reserved; band labels start at `carry_cap + 1`.
    pub(crate) labels: Vec<u32>,
    /// The band's equivalences (chunk seams already merged, carry seam
    /// pending — it is the merge stage's job).
    pub(crate) uf: BandUf,
    /// Fused mode: partial accumulators indexed by provisional label,
    /// covering every band pixel except the band's first row (whose
    /// upper neighbours are the carry row the scan must not read).
    pub(crate) partials: Option<Vec<Accum>>,
    /// Provisional-label ranges the scan actually allocated — the merge
    /// stage's fold sweeps these instead of the full slot space.
    pub(crate) used: Vec<Range<u32>>,
    /// True for bands with no pixels (zero height or zero width): the
    /// merge stage only counts them.
    pub(crate) degenerate: bool,
}

/// The scan stage: validates the band's width, scans it with chunk-local
/// semantics (two-line + RemSP sequentially, PAREMSP worker groups in
/// parallel mode), merges the chunk-boundary seams, and — in
/// [`FoldMode::Fused`] — accumulates every scan worker's partial table
/// while the pixels are hot.
///
/// Everything here is independent of the carried boundary row except the
/// size of the reserved low label slots: carried ids occupy
/// `1..=carry_cap`, band labels start at `carry_cap + 1`. The synchronous
/// path passes the exact open-component count; the pipelined executor
/// passes the width bound `⌈w/2⌉`, so the scan can run before the
/// previous band's compaction has decided the real count. `r0` is the
/// global row of the band's first row (partial accumulators hold global
/// coordinates).
pub(crate) fn scan_band(
    band: &BinaryImage,
    width: usize,
    cfg: &StripConfig,
    carry_cap: u32,
    r0: usize,
) -> Result<ScannedBand, StreamError> {
    if band.width() != width {
        return Err(StreamError::WidthMismatch {
            expected: width,
            got: band.width(),
        });
    }
    let (w, h) = (width, band.height());
    if h == 0 || w == 0 {
        return Ok(ScannedBand {
            h,
            labels: Vec::new(),
            uf: BandUf::Seq(RemSP::new()),
            partials: None,
            used: Vec::new(),
            degenerate: true,
        });
    }
    let fused = cfg.fold == FoldMode::Fused;
    if cfg.threads <= 1 {
        let mut store = RemSP::with_capacity(1 + carry_cap as usize + max_labels_two_line(h, w));
        for id in 0..=carry_cap {
            store.new_label(id);
        }
        let mut labels = vec![0u32; h * w];
        let next = scan_two_line(band, 0..h, &mut labels, &mut store, carry_cap + 1);
        let partials = fused.then(|| {
            let mut parts = vec![Accum::EMPTY; next as usize];
            accumulate_chunk(band, &labels, 0..h, r0, 0, &mut parts);
            parts
        });
        Ok(ScannedBand {
            h,
            labels,
            uf: BandUf::Seq(store),
            partials,
            used: std::iter::once(carry_cap + 1..next).collect(),
            degenerate: false,
        })
    } else {
        let (labels, parents, partials, used) = scan_band_parallel(band, r0, carry_cap, cfg);
        Ok(ScannedBand {
            h,
            labels,
            uf: BandUf::Par(parents),
            partials,
            used,
            degenerate: false,
        })
    }
}

/// Accumulates one scan worker's fused partial table: every foreground
/// pixel of band rows `rows` (the worker's chunk) folds its single-pixel
/// accumulator into `parts[label - base]`. Neighbour probes read the raw
/// band pixels — rows above the chunk included — so the result never
/// depends on another chunk's label buffer, which may not exist yet. The
/// band's global first row is always skipped: its upper neighbours are
/// the carry row, which the merge stage absorbs in O(width).
pub(crate) fn accumulate_chunk(
    band: &BinaryImage,
    chunk_labels: &[u32],
    rows: Range<usize>,
    r0: usize,
    base: u32,
    parts: &mut [Accum],
) {
    let w = band.width();
    for br in rows.start.max(1)..rows.end {
        let lr = br - rows.start;
        let row_labels = &chunk_labels[lr * w..(lr + 1) * w];
        let cur = band.row(br);
        let up = band.row(br - 1);
        for c in 0..w {
            let l = row_labels[c];
            if l == 0 {
                continue;
            }
            let west = c > 0 && cur[c - 1] == 1;
            let nw = c > 0 && up[c - 1] == 1;
            let north = up[c] == 1;
            let ne = c + 1 < w && up[c + 1] == 1;
            parts[(l - base) as usize].absorb(r0 + br, c, west, nw, north, ne);
        }
    }
}

/// The streaming two-pass labeling engine. See the module docs.
///
/// ```
/// use ccl_image::BinaryImage;
/// use ccl_stream::{ComponentRecord, StripLabeler};
///
/// let top = BinaryImage::parse("##.. ....");
/// let bottom = BinaryImage::parse(".... ..##");
/// let mut sink: Vec<ComponentRecord> = Vec::new();
/// let mut labeler = StripLabeler::new(4);
/// labeler.push_band(&top, &mut sink).unwrap();
/// labeler.push_band(&bottom, &mut sink).unwrap();
/// let stats = labeler.finish(&mut sink);
/// assert_eq!(stats.components, 2);
/// assert_eq!(sink[0].bbox, (0, 0, 0, 1));
/// assert_eq!(sink[1].bbox, (3, 2, 3, 3));
/// ```
pub struct StripLabeler {
    width: usize,
    cfg: StripConfig,
    rows_done: usize,
    bands_done: usize,
    /// Labels (active ids `1..=k`, 0 = background) of the last row of the
    /// previous band; empty before the first band.
    carry: Vec<u32>,
    /// Accumulators of the open components, indexed by active id (slot 0
    /// unused).
    active: Vec<Accum>,
    next_gid: u64,
    finalized: u64,
    peak_resident_rows: usize,
}

impl StripLabeler {
    /// Sequential labeler for a stream of the given width.
    pub fn new(width: usize) -> Self {
        Self::with_config(width, StripConfig::default())
    }

    /// Labeler with explicit configuration.
    pub fn with_config(width: usize, cfg: StripConfig) -> Self {
        StripLabeler {
            width,
            cfg,
            rows_done: 0,
            bands_done: 0,
            carry: Vec::new(),
            active: vec![Accum::EMPTY],
            next_gid: 1,
            finalized: 0,
            peak_resident_rows: 0,
        }
    }

    /// Stream width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rows labeled so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_done
    }

    /// Bands pushed so far.
    pub fn bands_pushed(&self) -> usize {
        self.bands_done
    }

    /// Components currently open (touching the carry row).
    pub fn open_components(&self) -> usize {
        self.active.len() - 1
    }

    /// Components emitted so far.
    pub fn finalized_components(&self) -> u64 {
        self.finalized
    }

    /// Maximum pixel rows resident at any point so far (tallest band + 1
    /// carry row). This is the bounded-memory invariant: it never exceeds
    /// twice the band height, however tall the streamed image grows.
    pub fn peak_resident_rows(&self) -> usize {
        self.peak_resident_rows
    }

    /// Labels the next band of rows, emitting every component that closes.
    pub fn push_band<C: ComponentSink>(
        &mut self,
        band: &BinaryImage,
        components: &mut C,
    ) -> Result<(), StreamError> {
        self.process(band, components, None)
    }

    /// Like [`Self::push_band`], additionally emitting the band's labeled
    /// strip (and any id merges) through `labels`.
    pub fn push_band_with_labels<C: ComponentSink, L: LabelSink>(
        &mut self,
        band: &BinaryImage,
        components: &mut C,
        labels: &mut L,
    ) -> Result<(), StreamError> {
        self.process(band, components, Some(labels))
    }

    /// Closes the stream: every still-open component is finalized and
    /// emitted (ascending id), and the run's summary returned.
    pub fn finish<C: ComponentSink + ?Sized>(mut self, components: &mut C) -> StreamStats {
        let mut remaining: Vec<Accum> = self.active.drain(1..).collect();
        remaining.sort_by_key(|a| a.gid);
        for acc in remaining {
            self.finalized += 1;
            components.component(&acc.into_record());
        }
        StreamStats {
            width: self.width,
            rows: self.rows_done,
            bands: self.bands_done,
            components: self.finalized,
            peak_resident_rows: self.peak_resident_rows,
        }
    }

    fn process(
        &mut self,
        band: &BinaryImage,
        components: &mut dyn ComponentSink,
        strips: Option<&mut dyn LabelSink>,
    ) -> Result<(), StreamError> {
        let n_carry = (self.active.len() - 1) as u32;
        let scanned = scan_band(band, self.width, &self.cfg, n_carry, self.rows_done)?;
        self.merge_scanned_band(scanned, components, strips)
    }

    /// The merge stage: restores connectivity across the carried boundary
    /// row, folds the accumulators (per label when the scan produced
    /// partials, per pixel otherwise), emits closed components (and
    /// labeled strips), and rebuilds the carry. Counterpart of
    /// [`scan_band`].
    pub(crate) fn merge_scanned_band(
        &mut self,
        band: ScannedBand,
        components: &mut dyn ComponentSink,
        strips: Option<&mut dyn LabelSink>,
    ) -> Result<(), StreamError> {
        let ScannedBand {
            h,
            labels,
            mut uf,
            partials,
            used,
            degenerate,
        } = band;
        if degenerate {
            self.rows_done += h;
            self.bands_done += usize::from(h > 0);
            return Ok(());
        }
        let w = self.width;
        self.peak_resident_rows = self
            .peak_resident_rows
            .max(h + usize::from(!self.carry.is_empty()));
        let n_carry = (self.active.len() - 1) as u32;
        let r0 = self.rows_done;
        let nslots = uf.slots();

        let mut root_of: Vec<u32> = vec![u32::MAX; nslots];
        let mut touched: Vec<u32> = Vec::new();
        let mut merges: Vec<(u64, u64)> = Vec::new();

        // Fold phase: after this block `acc[root]` holds the complete
        // accumulator of every component with a pixel in the band (fresh
        // ones still gid 0), `touched` lists the occupied roots, and
        // `merges` the carried-id pairs that turned out to be one
        // component.
        let mut acc = match partials {
            Some(mut parts) => {
                // Fused: partials are complete except the band's first
                // row — absorb it here, where the carry row is known.
                let first = &labels[..w];
                for c in 0..w {
                    let l = first[c];
                    if l == 0 {
                        continue;
                    }
                    let west = c > 0 && first[c - 1] != 0;
                    let (nw, north, ne) = if !self.carry.is_empty() {
                        (
                            c > 0 && self.carry[c - 1] != 0,
                            self.carry[c] != 0,
                            c + 1 < w && self.carry[c + 1] != 0,
                        )
                    } else {
                        (false, false, false)
                    };
                    parts[l as usize].absorb(r0, c, west, nw, north, ne);
                }
                let is_par = matches!(uf, BandUf::Par(_));
                match &mut uf {
                    BandUf::Seq(store) => {
                        // Fold each used label's partial onto its in-band
                        // root, then let the carry seam itself combine
                        // partials as it unions (the core fold hook).
                        use ccl_core::scan::Foldable as _;
                        for range in &used {
                            for l in range.clone() {
                                if parts[l as usize].is_empty() {
                                    continue;
                                }
                                let root = store.find(l);
                                if root == l {
                                    touched.push(l);
                                } else {
                                    let p = std::mem::replace(&mut parts[l as usize], Accum::EMPTY);
                                    parts[root as usize].fold(&p);
                                }
                            }
                        }
                        for id in 1..=n_carry {
                            parts[id as usize] = self.active[id as usize];
                            touched.push(id);
                        }
                        if !self.carry.is_empty() {
                            let mut folding = FoldingStore::new(store, &mut parts);
                            merge_seam(&self.carry, &labels[..w], &mut folding);
                        }
                        // Carried ids that now share a root merged; replay
                        // the pairwise events (identical to the
                        // sequential fold's bookkeeping).
                        let mut kept: Vec<u64> = vec![0; n_carry as usize + 1];
                        for id in 1..=n_carry {
                            let root = store.find(id) as usize;
                            debug_assert!(root <= n_carry as usize, "carried roots are carried");
                            let gid = self.active[id as usize].gid;
                            if kept[root] == 0 {
                                kept[root] = gid;
                            } else {
                                let (k, a) = if kept[root] <= gid {
                                    (kept[root], gid)
                                } else {
                                    (gid, kept[root])
                                };
                                merges.push((k, a));
                                kept[root] = k;
                            }
                        }
                    }
                    BandUf::Par(parents) => {
                        // Concurrent mergers cannot fold safely mid-union:
                        // run the carry seam first (column spans across
                        // the workers); the fold below happens after, per
                        // label — O(labels), not O(pixels).
                        if !self.carry.is_empty() {
                            carry_seam_parallel(&self.carry, &labels[..w], parents, &self.cfg);
                        }
                    }
                }
                if is_par {
                    use ccl_core::scan::Foldable as _;
                    fold_carried(
                        &mut uf,
                        &self.active,
                        n_carry,
                        &mut parts,
                        &mut touched,
                        &mut merges,
                    );
                    for range in &used {
                        for l in range.clone() {
                            if parts[l as usize].is_empty() {
                                continue;
                            }
                            let root = uf.find(l);
                            root_of[l as usize] = root;
                            if root == l {
                                touched.push(l);
                            } else {
                                let p = std::mem::replace(&mut parts[l as usize], Accum::EMPTY);
                                parts[root as usize].fold(&p);
                            }
                        }
                    }
                }
                parts
            }
            None => {
                // Sequential fold: seam first, then one pass over the
                // band's pixels accumulating per root (the pre-fused
                // baseline).
                if !self.carry.is_empty() {
                    match &mut uf {
                        BandUf::Seq(store) => merge_seam(&self.carry, &labels[..w], store),
                        BandUf::Par(parents) => {
                            carry_seam_parallel(&self.carry, &labels[..w], parents, &self.cfg)
                        }
                    }
                }
                let mut acc = vec![Accum::EMPTY; nslots];
                fold_carried(
                    &mut uf,
                    &self.active,
                    n_carry,
                    &mut acc,
                    &mut touched,
                    &mut merges,
                );

                // Accumulate the band's pixels per root, assigning fresh
                // ids to new components in raster order of their first
                // pixel.
                for (i, &l) in labels.iter().enumerate() {
                    if l == 0 {
                        continue;
                    }
                    let root = uf.find_cached(&mut root_of, l);
                    let slot = &mut acc[root as usize];
                    let (r, c) = (r0 + i / w, i % w);
                    // Already-scanned neighbours (west + the three above)
                    // for the perimeter/Euler folds; a first-row pixel's
                    // upper neighbours are the carry row.
                    let west = c > 0 && labels[i - 1] != 0;
                    let (nw, north, ne) = if i >= w {
                        (
                            c > 0 && labels[i - w - 1] != 0,
                            labels[i - w] != 0,
                            c + 1 < w && labels[i - w + 1] != 0,
                        )
                    } else if !self.carry.is_empty() {
                        (
                            c > 0 && self.carry[c - 1] != 0,
                            self.carry[c] != 0,
                            c + 1 < w && self.carry[c + 1] != 0,
                        )
                    } else {
                        (false, false, false)
                    };
                    if slot.area == 0 {
                        // A live 4-neighbour would share this pixel's root
                        // and have been accumulated already (raster
                        // order), so a fresh component's first pixel never
                        // has one.
                        debug_assert!(!west && !north, "first pixel with live 4-neighbour");
                        *slot = Accum::first(r, c);
                        touched.push(root);
                    } else {
                        slot.add(r, c, west, nw, north, ne);
                    }
                }
                acc
            }
        };

        // Assign fresh ids in raster order of each new component's first
        // pixel — its anchor, unique per component, so the sort
        // reproduces the sequential pass's id sequence exactly.
        let mut fresh: Vec<((usize, usize), u32)> = touched
            .iter()
            .filter(|&&root| {
                let a = &acc[root as usize];
                a.area > 0 && a.gid == 0
            })
            .map(|&root| (acc[root as usize].anchor, root))
            .collect();
        fresh.sort_unstable();
        for &(_, root) in &fresh {
            acc[root as usize].gid = self.next_gid;
            self.next_gid += 1;
        }

        // Components with a pixel on the band's last row stay open:
        // compact them to active ids 1..=k and rebuild the carry row.
        // Everything else has closed — no later row can reach it. Active
        // ids are assigned in order of first occurrence on the row, so the
        // parallel path below must reproduce that order exactly.
        let last = &labels[(h - 1) * w..];
        let mut new_active: Vec<Accum> = vec![Accum::EMPTY];
        let mut new_carry = vec![0u32; w];
        let mut survivor_id: Vec<u32> = vec![0; nslots];
        if self.cfg.threads > 1 && w > 1 {
            // Parallel compaction over column segments: each segment
            // lists its first-seen roots in order (parallel), survivor
            // ids are assigned walking the segments left to right
            // (sequential, O(open components)), then the carry row is
            // filled back in parallel. Identical output to the
            // sequential path: a root's global first occurrence decides
            // its rank in both. `root_of` is fully populated here — the
            // parallel scan's fold sweep (or pixel pass) cached every
            // used label.
            let spans = split_spans(w, self.cfg.threads);
            let mut firsts: Vec<Vec<u32>> = vec![Vec::new(); spans.len()];
            rayon::scope(|s| {
                for (out, span) in firsts.iter_mut().zip(&spans) {
                    let root_of = &root_of;
                    s.spawn(move |_| {
                        let mut seen = std::collections::HashSet::new();
                        for &l in &last[span.clone()] {
                            if l == 0 {
                                continue;
                            }
                            let root = root_of[l as usize];
                            if seen.insert(root) {
                                out.push(root);
                            }
                        }
                    });
                }
            });
            for root in firsts.into_iter().flatten() {
                if survivor_id[root as usize] == 0 {
                    new_active.push(acc[root as usize]);
                    survivor_id[root as usize] = (new_active.len() - 1) as u32;
                }
            }
            rayon::scope(|s| {
                let mut rest: &mut [u32] = &mut new_carry;
                for span in &spans {
                    let (mine, tail) = rest.split_at_mut(span.len());
                    rest = tail;
                    let survivor_id = &survivor_id;
                    let root_of = &root_of;
                    s.spawn(move |_| {
                        for (&l, slot) in last[span.clone()].iter().zip(mine) {
                            if l != 0 {
                                *slot = survivor_id[root_of[l as usize] as usize];
                            }
                        }
                    });
                }
            });
        } else {
            for (c, &l) in last.iter().enumerate() {
                if l == 0 {
                    continue;
                }
                // The fused sequential path resolves lazily: its carry
                // seam changed roots after the fold sweep, so the cache
                // fills here, post-seam.
                let root = uf.find_cached(&mut root_of, l) as usize;
                if survivor_id[root] == 0 {
                    new_active.push(acc[root]);
                    survivor_id[root] = (new_active.len() - 1) as u32;
                }
                new_carry[c] = survivor_id[root];
            }
        }

        let mut closed: Vec<Accum> = touched
            .iter()
            .filter(|&&root| survivor_id[root as usize] == 0 && acc[root as usize].area > 0)
            .map(|&root| acc[root as usize])
            .collect();
        closed.sort_by_key(|a| a.gid);
        for acc in closed {
            self.finalized += 1;
            components.component(&acc.into_record());
        }

        if let Some(sink) = strips {
            merges.sort_unstable();
            for (kept, absorbed) in merges {
                sink.merge(kept, absorbed);
            }
            let mut strip_gids = vec![0u64; h * w];
            if self.cfg.threads > 1 && !strip_gids.is_empty() {
                // root_of is fully populated in parallel mode: fill the
                // strip concurrently over element spans.
                let spans = split_spans(h * w, self.cfg.threads);
                rayon::scope(|s| {
                    let mut rest: &mut [u64] = &mut strip_gids;
                    for span in &spans {
                        let (mine, tail) = rest.split_at_mut(span.len());
                        rest = tail;
                        let labels = &labels;
                        let root_of = &root_of;
                        let acc = &acc;
                        s.spawn(move |_| {
                            for (j, g) in span.clone().zip(mine) {
                                let l = labels[j];
                                if l != 0 {
                                    *g = acc[root_of[l as usize] as usize].gid;
                                }
                            }
                        });
                    }
                });
            } else {
                for (j, g) in strip_gids.iter_mut().enumerate() {
                    let l = labels[j];
                    if l == 0 {
                        continue;
                    }
                    let root = uf.find_cached(&mut root_of, l);
                    *g = acc[root as usize].gid;
                }
            }
            sink.strip(r0, w, &strip_gids);
        }

        self.active = new_active;
        self.carry = new_carry;
        self.rows_done += h;
        self.bands_done += 1;
        Ok(())
    }
}

/// Folds the carried accumulators onto their (possibly merged) roots,
/// recording first-occupancy roots in `touched` and carried-id merge
/// pairs in `merges`. Any set containing a carried id is rooted at a
/// carried id (Rem roots are set minima and carried ids occupy the low
/// slots). Shared by the fused-parallel and sequential fold paths — the
/// fused-sequential path folds carried ids through the seam hook instead.
///
/// Public for the same reason as [`Accum`] and [`BandUf`]: it is the
/// carried-fold building block every labeler with the strip structure
/// shares (the `ccl-tiles` grid labeler uses it verbatim).
pub fn fold_carried(
    uf: &mut BandUf,
    active: &[Accum],
    n_carry: u32,
    acc: &mut [Accum],
    touched: &mut Vec<u32>,
    merges: &mut Vec<(u64, u64)>,
) {
    for id in 1..=n_carry {
        let root = uf.find(id);
        let src = active[id as usize];
        let dst = &mut acc[root as usize];
        if dst.area == 0 {
            *dst = src;
            touched.push(root);
        } else {
            let (kept, absorbed) = if dst.gid <= src.gid {
                (dst.gid, src.gid)
            } else {
                (src.gid, dst.gid)
            };
            dst.merge_with(&src);
            dst.gid = kept;
            merges.push((kept, absorbed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{CollectLabelImage, ComponentRecord, CountComponents};

    fn run_banded(
        img: &BinaryImage,
        band_h: usize,
        cfg: StripConfig,
    ) -> (Vec<ComponentRecord>, StreamStats) {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::with_config(img.width(), cfg);
        let mut r = 0;
        while r < img.height() {
            let rows = band_h.min(img.height() - r);
            let band = img.crop(r, 0, img.width(), rows);
            labeler.push_band(&band, &mut sink).unwrap();
            r += rows;
        }
        let stats = labeler.finish(&mut sink);
        (sink, stats)
    }

    #[test]
    fn single_band_matches_whole_image_analysis() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let (recs, stats) = run_banded(&img, 3, StripConfig::default());
        assert_eq!(stats.components, 2);
        assert_eq!(recs[0].area, 4);
        assert_eq!(recs[0].bbox, (0, 0, 1, 1));
        assert_eq!(recs[0].anchor, (0, 0));
        assert_eq!(recs[1].area, 1);
        assert_eq!(recs[1].bbox, (2, 3, 2, 3));
    }

    #[test]
    fn component_spanning_every_band_boundary() {
        // vertical line through 8 rows, bands of 2
        let img = BinaryImage::from_fn(5, 8, |_, c| c == 2);
        for band_h in 1..=8 {
            let (recs, stats) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(stats.components, 1, "band height {band_h}");
            assert_eq!(recs[0].area, 8);
            assert_eq!(recs[0].bbox, (0, 2, 7, 2));
            assert!((recs[0].centroid.0 - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn u_shape_merges_across_bands_and_keeps_older_id() {
        // two arms that join only in the last row
        let img = BinaryImage::parse(
            "#.#
             #.#
             #.#
             ###",
        );
        for band_h in 1..=4 {
            let (recs, stats) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(stats.components, 1, "band height {band_h}");
            assert_eq!(recs[0].id, 1, "older id survives");
            assert_eq!(recs[0].area, 9);
            assert_eq!(recs[0].bbox, (0, 0, 3, 2));
        }
    }

    #[test]
    fn components_close_as_soon_as_possible() {
        let img = BinaryImage::parse(
            "##..
             ....
             ..##
             ....",
        );
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(4);
        labeler.push_band(&img.crop(0, 0, 4, 2), &mut sink).unwrap();
        // first component closed already: no pixel on row 1
        assert_eq!(sink.len(), 1);
        assert_eq!(labeler.open_components(), 0);
        labeler.push_band(&img.crop(2, 0, 4, 2), &mut sink).unwrap();
        assert_eq!(sink.len(), 2);
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 2);
        assert_eq!(sink[1].bbox, (2, 2, 2, 3));
    }

    #[test]
    fn label_slots_are_recycled() {
        // many short-lived components: active set stays tiny
        let img = BinaryImage::from_fn(64, 64, |r, _| r % 2 == 0);
        let mut sink = CountComponents::default();
        let mut labeler = StripLabeler::new(64);
        for r in (0..64).step_by(2) {
            labeler
                .push_band(&img.crop(r, 0, 64, 2), &mut sink)
                .unwrap();
            assert!(labeler.open_components() <= 1, "row {r}");
        }
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 32);
        assert_eq!(sink.count, 32);
    }

    #[test]
    fn bounded_memory_invariant() {
        let img = BinaryImage::from_fn(16, 256, |r, c| (r + c) % 3 != 0);
        let (_, stats) = run_banded(&img, 8, StripConfig::default());
        assert!(stats.peak_resident_rows <= 2 * 8);
        assert_eq!(stats.peak_resident_rows, 9); // 8-row band + carry row
        assert_eq!(stats.rows, 256);
        assert_eq!(stats.bands, 32);
    }

    #[test]
    fn band_height_invariance_on_random_images() {
        let mut state = 7u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(23, 31, |_, _| rnd());
        let (reference, _) = run_banded(&img, 31, StripConfig::default());
        let mut sorted_ref = reference.clone();
        sorted_ref.sort_by_key(|r| r.anchor);
        for band_h in [1, 2, 3, 5, 8, 13, 30] {
            let (mut recs, _) = run_banded(&img, band_h, StripConfig::default());
            recs.sort_by_key(|r| r.anchor);
            let strip: Vec<_> = recs
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.centroid))
                .collect();
            let whole: Vec<_> = sorted_ref
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.centroid))
                .collect();
            assert_eq!(strip, whole, "band height {band_h}");
        }
    }

    #[test]
    fn parallel_mode_is_bit_identical_to_sequential() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(40, 57, |_, _| rnd());
        let (seq, seq_stats) = run_banded(&img, 9, StripConfig::sequential());
        for threads in [2, 3, 8] {
            for merger in MergerKind::ALL {
                let cfg = StripConfig::parallel(threads).with_merger(merger);
                let (par, par_stats) = run_banded(&img, 9, cfg);
                assert_eq!(par, seq, "{threads} threads, {merger}");
                assert_eq!(par_stats, seq_stats);
            }
        }
    }

    #[test]
    fn fused_fold_is_bit_identical_to_sequential_fold() {
        let mut state = 2024u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(33, 41, |_, _| rnd());
        for band_h in [1, 3, 7, 41] {
            for threads in [1, 2, 4] {
                let seq_cfg = StripConfig::parallel(threads).with_fold(FoldMode::Sequential);
                let fused_cfg = StripConfig::parallel(threads).with_fold(FoldMode::Fused);
                let (seq, seq_stats) = run_banded(&img, band_h, seq_cfg);
                let (fused, fused_stats) = run_banded(&img, band_h, fused_cfg);
                assert_eq!(fused, seq, "band {band_h}, {threads} threads");
                assert_eq!(fused_stats, seq_stats);
            }
        }
    }

    #[test]
    fn fold_mode_parses_and_displays() {
        assert_eq!("seq".parse::<FoldMode>().unwrap(), FoldMode::Sequential);
        assert_eq!(
            "sequential".parse::<FoldMode>().unwrap(),
            FoldMode::Sequential
        );
        assert_eq!("fused".parse::<FoldMode>().unwrap(), FoldMode::Fused);
        assert!("banana".parse::<FoldMode>().is_err());
        assert_eq!(FoldMode::Sequential.to_string(), "seq");
        assert_eq!(FoldMode::Fused.to_string(), "fused");
        assert_eq!(FoldMode::default(), FoldMode::Fused);
    }

    #[test]
    fn strips_reconcile_into_the_exact_partition() {
        let img = BinaryImage::parse(
            "#.#.#
             #.#.#
             #####
             .....
             ##.##",
        );
        for fold in [FoldMode::Sequential, FoldMode::Fused] {
            let mut comps = CountComponents::default();
            let mut strips = CollectLabelImage::default();
            let mut labeler = StripLabeler::with_config(5, StripConfig::default().with_fold(fold));
            for r in 0..img.height() {
                labeler
                    .push_band_with_labels(&img.crop(r, 0, 5, 1), &mut comps, &mut strips)
                    .unwrap();
            }
            let stats = labeler.finish(&mut comps);
            let li = strips.into_label_image();
            assert_eq!(li.num_components() as u64, stats.components);
            let reference = ccl_core::seq::aremsp(&img);
            assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
        }
    }

    #[test]
    fn strip_output_identical_across_fold_modes() {
        let mut state = 5u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(19, 23, |_, _| rnd());

        #[derive(Default, PartialEq, Debug)]
        struct Tape {
            events: Vec<(u64, u64)>,
            strips: Vec<(usize, Vec<u64>)>,
        }
        impl LabelSink for Tape {
            fn merge(&mut self, kept: u64, absorbed: u64) {
                self.events.push((kept, absorbed));
            }
            fn strip(&mut self, first_row: usize, _w: usize, gids: &[u64]) {
                self.strips.push((first_row, gids.to_vec()));
            }
        }

        for threads in [1, 3] {
            let mut tapes = Vec::new();
            for fold in [FoldMode::Sequential, FoldMode::Fused] {
                let cfg = StripConfig::parallel(threads).with_fold(fold);
                let mut comps = CountComponents::default();
                let mut tape = Tape::default();
                let mut labeler = StripLabeler::with_config(img.width(), cfg);
                let mut r = 0;
                while r < img.height() {
                    let rows = 4.min(img.height() - r);
                    labeler
                        .push_band_with_labels(
                            &img.crop(r, 0, img.width(), rows),
                            &mut comps,
                            &mut tape,
                        )
                        .unwrap();
                    r += rows;
                }
                labeler.finish(&mut comps);
                tapes.push(tape);
            }
            assert_eq!(tapes[0], tapes[1], "{threads} threads");
        }
    }

    #[test]
    fn width_mismatch_is_reported() {
        let mut labeler = StripLabeler::new(4);
        let mut sink = CountComponents::default();
        let err = labeler
            .push_band(&BinaryImage::zeros(3, 2), &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::WidthMismatch {
                expected: 4,
                got: 3
            }
        ));
    }

    #[test]
    fn empty_and_degenerate_streams() {
        let mut sink = CountComponents::default();
        let stats = StripLabeler::new(8).finish(&mut sink);
        assert_eq!(stats.components, 0);
        assert_eq!(stats.rows, 0);

        // zero-width stream
        let mut labeler = StripLabeler::new(0);
        labeler
            .push_band(&BinaryImage::zeros(0, 5), &mut sink)
            .unwrap();
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 0);
        assert_eq!(stats.rows, 5);
    }

    #[test]
    fn all_background_band_closes_everything() {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(3);
        labeler
            .push_band(&BinaryImage::ones(3, 2), &mut sink)
            .unwrap();
        assert_eq!(labeler.open_components(), 1);
        labeler
            .push_band(&BinaryImage::zeros(3, 2), &mut sink)
            .unwrap();
        assert_eq!(labeler.open_components(), 0);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].area, 6);
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 1);
    }

    /// Brute-force 4-neighbourhood perimeter of the whole image's single
    /// component set, keyed by anchor, for comparison with the streamed
    /// fold.
    fn brute_perimeters(img: &BinaryImage) -> std::collections::HashMap<(usize, usize), u64> {
        let labels = ccl_core::seq::aremsp(img);
        let mut per: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut anchor: std::collections::HashMap<u32, (usize, usize)> =
            std::collections::HashMap::new();
        for r in 0..img.height() {
            for c in 0..img.width() {
                let l = labels.get(r, c);
                if l == 0 {
                    continue;
                }
                anchor.entry(l).or_insert((r, c));
                let edges = [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)]
                    .iter()
                    .filter(|&&(dr, dc)| img.get_or_bg(r as isize + dr, c as isize + dc) == 0)
                    .count() as u64;
                *per.entry(l).or_insert(0) += edges;
            }
        }
        per.into_iter().map(|(l, p)| (anchor[&l], p)).collect()
    }

    #[test]
    fn perimeter_matches_brute_force_across_band_heights() {
        let mut state = 41u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 3 != 0
        };
        let img = BinaryImage::from_fn(19, 27, |_, _| rnd());
        let expected = brute_perimeters(&img);
        for band_h in [1, 2, 3, 5, 9, 27] {
            let (recs, _) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(recs.len(), expected.len(), "band height {band_h}");
            for rec in &recs {
                assert_eq!(
                    rec.perimeter, expected[&rec.anchor],
                    "band height {band_h}, anchor {:?}",
                    rec.anchor
                );
            }
        }
    }

    #[test]
    fn perimeter_of_known_shapes() {
        // 3x3 solid square: perimeter 12; plus ring with hole: the hole's
        // inner edges count too.
        let square = BinaryImage::parse("### ### ###");
        let (recs, _) = run_banded(&square, 1, StripConfig::default());
        assert_eq!(recs[0].perimeter, 12);
        assert_eq!(recs[0].holes, 0);
        let ring = BinaryImage::parse(
            "###
             #.#
             ###",
        );
        let (recs, _) = run_banded(&ring, 2, StripConfig::default());
        assert_eq!(recs[0].perimeter, 12 + 4);
        assert_eq!(recs[0].holes, 1);
        let lone = BinaryImage::parse("#");
        let (recs, _) = run_banded(&lone, 1, StripConfig::default());
        assert_eq!(recs[0].perimeter, 4);
        assert_eq!(recs[0].holes, 0);
    }

    #[test]
    fn holes_match_brute_force_across_band_heights() {
        // a figure-eight (two holes), a diagonal-gap ring (the pinched
        // hole still counts: 4-connected background, 8-connected
        // foreground), and a solid block inside a ring
        for picture in [
            "#####
             #.#.#
             #####",
            ".##
             #.#
             ##.",
            "#####
             #...#
             #.#.#
             #...#
             #####",
        ] {
            let img = BinaryImage::parse(picture);
            let expected =
                ccl_core::analysis::count_holes(&img, ccl_image::Connectivity::Eight) as u64;
            for band_h in 1..=img.height() {
                let (recs, _) = run_banded(&img, band_h, StripConfig::default());
                let total: u64 = recs.iter().map(|r| r.holes).sum();
                assert_eq!(total, expected, "band height {band_h}: {picture}");
            }
        }
    }

    #[test]
    fn ids_are_never_reused_across_closures() {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(2);
        for _ in 0..5 {
            labeler
                .push_band(&BinaryImage::ones(2, 1), &mut sink)
                .unwrap();
            labeler
                .push_band(&BinaryImage::zeros(2, 1), &mut sink)
                .unwrap();
        }
        labeler.finish(&mut sink);
        let ids: Vec<u64> = sink.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
