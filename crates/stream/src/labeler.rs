//! [`StripLabeler`] — the bounded-memory streaming two-pass engine.
//!
//! PAREMSP's structure (disjoint provisional-label ranges per row chunk,
//! boundary rows merged afterwards) is exactly what out-of-core labeling
//! needs: treat every arriving band as a chunk, merge its first row
//! against the *carried* last row of the previous band, and throw the
//! band away. The only state that crosses bands is
//!
//! * one boundary row of labels (the **carry row**),
//! * one [`Accum`](crate::analysis) per component still *open* on that
//!   row (area, bbox, centroid sums, anchor, perimeter, id),
//!
//! so the resident footprint is O(band + open components), independent of
//! image height. Label slots are recycled: after each band, the provisional
//! label space is compacted to `1..=k` active ids (components with a pixel
//! on the carry row) and everything else is retired — closed components
//! are emitted through [`ComponentSink`] and their slots reused.
//!
//! Scanning within a band is the paper's two-line scan + RemSP
//! ([`StripConfig::threads`]` == 1`) or full PAREMSP across threads
//! within the resident band; both produce identical output — the
//! band-end bookkeeping only ever sees set-minimum roots, which the two
//! paths agree on.

use ccl_core::par::MergerKind;
use ccl_core::scan::{max_labels_two_line, merge_seam, scan_two_line, split_spans};
use ccl_image::BinaryImage;
use ccl_unionfind::par::ConcurrentParents;
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

use crate::analysis::{Accum, ComponentSink, LabelSink};
use crate::error::StreamError;
use crate::parallel::scan_band_parallel;

/// Configuration for [`StripLabeler`].
#[derive(Debug, Clone)]
pub struct StripConfig {
    /// Worker threads for the in-band scan (1 = sequential AREMSP).
    pub threads: usize,
    /// Boundary-merge implementation for the parallel mode.
    pub merger: MergerKind,
    /// Lock stripes for [`MergerKind::Locked`]; `None` = default.
    pub lock_stripes: Option<usize>,
}

impl Default for StripConfig {
    fn default() -> Self {
        StripConfig {
            threads: 1,
            merger: MergerKind::default(),
            lock_stripes: None,
        }
    }
}

impl StripConfig {
    /// Sequential in-band scanning (AREMSP per band).
    pub fn sequential() -> Self {
        StripConfig::default()
    }

    /// PAREMSP across `threads` workers within each band.
    pub fn parallel(threads: usize) -> Self {
        StripConfig {
            threads,
            ..StripConfig::default()
        }
    }

    /// Builder: replaces the boundary-merge implementation.
    pub fn with_merger(mut self, merger: MergerKind) -> Self {
        self.merger = merger;
        self
    }
}

/// Summary returned by [`StripLabeler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Stream width in pixels.
    pub width: usize,
    /// Total rows labeled.
    pub rows: usize,
    /// Number of bands pushed.
    pub bands: usize,
    /// Total components emitted.
    pub components: u64,
    /// Maximum pixel rows resident at any point: the tallest band plus
    /// the one carried boundary row — the labeler's bounded-memory
    /// guarantee (≤ 2 bands for any band height ≥ 1).
    pub peak_resident_rows: usize,
}

/// Post-scan view of one band's (or tile row's) equivalences: sequential
/// RemSP or the parallel shared parent array. Both are Rem-family
/// (parents ≤ children), so [`BandUf::find`] returns the set's minimum
/// label in either case — the property the end-of-band bookkeeping
/// relies on for mode-independent output.
///
/// Public for the same reason as [`Accum`]: it is the mode-bridging
/// building block shared by every labeler with the strip structure (the
/// `ccl-tiles` grid labeler reuses it verbatim).
pub enum BandUf {
    /// Sequential mode: one RemSP store owns the whole label space.
    Seq(RemSP),
    /// Parallel mode: the shared parent array the worker scans and
    /// seam merges operated on (all workers joined).
    Par(ConcurrentParents),
}

impl BandUf {
    /// Root (set minimum) of `x`'s equivalence class.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        match self {
            BandUf::Seq(uf) => uf.find(x),
            BandUf::Par(p) => {
                let mut r = x;
                loop {
                    let q = p.load(r);
                    if q == r {
                        return r;
                    }
                    r = q;
                }
            }
        }
    }

    /// Size of the underlying label slot space (registered or not).
    pub fn slots(&self) -> usize {
        match self {
            BandUf::Seq(uf) => uf.len(),
            BandUf::Par(p) => p.capacity(),
        }
    }
}

/// The streaming two-pass labeling engine. See the module docs.
///
/// ```
/// use ccl_image::BinaryImage;
/// use ccl_stream::{ComponentRecord, StripLabeler};
///
/// let top = BinaryImage::parse("##.. ....");
/// let bottom = BinaryImage::parse(".... ..##");
/// let mut sink: Vec<ComponentRecord> = Vec::new();
/// let mut labeler = StripLabeler::new(4);
/// labeler.push_band(&top, &mut sink).unwrap();
/// labeler.push_band(&bottom, &mut sink).unwrap();
/// let stats = labeler.finish(&mut sink);
/// assert_eq!(stats.components, 2);
/// assert_eq!(sink[0].bbox, (0, 0, 0, 1));
/// assert_eq!(sink[1].bbox, (3, 2, 3, 3));
/// ```
pub struct StripLabeler {
    width: usize,
    cfg: StripConfig,
    rows_done: usize,
    bands_done: usize,
    /// Labels (active ids `1..=k`, 0 = background) of the last row of the
    /// previous band; empty before the first band.
    carry: Vec<u32>,
    /// Accumulators of the open components, indexed by active id (slot 0
    /// unused).
    active: Vec<Accum>,
    next_gid: u64,
    finalized: u64,
    peak_resident_rows: usize,
}

impl StripLabeler {
    /// Sequential labeler for a stream of the given width.
    pub fn new(width: usize) -> Self {
        Self::with_config(width, StripConfig::default())
    }

    /// Labeler with explicit configuration.
    pub fn with_config(width: usize, cfg: StripConfig) -> Self {
        StripLabeler {
            width,
            cfg,
            rows_done: 0,
            bands_done: 0,
            carry: Vec::new(),
            active: vec![Accum::EMPTY],
            next_gid: 1,
            finalized: 0,
            peak_resident_rows: 0,
        }
    }

    /// Stream width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rows labeled so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_done
    }

    /// Bands pushed so far.
    pub fn bands_pushed(&self) -> usize {
        self.bands_done
    }

    /// Components currently open (touching the carry row).
    pub fn open_components(&self) -> usize {
        self.active.len() - 1
    }

    /// Components emitted so far.
    pub fn finalized_components(&self) -> u64 {
        self.finalized
    }

    /// Maximum pixel rows resident at any point so far (tallest band + 1
    /// carry row). This is the bounded-memory invariant: it never exceeds
    /// twice the band height, however tall the streamed image grows.
    pub fn peak_resident_rows(&self) -> usize {
        self.peak_resident_rows
    }

    /// Labels the next band of rows, emitting every component that closes.
    pub fn push_band<C: ComponentSink>(
        &mut self,
        band: &BinaryImage,
        components: &mut C,
    ) -> Result<(), StreamError> {
        self.process(band, components, None)
    }

    /// Like [`Self::push_band`], additionally emitting the band's labeled
    /// strip (and any id merges) through `labels`.
    pub fn push_band_with_labels<C: ComponentSink, L: LabelSink>(
        &mut self,
        band: &BinaryImage,
        components: &mut C,
        labels: &mut L,
    ) -> Result<(), StreamError> {
        self.process(band, components, Some(labels))
    }

    /// Closes the stream: every still-open component is finalized and
    /// emitted (ascending id), and the run's summary returned.
    pub fn finish<C: ComponentSink>(mut self, components: &mut C) -> StreamStats {
        let mut remaining: Vec<Accum> = self.active.drain(1..).collect();
        remaining.sort_by_key(|a| a.gid);
        for acc in remaining {
            self.finalized += 1;
            components.component(&acc.into_record());
        }
        StreamStats {
            width: self.width,
            rows: self.rows_done,
            bands: self.bands_done,
            components: self.finalized,
            peak_resident_rows: self.peak_resident_rows,
        }
    }

    fn process(
        &mut self,
        band: &BinaryImage,
        components: &mut dyn ComponentSink,
        strips: Option<&mut dyn LabelSink>,
    ) -> Result<(), StreamError> {
        if band.width() != self.width {
            return Err(StreamError::WidthMismatch {
                expected: self.width,
                got: band.width(),
            });
        }
        let (w, h) = (self.width, band.height());
        if h == 0 || w == 0 {
            self.rows_done += h;
            self.bands_done += usize::from(h > 0);
            return Ok(());
        }
        self.peak_resident_rows = self
            .peak_resident_rows
            .max(h + usize::from(!self.carry.is_empty()));
        let n_carry = (self.active.len() - 1) as u32;

        // Scan the band (chunk-local semantics: rows above read as
        // background) and seam-merge its first row against the carry row.
        let (labels, mut uf) = if self.cfg.threads <= 1 {
            let mut store = RemSP::with_capacity(1 + n_carry as usize + max_labels_two_line(h, w));
            for id in 0..=n_carry {
                store.new_label(id);
            }
            let mut labels = vec![0u32; h * w];
            scan_two_line(band, 0..h, &mut labels, &mut store, n_carry + 1);
            if !self.carry.is_empty() {
                merge_seam(&self.carry, &labels[..w], &mut store);
            }
            (labels, BandUf::Seq(store))
        } else {
            let (labels, parents) = scan_band_parallel(band, &self.carry, n_carry, &self.cfg);
            (labels, BandUf::Par(parents))
        };

        // Fold the carried accumulators onto their (possibly merged)
        // roots. Any set containing a carried id is rooted at a carried id
        // (Rem roots are set minima and carried ids occupy the low slots).
        let nslots = uf.slots();
        let mut acc = vec![Accum::EMPTY; nslots];
        let mut touched: Vec<u32> = Vec::new();
        let mut merges: Vec<(u64, u64)> = Vec::new();
        for id in 1..=n_carry {
            let root = uf.find(id);
            let src = self.active[id as usize];
            let dst = &mut acc[root as usize];
            if dst.area == 0 {
                *dst = src;
                touched.push(root);
            } else {
                let (kept, absorbed) = if dst.gid <= src.gid {
                    (dst.gid, src.gid)
                } else {
                    (src.gid, dst.gid)
                };
                dst.merge_with(&src);
                dst.gid = kept;
                merges.push((kept, absorbed));
            }
        }

        // Accumulate the band's pixels per root, assigning fresh ids to
        // new components in raster order of their first pixel.
        let r0 = self.rows_done;
        let mut strip_gids = if strips.is_some() {
            vec![0u64; h * w]
        } else {
            Vec::new()
        };
        let mut root_of: Vec<u32> = vec![u32::MAX; nslots];
        for (i, &l) in labels.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let root = if root_of[l as usize] != u32::MAX {
                root_of[l as usize]
            } else {
                let r = uf.find(l);
                root_of[l as usize] = r;
                r
            };
            let slot = &mut acc[root as usize];
            let (r, c) = (r0 + i / w, i % w);
            // Already-scanned neighbours (west + the three above) for the
            // perimeter/Euler folds; a first-row pixel's upper neighbours
            // are the carry row.
            let west = c > 0 && labels[i - 1] != 0;
            let (nw, north, ne) = if i >= w {
                (
                    c > 0 && labels[i - w - 1] != 0,
                    labels[i - w] != 0,
                    c + 1 < w && labels[i - w + 1] != 0,
                )
            } else if !self.carry.is_empty() {
                (
                    c > 0 && self.carry[c - 1] != 0,
                    self.carry[c] != 0,
                    c + 1 < w && self.carry[c + 1] != 0,
                )
            } else {
                (false, false, false)
            };
            if slot.area == 0 {
                // A live 4-neighbour would share this pixel's root and
                // have been accumulated already (raster order), so a
                // fresh component's first pixel never has one.
                debug_assert!(!west && !north, "first pixel with live 4-neighbour");
                *slot = Accum::first(r, c);
                slot.gid = self.next_gid;
                self.next_gid += 1;
                touched.push(root);
            } else {
                slot.add(r, c, west, nw, north, ne);
            }
            if strips.is_some() {
                strip_gids[i] = slot.gid;
            }
        }

        // Components with a pixel on the band's last row stay open:
        // compact them to active ids 1..=k and rebuild the carry row.
        // Everything else has closed — no later row can reach it. Active
        // ids are assigned in order of first occurrence on the row, so the
        // parallel path below must reproduce that order exactly.
        let last = &labels[(h - 1) * w..];
        let mut new_active: Vec<Accum> = vec![Accum::EMPTY];
        let mut new_carry = vec![0u32; w];
        let mut survivor_id: Vec<u32> = vec![0; nslots];
        if self.cfg.threads > 1 && w > 1 {
            // Parallel compaction over column segments: each segment
            // lists its first-seen roots in order (parallel), survivor
            // ids are assigned walking the segments left to right
            // (sequential, O(open components)), then the carry row is
            // filled back in parallel. Identical output to the
            // sequential path: a root's global first occurrence decides
            // its rank in both.
            let spans = split_spans(w, self.cfg.threads);
            let mut firsts: Vec<Vec<u32>> = vec![Vec::new(); spans.len()];
            rayon::scope(|s| {
                for (out, span) in firsts.iter_mut().zip(&spans) {
                    let root_of = &root_of;
                    s.spawn(move |_| {
                        let mut seen = std::collections::HashSet::new();
                        for &l in &last[span.clone()] {
                            if l == 0 {
                                continue;
                            }
                            let root = root_of[l as usize];
                            if seen.insert(root) {
                                out.push(root);
                            }
                        }
                    });
                }
            });
            for root in firsts.into_iter().flatten() {
                if survivor_id[root as usize] == 0 {
                    new_active.push(acc[root as usize]);
                    survivor_id[root as usize] = (new_active.len() - 1) as u32;
                }
            }
            rayon::scope(|s| {
                let mut rest: &mut [u32] = &mut new_carry;
                for span in &spans {
                    let (mine, tail) = rest.split_at_mut(span.len());
                    rest = tail;
                    let survivor_id = &survivor_id;
                    let root_of = &root_of;
                    s.spawn(move |_| {
                        for (&l, slot) in last[span.clone()].iter().zip(mine) {
                            if l != 0 {
                                *slot = survivor_id[root_of[l as usize] as usize];
                            }
                        }
                    });
                }
            });
        } else {
            for (c, &l) in last.iter().enumerate() {
                if l == 0 {
                    continue;
                }
                let root = root_of[l as usize] as usize;
                if survivor_id[root] == 0 {
                    new_active.push(acc[root]);
                    survivor_id[root] = (new_active.len() - 1) as u32;
                }
                new_carry[c] = survivor_id[root];
            }
        }

        let mut closed: Vec<Accum> = touched
            .iter()
            .filter(|&&root| survivor_id[root as usize] == 0)
            .map(|&root| acc[root as usize])
            .collect();
        closed.sort_by_key(|a| a.gid);
        for acc in closed {
            self.finalized += 1;
            components.component(&acc.into_record());
        }

        if let Some(sink) = strips {
            merges.sort_unstable();
            for (kept, absorbed) in merges {
                sink.merge(kept, absorbed);
            }
            sink.strip(r0, w, &strip_gids);
        }

        self.active = new_active;
        self.carry = new_carry;
        self.rows_done += h;
        self.bands_done += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{CollectLabelImage, ComponentRecord, CountComponents};

    fn run_banded(
        img: &BinaryImage,
        band_h: usize,
        cfg: StripConfig,
    ) -> (Vec<ComponentRecord>, StreamStats) {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::with_config(img.width(), cfg);
        let mut r = 0;
        while r < img.height() {
            let rows = band_h.min(img.height() - r);
            let band = img.crop(r, 0, img.width(), rows);
            labeler.push_band(&band, &mut sink).unwrap();
            r += rows;
        }
        let stats = labeler.finish(&mut sink);
        (sink, stats)
    }

    #[test]
    fn single_band_matches_whole_image_analysis() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let (recs, stats) = run_banded(&img, 3, StripConfig::default());
        assert_eq!(stats.components, 2);
        assert_eq!(recs[0].area, 4);
        assert_eq!(recs[0].bbox, (0, 0, 1, 1));
        assert_eq!(recs[0].anchor, (0, 0));
        assert_eq!(recs[1].area, 1);
        assert_eq!(recs[1].bbox, (2, 3, 2, 3));
    }

    #[test]
    fn component_spanning_every_band_boundary() {
        // vertical line through 8 rows, bands of 2
        let img = BinaryImage::from_fn(5, 8, |_, c| c == 2);
        for band_h in 1..=8 {
            let (recs, stats) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(stats.components, 1, "band height {band_h}");
            assert_eq!(recs[0].area, 8);
            assert_eq!(recs[0].bbox, (0, 2, 7, 2));
            assert!((recs[0].centroid.0 - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn u_shape_merges_across_bands_and_keeps_older_id() {
        // two arms that join only in the last row
        let img = BinaryImage::parse(
            "#.#
             #.#
             #.#
             ###",
        );
        for band_h in 1..=4 {
            let (recs, stats) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(stats.components, 1, "band height {band_h}");
            assert_eq!(recs[0].id, 1, "older id survives");
            assert_eq!(recs[0].area, 9);
            assert_eq!(recs[0].bbox, (0, 0, 3, 2));
        }
    }

    #[test]
    fn components_close_as_soon_as_possible() {
        let img = BinaryImage::parse(
            "##..
             ....
             ..##
             ....",
        );
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(4);
        labeler.push_band(&img.crop(0, 0, 4, 2), &mut sink).unwrap();
        // first component closed already: no pixel on row 1
        assert_eq!(sink.len(), 1);
        assert_eq!(labeler.open_components(), 0);
        labeler.push_band(&img.crop(2, 0, 4, 2), &mut sink).unwrap();
        assert_eq!(sink.len(), 2);
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 2);
        assert_eq!(sink[1].bbox, (2, 2, 2, 3));
    }

    #[test]
    fn label_slots_are_recycled() {
        // many short-lived components: active set stays tiny
        let img = BinaryImage::from_fn(64, 64, |r, _| r % 2 == 0);
        let mut sink = CountComponents::default();
        let mut labeler = StripLabeler::new(64);
        for r in (0..64).step_by(2) {
            labeler
                .push_band(&img.crop(r, 0, 64, 2), &mut sink)
                .unwrap();
            assert!(labeler.open_components() <= 1, "row {r}");
        }
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 32);
        assert_eq!(sink.count, 32);
    }

    #[test]
    fn bounded_memory_invariant() {
        let img = BinaryImage::from_fn(16, 256, |r, c| (r + c) % 3 != 0);
        let (_, stats) = run_banded(&img, 8, StripConfig::default());
        assert!(stats.peak_resident_rows <= 2 * 8);
        assert_eq!(stats.peak_resident_rows, 9); // 8-row band + carry row
        assert_eq!(stats.rows, 256);
        assert_eq!(stats.bands, 32);
    }

    #[test]
    fn band_height_invariance_on_random_images() {
        let mut state = 7u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(23, 31, |_, _| rnd());
        let (reference, _) = run_banded(&img, 31, StripConfig::default());
        let mut sorted_ref = reference.clone();
        sorted_ref.sort_by_key(|r| r.anchor);
        for band_h in [1, 2, 3, 5, 8, 13, 30] {
            let (mut recs, _) = run_banded(&img, band_h, StripConfig::default());
            recs.sort_by_key(|r| r.anchor);
            let strip: Vec<_> = recs
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.centroid))
                .collect();
            let whole: Vec<_> = sorted_ref
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.centroid))
                .collect();
            assert_eq!(strip, whole, "band height {band_h}");
        }
    }

    #[test]
    fn parallel_mode_is_bit_identical_to_sequential() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(40, 57, |_, _| rnd());
        let (seq, seq_stats) = run_banded(&img, 9, StripConfig::sequential());
        for threads in [2, 3, 8] {
            for merger in MergerKind::ALL {
                let cfg = StripConfig::parallel(threads).with_merger(merger);
                let (par, par_stats) = run_banded(&img, 9, cfg);
                assert_eq!(par, seq, "{threads} threads, {merger}");
                assert_eq!(par_stats, seq_stats);
            }
        }
    }

    #[test]
    fn strips_reconcile_into_the_exact_partition() {
        let img = BinaryImage::parse(
            "#.#.#
             #.#.#
             #####
             .....
             ##.##",
        );
        let mut comps = CountComponents::default();
        let mut strips = CollectLabelImage::default();
        let mut labeler = StripLabeler::new(5);
        for r in 0..img.height() {
            labeler
                .push_band_with_labels(&img.crop(r, 0, 5, 1), &mut comps, &mut strips)
                .unwrap();
        }
        let stats = labeler.finish(&mut comps);
        let li = strips.into_label_image();
        assert_eq!(li.num_components() as u64, stats.components);
        let reference = ccl_core::seq::aremsp(&img);
        assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
    }

    #[test]
    fn width_mismatch_is_reported() {
        let mut labeler = StripLabeler::new(4);
        let mut sink = CountComponents::default();
        let err = labeler
            .push_band(&BinaryImage::zeros(3, 2), &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::WidthMismatch {
                expected: 4,
                got: 3
            }
        ));
    }

    #[test]
    fn empty_and_degenerate_streams() {
        let mut sink = CountComponents::default();
        let stats = StripLabeler::new(8).finish(&mut sink);
        assert_eq!(stats.components, 0);
        assert_eq!(stats.rows, 0);

        // zero-width stream
        let mut labeler = StripLabeler::new(0);
        labeler
            .push_band(&BinaryImage::zeros(0, 5), &mut sink)
            .unwrap();
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 0);
        assert_eq!(stats.rows, 5);
    }

    #[test]
    fn all_background_band_closes_everything() {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(3);
        labeler
            .push_band(&BinaryImage::ones(3, 2), &mut sink)
            .unwrap();
        assert_eq!(labeler.open_components(), 1);
        labeler
            .push_band(&BinaryImage::zeros(3, 2), &mut sink)
            .unwrap();
        assert_eq!(labeler.open_components(), 0);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].area, 6);
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 1);
    }

    /// Brute-force 4-neighbourhood perimeter of the whole image's single
    /// component set, keyed by anchor, for comparison with the streamed
    /// fold.
    fn brute_perimeters(img: &BinaryImage) -> std::collections::HashMap<(usize, usize), u64> {
        let labels = ccl_core::seq::aremsp(img);
        let mut per: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut anchor: std::collections::HashMap<u32, (usize, usize)> =
            std::collections::HashMap::new();
        for r in 0..img.height() {
            for c in 0..img.width() {
                let l = labels.get(r, c);
                if l == 0 {
                    continue;
                }
                anchor.entry(l).or_insert((r, c));
                let edges = [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)]
                    .iter()
                    .filter(|&&(dr, dc)| img.get_or_bg(r as isize + dr, c as isize + dc) == 0)
                    .count() as u64;
                *per.entry(l).or_insert(0) += edges;
            }
        }
        per.into_iter().map(|(l, p)| (anchor[&l], p)).collect()
    }

    #[test]
    fn perimeter_matches_brute_force_across_band_heights() {
        let mut state = 41u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 3 != 0
        };
        let img = BinaryImage::from_fn(19, 27, |_, _| rnd());
        let expected = brute_perimeters(&img);
        for band_h in [1, 2, 3, 5, 9, 27] {
            let (recs, _) = run_banded(&img, band_h, StripConfig::default());
            assert_eq!(recs.len(), expected.len(), "band height {band_h}");
            for rec in &recs {
                assert_eq!(
                    rec.perimeter, expected[&rec.anchor],
                    "band height {band_h}, anchor {:?}",
                    rec.anchor
                );
            }
        }
    }

    #[test]
    fn perimeter_of_known_shapes() {
        // 3x3 solid square: perimeter 12; plus ring with hole: the hole's
        // inner edges count too.
        let square = BinaryImage::parse("### ### ###");
        let (recs, _) = run_banded(&square, 1, StripConfig::default());
        assert_eq!(recs[0].perimeter, 12);
        assert_eq!(recs[0].holes, 0);
        let ring = BinaryImage::parse(
            "###
             #.#
             ###",
        );
        let (recs, _) = run_banded(&ring, 2, StripConfig::default());
        assert_eq!(recs[0].perimeter, 12 + 4);
        assert_eq!(recs[0].holes, 1);
        let lone = BinaryImage::parse("#");
        let (recs, _) = run_banded(&lone, 1, StripConfig::default());
        assert_eq!(recs[0].perimeter, 4);
        assert_eq!(recs[0].holes, 0);
    }

    #[test]
    fn holes_match_brute_force_across_band_heights() {
        // a figure-eight (two holes), a diagonal-gap ring (the pinched
        // hole still counts: 4-connected background, 8-connected
        // foreground), and a solid block inside a ring
        for picture in [
            "#####
             #.#.#
             #####",
            ".##
             #.#
             ##.",
            "#####
             #...#
             #.#.#
             #...#
             #####",
        ] {
            let img = BinaryImage::parse(picture);
            let expected =
                ccl_core::analysis::count_holes(&img, ccl_image::Connectivity::Eight) as u64;
            for band_h in 1..=img.height() {
                let (recs, _) = run_banded(&img, band_h, StripConfig::default());
                let total: u64 = recs.iter().map(|r| r.holes).sum();
                assert_eq!(total, expected, "band height {band_h}: {picture}");
            }
        }
    }

    #[test]
    fn ids_are_never_reused_across_closures() {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = StripLabeler::new(2);
        for _ in 0..5 {
            labeler
                .push_band(&BinaryImage::ones(2, 1), &mut sink)
                .unwrap();
            labeler
                .push_band(&BinaryImage::zeros(2, 1), &mut sink)
                .unwrap();
        }
        labeler.finish(&mut sink);
        let ids: Vec<u64> = sink.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
