//! Synthetic generator sources — `ccl-datasets` row streams as
//! [`RowSource`]s.
//!
//! [`RowStream`] (see [`ccl_datasets::synth::stream`]) already delivers
//! bit-identical row bands for the noise / land-cover / texture /
//! adversarial generators; this `impl` plugs it straight into the
//! labeling pipeline, so arbitrarily tall synthetic rasters can be
//! labeled without ever existing in memory.

use ccl_datasets::synth::stream::RowStream;
use ccl_image::BinaryImage;

use crate::error::StreamError;
use crate::source::RowSource;

impl RowSource for RowStream {
    fn width(&self) -> usize {
        RowStream::width(self)
    }

    fn rows_remaining(&self) -> Option<usize> {
        Some(RowStream::rows_remaining(self))
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        Ok(RowStream::next_band(self, max_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_datasets::synth::stream::bernoulli_stream;

    #[test]
    fn row_stream_is_a_row_source() {
        let mut src: Box<dyn RowSource> = Box::new(bernoulli_stream(11, 7, 0.5, 5));
        assert_eq!(src.width(), 11);
        assert_eq!(src.rows_remaining(), Some(7));
        let mut rows = 0;
        while let Some(band) = src.next_band(3).unwrap() {
            rows += band.height();
        }
        assert_eq!(rows, 7);
    }
}
