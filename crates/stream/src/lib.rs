//! # ccl-stream
//!
//! Bounded-memory streaming/tiled connected component labeling with
//! on-the-fly component analysis — the out-of-core extension of the
//! PAREMSP reproduction (Gupta et al., IPPS 2014).
//!
//! PAREMSP labels an image by scanning disjoint row chunks with disjoint
//! provisional-label ranges and merging only the chunk-boundary rows.
//! That structure is exactly what *out-of-core* labeling needs: when row
//! bands arrive one at a time (a file being decoded, a sensor scanning, a
//! generator producing), each band is a chunk, the boundary merge happens
//! once per band seam, and everything behind the seam can be retired.
//! This crate turns that observation into a pipeline that labels rasters
//! of unbounded height in **O(band) memory**:
//!
//! * [`RowSource`] — pull-based supplier of row bands, with adapters for
//!   in-memory images ([`MemorySource`]), incremental Netpbm files
//!   ([`PbmSource`], [`PgmSource`] — PGM binarized band-wise with the
//!   paper's `im2bw`) and the streamed `ccl-datasets` generators
//!   ([`generators`]);
//! * [`StripLabeler`] — the engine: two-line scan + RemSP per band
//!   (sequential) or full PAREMSP across threads within the resident
//!   band ([`StripConfig::parallel`]), one carried boundary row per
//!   seam, and label-slot recycling so closed components cost nothing;
//! * [`ComponentRecord`] / [`ComponentSink`] — per-component area,
//!   bounding box, centroid, raster anchor, 4-neighbourhood perimeter
//!   and Euler-characteristic hole count, emitted the moment a
//!   component closes, **without ever materializing a label image**
//!   (following Lemaitre & Lacassagne's on-the-fly analysis);
//! * [`LabelSink`] / [`stream_to_label_image`] — optional labeled-strip
//!   output for callers who do want labels.
//!
//! ## Example
//!
//! ```
//! use ccl_datasets::synth::stream::bernoulli_stream;
//! use ccl_stream::{analyze_stream, StripConfig};
//!
//! // A 64 × 4096 noise raster streamed in 64-row bands: the labeler
//! // never holds more than 65 pixel rows.
//! let mut source = bernoulli_stream(64, 4096, 0.3, 42);
//! let (components, stats) =
//!     analyze_stream(&mut source, 64, StripConfig::default()).unwrap();
//! assert_eq!(stats.components as usize, components.len());
//! assert!(stats.peak_resident_rows <= 65);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod driver;
pub mod error;
pub mod generators;
pub mod labeler;
pub mod netpbm;
mod parallel;
pub mod pipeline;
pub mod source;

pub use analysis::{
    Accum, CollectLabelImage, ComponentId, ComponentRecord, ComponentSink, CountComponents,
    LabelSink,
};
pub use driver::{
    analyze_stream, analyze_stream_pipelined, label_stream, label_stream_pipelined,
    stream_to_label_image, stream_to_label_image_pipelined,
};
pub use error::StreamError;
pub use labeler::{BandUf, FoldMode, StreamStats, StripConfig, StripLabeler};
pub use netpbm::{PbmSource, PgmSource};
pub use source::{MemorySource, OwnedMemorySource, RowSource};
