//! Error type for the streaming pipeline.

use std::fmt;

use ccl_image::ImageError;

/// Errors produced while pulling or labeling row bands.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying source failed to decode (I/O or malformed stream).
    Image(ImageError),
    /// A band arrived with a width different from the labeler's.
    WidthMismatch {
        /// Width the labeler was constructed with.
        expected: usize,
        /// Width of the offending band.
        got: usize,
    },
    /// A background pipeline worker (e.g. a `ccl-pipeline` prefetcher)
    /// died without producing a band — typically a panic in the wrapped
    /// source; the payload is the panic message.
    Worker(String),
}

impl StreamError {
    /// Builds [`StreamError::Worker`] from a caught panic payload
    /// (`&str`/`String` payloads pass through as the message, anything
    /// else becomes a generic one). Used wherever a pipeline stage joins
    /// a worker thread.
    pub fn worker_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked".to_string()
        };
        StreamError::Worker(msg)
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Image(e) => write!(f, "source error: {e}"),
            StreamError::WidthMismatch { expected, got } => {
                write!(f, "band width {got} does not match stream width {expected}")
            }
            StreamError::Worker(msg) => write!(f, "pipeline worker failed: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImageError> for StreamError {
    fn from(e: ImageError) -> Self {
        StreamError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = StreamError::WidthMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("width 5"));
        assert!(e.source().is_none());
        let e: StreamError = ImageError::Parse("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_some());
        let e = StreamError::Worker("boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_none());
    }
}
