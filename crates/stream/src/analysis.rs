//! On-the-fly component analysis — records, accumulators and sinks.
//!
//! Following Lemaitre & Lacassagne's run-based analysis (PAPERS.md), the
//! strip labeler never materializes a label image: every component's
//! features (area, bounding box, centroid, raster-first anchor,
//! 4-neighbourhood perimeter, hole count) are accumulated while its
//! pixels stream past and emitted exactly once, when the component
//! *closes* (no pixel on the stream's frontier row).
//!
//! Consumers implement [`ComponentSink`] (and optionally [`LabelSink`]
//! for labeled strip output); `Vec<ComponentRecord>` works out of the box
//! for collect-everything callers.
//!
//! # Partial accumulators and the seam fold (fused analysis)
//!
//! The fused accumulation path ([`FoldMode::Fused`](crate::FoldMode), the
//! default) never walks the pixels in a separate sequential pass.
//! Instead every *scan worker* builds a **partial accumulator table**
//! keyed by provisional label while it scans its chunk (or tile), and
//! the seam/merge stage combines partials per *label*, not per pixel.
//! Three invariants make this exact:
//!
//! 1. **Per-pixel contributions are order-free.** Every pixel contributes
//!    one single-pixel accumulator ([`Accum::pixel`]) computed from its
//!    *already-scanned global* neighbours (west + the three above, read
//!    from the raw pixels — never from another chunk's labels, which may
//!    not exist yet). Areas, bounding boxes, coordinate sums (integer
//!    f64, exact below 2^53), perimeter deltas, Euler deltas and the
//!    raster-min anchor are all folded with a **commutative, associative**
//!    operation whose identity is [`Accum::EMPTY`] — so any partition of
//!    the pixels into partials, folded in any order, reproduces the
//!    sequential fold bit for bit (property-tested in
//!    `tests/proptest_accum.rs`).
//! 2. **Attribution follows connectivity.** A perimeter/Euler delta is
//!    attributed to the pixel that closes it, and the neighbours it
//!    involves are 8-adjacent — always the same final component — so
//!    per-component sums survive arbitrary chunk/tile/seam merges.
//! 3. **Partials stay where their label is.** A chunk's partials live in
//!    the chunk's disjoint provisional-label range, so scan workers
//!    write without synchronization. The merge stage folds each used
//!    label's partial onto its union-find root — O(labels), not
//!    O(pixels) — either *during* the carry seam (sequential stores,
//!    via [`ccl_core::scan::FoldingStore`]) or right after it
//!    (concurrent stores, where folding inside the merger would race).
//!    The only pixels the merge stage ever touches are the band's (or
//!    tile row's) **first line**, whose upper neighbours are the carry
//!    row the scan stage must not depend on — an O(width) absorb.

use ccl_core::label::LabelImage;
use ccl_core::scan::Foldable;

/// Identifier of a streamed component: assigned when the component first
/// appears (raster order of its first pixel), never reused. When two open
/// components turn out to be connected, the smaller (older) id survives.
pub type ComponentId = u64;

/// The features of one finalized component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRecord {
    /// Stream-unique id (see [`ComponentId`]).
    pub id: ComponentId,
    /// Pixel count.
    pub area: u64,
    /// Inclusive bounding box `(min_row, min_col, max_row, max_col)` in
    /// global image coordinates.
    pub bbox: (usize, usize, usize, usize),
    /// Centroid `(mean_row, mean_col)` in global image coordinates.
    pub centroid: (f64, f64),
    /// Raster-first pixel `(row, col)` — a stable key for matching
    /// components across labelers (no two components share an anchor).
    pub anchor: (usize, usize),
    /// 4-neighbourhood boundary length: the number of pixel edges shared
    /// with background or the image border (Lemaitre & Lacassagne's
    /// on-the-fly perimeter). Folds across merges like area: each pixel
    /// contributes `4 - 2 * (already-seen 4-adjacent neighbours)`, and
    /// summing partial perimeters is exact because 4-adjacent pixels are
    /// always in the same 8-connected component.
    pub perimeter: u64,
    /// Number of holes: 4-connected background regions fully enclosed by
    /// this (8-connected) component, via Lemaitre & Lacassagne's
    /// Euler-characteristic fold — `holes = 1 - χ` where `χ = V − E + F`
    /// of the component's closed-pixel complex, accumulated per pixel
    /// from its already-scanned neighbours (see [`Accum::add`]).
    pub holes: u64,
}

/// Running accumulator behind a [`ComponentRecord`]. `area == 0` marks an
/// unused slot.
///
/// Public because it is the reusable building block for any labeler with
/// the "open components fold on merge" structure — the strip labeler here
/// and the tile-grid labeler in `ccl-tiles` share it. Ordinary consumers
/// only ever see the finished [`ComponentRecord`]s.
#[derive(Debug, Clone, Copy)]
pub struct Accum {
    /// Pixels accumulated so far (0 = unused slot).
    pub area: u64,
    /// Bounding-box minimum row.
    pub min_r: usize,
    /// Bounding-box minimum column.
    pub min_c: usize,
    /// Bounding-box maximum row.
    pub max_r: usize,
    /// Bounding-box maximum column.
    pub max_c: usize,
    /// Row-coordinate sum (integer-valued in f64, exact below 2^53).
    pub sum_r: f64,
    /// Column-coordinate sum.
    pub sum_c: f64,
    /// Raster-first pixel seen so far.
    pub anchor: (usize, usize),
    /// 4-neighbourhood boundary edges accumulated so far.
    pub perimeter: u64,
    /// Euler characteristic `χ = V − E + F` of the closed-pixel complex
    /// accumulated so far (every vertex, edge and face counted exactly
    /// once, at the raster-first pixel incident to it).
    pub euler: i64,
    /// 0 until the component is assigned its [`ComponentId`].
    pub gid: u64,
}

impl Accum {
    /// The unused-slot sentinel (`area == 0`).
    pub const EMPTY: Accum = Accum {
        area: 0,
        min_r: 0,
        min_c: 0,
        max_r: 0,
        max_c: 0,
        sum_r: 0.0,
        sum_c: 0.0,
        anchor: (0, 0),
        perimeter: 0,
        euler: 0,
        gid: 0,
    };

    /// Accumulator holding one pixel. A component's first pixel (in
    /// raster order) never has an already-seen 4-neighbour, so it
    /// contributes the full 4 edges — and the full square (4 vertices,
    /// 4 edges, 1 face), so `χ = 1`.
    #[inline]
    pub fn first(r: usize, c: usize) -> Accum {
        Accum {
            area: 1,
            min_r: r,
            min_c: c,
            max_r: r,
            max_c: c,
            sum_r: r as f64,
            sum_c: c as f64,
            anchor: (r, c),
            perimeter: 4,
            euler: 1,
            gid: 0,
        }
    }

    /// The accumulator of exactly one pixel with the given already-seen
    /// neighbour mask — the unit the fused path folds: a component's
    /// accumulator is the [`Foldable`] sum of its pixels' units (plus
    /// nothing else), in any order. [`Accum::first`] is the special case
    /// with no live neighbours.
    #[inline]
    pub fn pixel(r: usize, c: usize, west: bool, nw: bool, north: bool, ne: bool) -> Accum {
        let mut a = Accum::first(r, c);
        a.perimeter = 4 - 2 * (u64::from(west) + u64::from(north));
        a.euler = 1 + i64::from(north) - i64::from(west || nw || north) - i64::from(north || ne);
        a
    }

    /// Folds one pixel into a possibly-empty accumulator, in any order:
    /// unlike [`Accum::add`] this neither assumes raster arrival nor a
    /// live slot, so partial tables can absorb stray pixels (a band's
    /// first line, accumulated by the merge stage) after the fact.
    #[inline]
    pub fn absorb(&mut self, r: usize, c: usize, west: bool, nw: bool, north: bool, ne: bool) {
        if self.area == 0 {
            *self = Accum::pixel(r, c, west, nw, north, ne);
        } else {
            let anchor = self.anchor.min((r, c));
            self.add(r, c, west, nw, north, ne);
            self.anchor = anchor;
        }
    }

    /// Adds one pixel. Pixels arrive in raster order, so the anchor never
    /// moves. `west`/`nw`/`north`/`ne` are the four already-scanned
    /// foreground neighbours of `(r, c)`: each shared 4-edge removes one
    /// boundary edge from *both* endpoints (perimeter), and the pixel's
    /// Euler contribution counts only the vertices/edges of its closed
    /// unit square that no earlier pixel created:
    /// `Δχ = ΔV − ΔE + 1 = 1 + north − (west|nw|north) − (north|ne)`.
    /// Every shared vertex/edge joins 8-adjacent pixels, so attributing
    /// the delta to this pixel's open component keeps per-component sums
    /// exact across merges.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, west: bool, nw: bool, north: bool, ne: bool) {
        self.area += 1;
        self.min_r = self.min_r.min(r);
        self.min_c = self.min_c.min(c);
        self.max_r = self.max_r.max(r);
        self.max_c = self.max_c.max(c);
        self.sum_r += r as f64;
        self.sum_c += c as f64;
        self.perimeter += 4 - 2 * (u64::from(west) + u64::from(north));
        self.euler +=
            1 + i64::from(north) - i64::from(west || nw || north) - i64::from(north || ne);
    }

    /// Folds another accumulator in (two open components discovered to be
    /// one). Keeps the raster-smaller anchor; the caller resolves the
    /// surviving `gid`. Perimeters and Euler characteristics sum exactly:
    /// every boundary edge / vertex / face was counted once globally, at
    /// the raster-first pixel incident to it, and any sharing between the
    /// two halves involves 8-adjacent pixels — which always end up in the
    /// same merged component.
    pub fn merge_with(&mut self, other: &Accum) {
        self.area += other.area;
        self.min_r = self.min_r.min(other.min_r);
        self.min_c = self.min_c.min(other.min_c);
        self.max_r = self.max_r.max(other.max_r);
        self.max_c = self.max_c.max(other.max_c);
        self.sum_r += other.sum_r;
        self.sum_c += other.sum_c;
        self.anchor = self.anchor.min(other.anchor);
        self.perimeter += other.perimeter;
        self.euler += other.euler;
    }

    /// True for the unused-slot sentinel.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.area == 0
    }

    /// Finishes the accumulator into an emitted record. A connected
    /// component's Euler characteristic is `1 − holes`, so the hole count
    /// falls out of the fold.
    pub fn into_record(self) -> ComponentRecord {
        debug_assert!(self.area > 0 && self.gid > 0);
        debug_assert!(self.euler <= 1, "connected component has χ ≤ 1");
        ComponentRecord {
            id: self.gid,
            area: self.area,
            bbox: (self.min_r, self.min_c, self.max_r, self.max_c),
            centroid: (self.sum_r / self.area as f64, self.sum_c / self.area as f64),
            anchor: self.anchor,
            perimeter: self.perimeter,
            holes: (1 - self.euler).max(0) as u64,
        }
    }
}

/// The fused path's fold: [`Accum::EMPTY`] is the identity, non-empty
/// accumulators combine with [`Accum::merge_with`], and the surviving
/// stream id is the smaller non-zero `gid` (fresh partials carry 0 until
/// the merge stage assigns ids, so a carried component's id always
/// wins). Commutative and associative — `tests/proptest_accum.rs` checks
/// fold-order independence across all 15 synthetic generators.
impl Foldable for Accum {
    const EMPTY: Accum = Accum::EMPTY;

    #[inline]
    fn fold(&mut self, other: &Accum) {
        if other.area == 0 {
            return;
        }
        if self.area == 0 {
            *self = *other;
            return;
        }
        let gid = match (self.gid, other.gid) {
            (0, g) | (g, 0) => g,
            (a, b) => a.min(b),
        };
        self.merge_with(other);
        self.gid = gid;
    }
}

/// Receives every component exactly once, when it closes. Emission order
/// is deterministic: ascending id within each band, bands in stream order.
pub trait ComponentSink {
    /// Called once per finalized component.
    fn component(&mut self, record: &ComponentRecord);
}

/// Collect-everything sink.
impl ComponentSink for Vec<ComponentRecord> {
    fn component(&mut self, record: &ComponentRecord) {
        self.push(record.clone());
    }
}

/// Discards records, keeping only a count — for benchmarks measuring pure
/// labeling throughput.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountComponents {
    /// Number of components seen so far.
    pub count: u64,
}

impl ComponentSink for CountComponents {
    fn component(&mut self, _record: &ComponentRecord) {
        self.count += 1;
    }
}

/// Receives labeled strips for callers who *do* want label output.
///
/// Strip pixels hold [`ComponentId`]s (0 = background) as known at
/// emission time. A component open across strips may later merge with
/// another; [`LabelSink::merge`] reports every such event (before the
/// band's strip), so a consumer that union-finds the merge pairs obtains
/// the exact final partition. Components that close within the emitted
/// strip already carry their final id.
pub trait LabelSink {
    /// Two previously emitted ids turned out to be one component; `kept`
    /// (the smaller) survives.
    fn merge(&mut self, kept: ComponentId, absorbed: ComponentId);

    /// One band's labels, row-major, `width` columns, starting at global
    /// row `first_row`.
    fn strip(&mut self, first_row: usize, width: usize, gids: &[ComponentId]);
}

/// Reference [`LabelSink`]: buffers every strip and merge event, then
/// reconciles them into a [`LabelImage`] (for tests, examples and callers
/// with memory to spare — it holds the whole image, unlike the labeler).
#[derive(Debug, Default)]
pub struct CollectLabelImage {
    width: usize,
    gids: Vec<ComponentId>,
    merges: Vec<(ComponentId, ComponentId)>,
}

impl LabelSink for CollectLabelImage {
    fn merge(&mut self, kept: ComponentId, absorbed: ComponentId) {
        self.merges.push((kept, absorbed));
    }

    fn strip(&mut self, first_row: usize, width: usize, gids: &[ComponentId]) {
        debug_assert_eq!(first_row * width, self.gids.len(), "strips in order");
        self.width = width;
        self.gids.extend_from_slice(gids);
    }
}

impl CollectLabelImage {
    /// Applies the recorded merges and renumbers components canonically
    /// (consecutive `1..=k` by raster order of first pixel), yielding a
    /// label image comparable to the whole-image labelers via
    /// [`LabelImage::canonicalized`].
    pub fn into_label_image(self) -> LabelImage {
        use std::collections::HashMap;
        // Union-find over the sparse id space; merges always keep the
        // smaller id, so pointing absorbed -> kept terminates.
        let mut parent: HashMap<ComponentId, ComponentId> = HashMap::new();
        for &(kept, absorbed) in &self.merges {
            parent.insert(absorbed, kept);
        }
        let resolve = |mut id: ComponentId, parent: &HashMap<ComponentId, ComponentId>| {
            while let Some(&p) = parent.get(&id) {
                id = p;
            }
            id
        };
        let mut remap: HashMap<ComponentId, u32> = HashMap::new();
        let mut next = 0u32;
        let labels: Vec<u32> = self
            .gids
            .iter()
            .map(|&g| {
                if g == 0 {
                    0
                } else {
                    let root = resolve(g, &parent);
                    *remap.entry(root).or_insert_with(|| {
                        next += 1;
                        next
                    })
                }
            })
            .collect();
        let height = labels.len().checked_div(self.width).unwrap_or(0);
        LabelImage::from_raw(self.width, height, labels, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_tracks_bbox_centroid_anchor_perimeter() {
        // L-tromino at (2,3) (2,4) (3,3): perimeter 8, no hole
        let mut a = Accum::first(2, 3);
        a.add(2, 4, true, false, false, false);
        a.add(3, 3, false, false, true, true);
        assert_eq!(a.area, 3);
        assert_eq!((a.min_r, a.min_c, a.max_r, a.max_c), (2, 3, 3, 4));
        assert_eq!(a.anchor, (2, 3));
        assert_eq!(a.perimeter, 8);
        assert_eq!(a.euler, 1);
        a.gid = 1;
        let rec = a.into_record();
        assert!((rec.centroid.0 - 7.0 / 3.0).abs() < 1e-12);
        assert!((rec.centroid.1 - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(rec.perimeter, 8);
        assert_eq!(rec.holes, 0);
    }

    #[test]
    fn merge_keeps_raster_smaller_anchor_and_sums_perimeter() {
        let mut a = Accum::first(5, 1);
        let b = Accum::first(2, 9);
        a.merge_with(&b);
        assert_eq!(a.anchor, (2, 9));
        assert_eq!(a.area, 2);
        assert_eq!((a.min_r, a.max_r), (2, 5));
        assert_eq!(a.perimeter, 8);
        assert_eq!(a.euler, 2);
    }

    #[test]
    fn euler_fold_counts_ring_hole() {
        // 3x3 ring: add pixels in raster order with their already-scanned
        // neighbours; χ ends at 0, so exactly one hole.
        let mut a = Accum::first(0, 0);
        a.add(0, 1, true, false, false, false);
        a.add(0, 2, true, false, false, false);
        a.add(1, 0, false, false, true, true);
        a.add(1, 2, false, true, true, false);
        a.add(2, 0, false, false, true, false);
        a.add(2, 1, true, true, false, true);
        a.add(2, 2, true, false, true, false);
        assert_eq!(a.euler, 0);
        a.gid = 1;
        assert_eq!(a.into_record().holes, 1);
    }

    #[test]
    fn pixel_unit_matches_add_and_first() {
        assert_eq!(
            format!("{:?}", Accum::pixel(3, 4, false, false, false, false)),
            format!("{:?}", Accum::first(3, 4))
        );
        // folding pixel units in raster order reproduces first + add
        let mut seq = Accum::first(2, 3);
        seq.add(2, 4, true, false, false, false);
        seq.add(3, 3, false, false, true, true);
        let mut folded = Accum::EMPTY;
        folded.fold(&Accum::pixel(2, 3, false, false, false, false));
        folded.fold(&Accum::pixel(2, 4, true, false, false, false));
        folded.fold(&Accum::pixel(3, 3, false, false, true, true));
        assert_eq!(format!("{seq:?}"), format!("{folded:?}"));
    }

    #[test]
    fn absorb_out_of_raster_order_keeps_raster_anchor() {
        let mut a = Accum::EMPTY;
        a.absorb(5, 2, false, false, false, false);
        a.absorb(1, 7, false, false, false, false); // raster-earlier pixel later
        assert_eq!(a.anchor, (1, 7));
        assert_eq!(a.area, 2);
        assert_eq!((a.min_r, a.min_c, a.max_r, a.max_c), (1, 2, 5, 7));
    }

    #[test]
    fn fold_keeps_smaller_nonzero_gid_and_empty_is_identity() {
        let mut a = Accum::first(0, 0);
        a.gid = 9;
        let mut b = Accum::first(1, 1);
        b.gid = 4;
        a.fold(&b);
        assert_eq!(a.gid, 4);
        assert_eq!(a.area, 2);
        let mut c = Accum::first(2, 2); // fresh partial, gid 0
        c.fold(&a);
        assert_eq!(c.gid, 4);
        let before = format!("{c:?}");
        c.fold(&Accum::EMPTY);
        assert_eq!(format!("{c:?}"), before);
        let mut e = Accum::EMPTY;
        e.fold(&c);
        assert_eq!(format!("{e:?}"), before);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut a = Accum::first(0, 0);
        a.gid = 7;
        sink.component(&a.into_record());
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].id, 7);
    }

    #[test]
    fn collect_label_image_applies_merges() {
        let mut sink = CollectLabelImage::default();
        sink.strip(0, 3, &[1, 0, 2]);
        sink.merge(1, 2);
        sink.strip(1, 3, &[1, 1, 2]);
        let li = sink.into_label_image();
        assert_eq!(li.num_components(), 1);
        assert_eq!(li.as_slice(), &[1, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn collect_label_image_chained_merges() {
        let mut sink = CollectLabelImage::default();
        sink.strip(0, 5, &[1, 0, 2, 0, 3]);
        sink.merge(2, 3);
        sink.merge(1, 2);
        sink.strip(1, 5, &[0, 1, 0, 0, 0]);
        let li = sink.into_label_image();
        assert_eq!(li.num_components(), 1);
    }

    #[test]
    fn empty_collect_label_image() {
        let li = CollectLabelImage::default().into_label_image();
        assert_eq!(li.num_components(), 0);
        assert_eq!((li.width(), li.height()), (0, 0));
    }
}
