//! Parallel in-band scanning — PAREMSP applied *within* one resident band.
//!
//! The band is partitioned row-wise exactly like PAREMSP partitions a
//! whole image ([`ccl_core::par::partition_rows`]); each chunk scans with
//! a disjoint provisional-label range into a shared [`ConcurrentParents`]
//! array whose low slots `1..=n_carry` hold the carried inter-band labels.
//! Chunk-boundary rows merge in parallel with the configured MERGER
//! (Algorithm 8 or its CAS variant), then the band's first row merges
//! against the carried boundary row, split into column spans across the
//! same workers — the same seam logic ([`merge_seam`] /
//! [`merge_seam_span`]) throughout.

use ccl_core::par::MergerStore;
use ccl_core::scan::{merge_seam, merge_seam_span, scan_two_line, split_spans};
use ccl_image::BinaryImage;
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents, LockedMerger};
use ccl_unionfind::EquivalenceStore;

use crate::labeler::StripConfig;

/// Scans `band` with `cfg.threads` workers. Returns the band's label
/// buffer and the shared parent array: slots `1..=n_carry` are the
/// carried labels (already seam-merged against the band's first row when
/// `carry` is non-empty), band labels start at `n_carry + 1`.
pub(crate) fn scan_band_parallel(
    band: &BinaryImage,
    carry: &[u32],
    n_carry: u32,
    cfg: &StripConfig,
) -> (Vec<u32>, ConcurrentParents) {
    match cfg.merger {
        ccl_core::par::MergerKind::Locked => {
            let merger = match cfg.lock_stripes {
                Some(s) => LockedMerger::with_stripes(s),
                None => LockedMerger::new(),
            };
            scan_with(band, carry, n_carry, cfg.threads, &merger)
        }
        ccl_core::par::MergerKind::Cas => {
            scan_with(band, carry, n_carry, cfg.threads, &CasMerger::new())
        }
    }
}

fn scan_with<M: ConcurrentMerger>(
    band: &BinaryImage,
    carry: &[u32],
    n_carry: u32,
    threads: usize,
    merger: &M,
) -> (Vec<u32>, ConcurrentParents) {
    let (w, h) = (band.width(), band.height());
    debug_assert!(w > 0 && h > 0, "caller filters degenerate bands");
    let mut chunks = ccl_core::par::partition_rows(h, w, threads.max(1));
    for chunk in &mut chunks {
        chunk.label_offset += n_carry;
    }
    let slots = chunks.last().map_or(n_carry as usize + 1, |c| {
        (c.label_offset + c.label_capacity) as usize
    });
    let parents = ConcurrentParents::new(slots);
    {
        let mut store = parents.chunk_store();
        for id in 1..=n_carry {
            store.new_label(id);
        }
    }
    let mut labels = vec![0u32; w * h];

    // Phase 1: disjoint-range chunk scans (contention-free by construction).
    rayon::scope(|s| {
        let mut rest: &mut [u32] = &mut labels;
        for chunk in &chunks {
            let (mine, tail) = rest.split_at_mut(chunk.num_rows() * w);
            rest = tail;
            let parents = &parents;
            s.spawn(move |_| {
                let mut store = parents.chunk_store();
                scan_two_line(
                    band,
                    chunk.rows.clone(),
                    mine,
                    &mut store,
                    chunk.label_offset,
                );
            });
        }
    });

    // Phase 2: chunk-boundary seams in parallel with the configured merger.
    if chunks.len() > 1 {
        let labels_ref = &labels;
        rayon::scope(|s| {
            for chunk in &chunks[1..] {
                let parents = &parents;
                let r = chunk.rows.start;
                s.spawn(move |_| {
                    let mut store = MergerStore::new(parents, merger);
                    merge_seam(
                        &labels_ref[(r - 1) * w..r * w],
                        &labels_ref[r * w..(r + 1) * w],
                        &mut store,
                    );
                });
            }
        });
    }

    // Phase 3: the inter-band seam. One seam per band, but O(width): the
    // row is split into column spans merged in parallel. A span's
    // diagonal probes read the full carry row ([`merge_seam_span`]), so
    // the partition merges exactly the same pairs as one whole-row call.
    if !carry.is_empty() {
        let spans = split_spans(w, threads);
        if spans.len() <= 1 {
            let mut store = MergerStore::new(&parents, merger);
            merge_seam(carry, &labels[..w], &mut store);
        } else {
            let cur = &labels[..w];
            rayon::scope(|s| {
                for span in spans {
                    let parents = &parents;
                    s.spawn(move |_| {
                        let mut store = MergerStore::new(parents, merger);
                        merge_seam_span(carry, cur, span, &mut store);
                    });
                }
            });
        }
    }

    (labels, parents)
}
