//! Parallel in-band scanning — PAREMSP applied *within* one resident band.
//!
//! The band is partitioned row-wise exactly like PAREMSP partitions a
//! whole image ([`ccl_core::par::partition_rows`]); each chunk scans with
//! a disjoint provisional-label range into a shared [`ConcurrentParents`]
//! array whose low slots `1..=carry_cap` are reserved for the carried
//! inter-band labels. Chunk-boundary rows merge in parallel with the
//! configured MERGER (Algorithm 8 or its CAS variant). In
//! [`FoldMode::Fused`](crate::FoldMode) every worker also accumulates its
//! chunk's partial [`Accum`] table while the pixels are cache-hot —
//! writes stay contention-free because partials live in the chunk's own
//! disjoint label range.
//!
//! The inter-band carry seam is *not* scanned here: it belongs to the
//! merge stage ([`carry_seam_parallel`]), which is the only per-band work
//! that depends on the previous band — the split that lets the pipelined
//! executor run this scan one band ahead.

use std::ops::Range;

use ccl_core::par::MergerStore;
use ccl_core::scan::{merge_seam, merge_seam_span, scan_two_line, split_spans};
use ccl_image::BinaryImage;
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents, LockedMerger};
use ccl_unionfind::EquivalenceStore;

use crate::analysis::Accum;
use crate::labeler::{accumulate_chunk, FoldMode, StripConfig};

/// Scan-stage output: the band's labels, the shared parent array, the
/// fused partial table (label-indexed) and the used label ranges.
pub(crate) type ParallelScan = (
    Vec<u32>,
    ConcurrentParents,
    Option<Vec<Accum>>,
    Vec<Range<u32>>,
);

/// Scans `band` with `cfg.threads` workers. Returns the band's label
/// buffer, the shared parent array (slots `1..=carry_cap` reserved for
/// carried labels, band labels from `carry_cap + 1`), the fused partial
/// accumulator table (label-indexed, [`FoldMode::Fused`] only) and the
/// label ranges each chunk actually allocated. `r0` is the global row of
/// the band's first row.
pub(crate) fn scan_band_parallel(
    band: &BinaryImage,
    r0: usize,
    carry_cap: u32,
    cfg: &StripConfig,
) -> ParallelScan {
    match cfg.merger {
        ccl_core::par::MergerKind::Locked => {
            let merger = match cfg.lock_stripes {
                Some(s) => LockedMerger::with_stripes(s),
                None => LockedMerger::new(),
            };
            scan_with(band, r0, carry_cap, cfg, &merger)
        }
        ccl_core::par::MergerKind::Cas => scan_with(band, r0, carry_cap, cfg, &CasMerger::new()),
    }
}

/// Merges the inter-band carry seam in column spans across the configured
/// workers (the paper's phase 3, run by the merge stage because it needs
/// the carry row). A span's diagonal probes read the full carry row
/// ([`merge_seam_span`]), so the partition merges exactly the same pairs
/// as one whole-row call.
pub(crate) fn carry_seam_parallel(
    carry: &[u32],
    top: &[u32],
    parents: &ConcurrentParents,
    cfg: &StripConfig,
) {
    match cfg.merger {
        ccl_core::par::MergerKind::Locked => {
            let merger = match cfg.lock_stripes {
                Some(s) => LockedMerger::with_stripes(s),
                None => LockedMerger::new(),
            };
            carry_seam_spans(carry, top, parents, cfg.threads, &merger);
        }
        ccl_core::par::MergerKind::Cas => {
            carry_seam_spans(carry, top, parents, cfg.threads, &CasMerger::new())
        }
    }
}

fn carry_seam_spans<M: ConcurrentMerger>(
    carry: &[u32],
    top: &[u32],
    parents: &ConcurrentParents,
    threads: usize,
    merger: &M,
) {
    let spans = split_spans(carry.len(), threads);
    if spans.len() <= 1 {
        let mut store = MergerStore::new(parents, merger);
        merge_seam(carry, top, &mut store);
        return;
    }
    rayon::scope(|s| {
        for span in spans {
            let parents = &parents;
            s.spawn(move |_| {
                let mut store = MergerStore::new(parents, merger);
                merge_seam_span(carry, top, span, &mut store);
            });
        }
    });
}

fn scan_with<M: ConcurrentMerger>(
    band: &BinaryImage,
    r0: usize,
    carry_cap: u32,
    cfg: &StripConfig,
    merger: &M,
) -> ParallelScan {
    let (w, h) = (band.width(), band.height());
    debug_assert!(w > 0 && h > 0, "caller filters degenerate bands");
    let fused = cfg.fold == FoldMode::Fused;
    let mut chunks = ccl_core::par::partition_rows(h, w, cfg.threads.max(1));
    for chunk in &mut chunks {
        chunk.label_offset += carry_cap;
    }
    let slots = chunks.last().map_or(carry_cap as usize + 1, |c| {
        (c.label_offset + c.label_capacity) as usize
    });
    let parents = ConcurrentParents::new(slots);
    {
        let mut store = parents.chunk_store();
        for id in 1..=carry_cap {
            store.new_label(id);
        }
    }
    let mut labels = vec![0u32; w * h];
    let mut partials = fused.then(|| vec![Accum::EMPTY; slots]);
    let mut nexts: Vec<u32> = chunks.iter().map(|c| c.label_offset).collect();

    // Phase 1: disjoint-range chunk scans (contention-free by
    // construction); fused mode accumulates each chunk's partial table in
    // the same worker, right after its scan, while the pixels are hot.
    rayon::scope(|s| {
        let mut rest: &mut [u32] = &mut labels;
        let mut rest_parts: &mut [Accum] = match &mut partials {
            Some(p) => &mut p[(carry_cap as usize + 1).min(slots)..],
            None => &mut [],
        };
        for (chunk, next_out) in chunks.iter().zip(nexts.iter_mut()) {
            let (mine, tail) = rest.split_at_mut(chunk.num_rows() * w);
            rest = tail;
            let (my_parts, ptail) = if fused {
                rest_parts.split_at_mut(chunk.label_capacity as usize)
            } else {
                (&mut [] as &mut [Accum], rest_parts)
            };
            rest_parts = ptail;
            let parents = &parents;
            s.spawn(move |_| {
                let mut store = parents.chunk_store();
                let next = scan_two_line(
                    band,
                    chunk.rows.clone(),
                    mine,
                    &mut store,
                    chunk.label_offset,
                );
                *next_out = next;
                if fused {
                    accumulate_chunk(
                        band,
                        mine,
                        chunk.rows.clone(),
                        r0,
                        chunk.label_offset,
                        my_parts,
                    );
                }
            });
        }
    });

    // Phase 2: chunk-boundary seams in parallel with the configured merger.
    if chunks.len() > 1 {
        let labels_ref = &labels;
        rayon::scope(|s| {
            for chunk in &chunks[1..] {
                let parents = &parents;
                let r = chunk.rows.start;
                s.spawn(move |_| {
                    let mut store = MergerStore::new(parents, merger);
                    merge_seam(
                        &labels_ref[(r - 1) * w..r * w],
                        &labels_ref[r * w..(r + 1) * w],
                        &mut store,
                    );
                });
            }
        });
    }

    let used = chunks
        .iter()
        .zip(&nexts)
        .map(|(c, &n)| c.label_offset..n)
        .collect();
    (labels, parents, partials, used)
}
