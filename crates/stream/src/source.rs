//! [`RowSource`] — the pull-based supplier of row bands.
//!
//! Everything upstream of the strip labeler implements this trait: the
//! in-memory adapter below, the incremental Netpbm decoders
//! ([`crate::netpbm`]) and the streamed synthetic generators
//! ([`crate::generators`]).

use ccl_image::BinaryImage;

use crate::error::StreamError;

/// A pull-based iterator of row bands: top-to-bottom, each band a binary
/// image of the stream's width.
pub trait RowSource {
    /// Width (columns) of every band.
    fn width(&self) -> usize;

    /// Rows not yet delivered, when the source knows (`None` for
    /// unbounded/unknown-length streams).
    fn rows_remaining(&self) -> Option<usize>;

    /// Pulls the next band of at most `max_rows` rows; `Ok(None)` once
    /// the stream is exhausted.
    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError>;
}

/// Adapts an in-memory [`BinaryImage`]: bands are copied out row ranges.
/// Useful for testing band-size invariance and for feeding resident
/// images through the streaming API.
pub struct MemorySource<'a> {
    image: &'a BinaryImage,
    next_row: usize,
}

impl<'a> MemorySource<'a> {
    /// Streams `image` from its first row.
    pub fn new(image: &'a BinaryImage) -> Self {
        MemorySource { image, next_row: 0 }
    }
}

impl RowSource for MemorySource<'_> {
    fn width(&self) -> usize {
        self.image.width()
    }

    fn rows_remaining(&self) -> Option<usize> {
        Some(self.image.height() - self.next_row)
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        assert!(max_rows > 0, "band height must be positive");
        let rows = max_rows.min(self.image.height() - self.next_row);
        if rows == 0 {
            return Ok(None);
        }
        let band = self.image.crop(self.next_row, 0, self.image.width(), rows);
        self.next_row += rows;
        Ok(Some(band))
    }
}

/// Like [`MemorySource`], but owning its image — the `'static` variant
/// required when a source is moved onto another thread (e.g. behind a
/// `ccl-pipeline` prefetcher).
pub struct OwnedMemorySource {
    image: BinaryImage,
    next_row: usize,
}

impl OwnedMemorySource {
    /// Streams `image` from its first row, taking ownership.
    pub fn new(image: BinaryImage) -> Self {
        OwnedMemorySource { image, next_row: 0 }
    }
}

impl RowSource for OwnedMemorySource {
    fn width(&self) -> usize {
        self.image.width()
    }

    fn rows_remaining(&self) -> Option<usize> {
        Some(self.image.height() - self.next_row)
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        assert!(max_rows > 0, "band height must be positive");
        let rows = max_rows.min(self.image.height() - self.next_row);
        if rows == 0 {
            return Ok(None);
        }
        let band = self.image.crop(self.next_row, 0, self.image.width(), rows);
        self.next_row += rows;
        Ok(Some(band))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_bands_cover_image() {
        let img = BinaryImage::parse(
            "#..
             .#.
             ..#
             ###
             ...",
        );
        let mut src = MemorySource::new(&img);
        assert_eq!(src.width(), 3);
        assert_eq!(src.rows_remaining(), Some(5));
        let b1 = src.next_band(2).unwrap().unwrap();
        assert_eq!(b1.row(0), img.row(0));
        assert_eq!(b1.row(1), img.row(1));
        let b2 = src.next_band(2).unwrap().unwrap();
        assert_eq!(b2.row(1), img.row(3));
        let b3 = src.next_band(2).unwrap().unwrap();
        assert_eq!(b3.height(), 1);
        assert_eq!(b3.row(0), img.row(4));
        assert!(src.next_band(2).unwrap().is_none());
        assert_eq!(src.rows_remaining(), Some(0));
    }

    #[test]
    fn empty_image_is_immediately_exhausted() {
        let img = BinaryImage::zeros(4, 0);
        let mut src = MemorySource::new(&img);
        assert!(src.next_band(8).unwrap().is_none());
    }

    #[test]
    fn owned_source_matches_borrowed_source() {
        let img = BinaryImage::from_fn(5, 7, |r, c| (r + 2 * c) % 3 == 0);
        let mut borrowed = MemorySource::new(&img);
        let mut owned = OwnedMemorySource::new(img.clone());
        assert_eq!(owned.width(), 5);
        loop {
            let a = borrowed.next_band(3).unwrap();
            let b = owned.next_band(3).unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
