//! Netpbm file sources — incremental PBM/PGM decoding as [`RowSource`]s.
//!
//! The decoders themselves live in [`ccl_image::io::stream`]; these
//! adapters bind them to the labeling pipeline. PGM streams are binarized
//! band-by-band with the paper's `im2bw` threshold, so a grayscale raster
//! of any height labels in O(band) memory end to end.

use std::io::Read;

use ccl_image::io::stream::{PbmBands, PgmBands};
use ccl_image::threshold::im2bw;
use ccl_image::BinaryImage;

use crate::error::StreamError;
use crate::source::RowSource;

/// Streams a PBM (`P1`/`P4`) file as row bands.
pub struct PbmSource<R: Read> {
    bands: PbmBands<R>,
}

impl<R: Read> PbmSource<R> {
    /// Parses the header from `reader` (wrap files in a
    /// [`std::io::BufReader`]).
    pub fn new(reader: R) -> Result<Self, StreamError> {
        Ok(PbmSource {
            bands: PbmBands::new(reader)?,
        })
    }

    /// Total image height declared by the header.
    pub fn height(&self) -> usize {
        self.bands.height()
    }
}

impl<R: Read> RowSource for PbmSource<R> {
    fn width(&self) -> usize {
        self.bands.width()
    }

    fn rows_remaining(&self) -> Option<usize> {
        Some(self.bands.rows_remaining())
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        Ok(self.bands.next_band(max_rows)?)
    }
}

/// Streams a PGM (`P2`/`P5`) file as row bands, binarized with the fixed
/// `im2bw` threshold (the paper's preparation pipeline).
pub struct PgmSource<R: Read> {
    bands: PgmBands<R>,
    level: f64,
}

impl<R: Read> PgmSource<R> {
    /// Parses the header from `reader`; `level` is the `im2bw` luminance
    /// threshold in `[0, 1]` (the paper uses 0.5).
    pub fn new(reader: R, level: f64) -> Result<Self, StreamError> {
        Ok(PgmSource {
            bands: PgmBands::new(reader)?,
            level,
        })
    }

    /// Total image height declared by the header.
    pub fn height(&self) -> usize {
        self.bands.height()
    }
}

impl<R: Read> RowSource for PgmSource<R> {
    fn width(&self) -> usize {
        self.bands.width()
    }

    fn rows_remaining(&self) -> Option<usize> {
        Some(self.bands.rows_remaining())
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        match self.bands.next_band(max_rows)? {
            Some(gray) => Ok(Some(im2bw(&gray, self.level))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_image::io::{pbm, pgm};
    use ccl_image::GrayImage;

    #[test]
    fn pbm_source_streams_written_image() {
        let img = BinaryImage::parse("#.# .#. #.# ###");
        let bytes = pbm::write_binary(&img);
        let mut src = PbmSource::new(bytes.as_slice()).unwrap();
        assert_eq!((src.width(), src.height()), (3, 4));
        let mut rows = 0;
        while let Some(band) = src.next_band(3).unwrap() {
            for r in 0..band.height() {
                assert_eq!(band.row(r), img.row(rows + r));
            }
            rows += band.height();
        }
        assert_eq!(rows, 4);
    }

    #[test]
    fn pgm_source_matches_whole_image_im2bw() {
        let gray = GrayImage::from_fn(9, 6, |r, c| (r * 37 + c * 19) as u8);
        let expected = im2bw(&gray, 0.5);
        let bytes = pgm::write_binary(&gray);
        let mut src = PgmSource::new(bytes.as_slice(), 0.5).unwrap();
        let mut rows = 0;
        while let Some(band) = src.next_band(2).unwrap() {
            for r in 0..band.height() {
                assert_eq!(band.row(r), expected.row(rows + r), "row {}", rows + r);
            }
            rows += band.height();
        }
        assert_eq!(rows, 6);
        assert_eq!(src.rows_remaining(), Some(0));
    }

    #[test]
    fn bad_magic_is_an_error() {
        assert!(PbmSource::new(&b"P2\n1 1\n255\n0\n"[..]).is_err());
        assert!(PgmSource::new(&b"P1\n1 1\n0\n"[..], 0.5).is_err());
    }
}
