//! Convenience drivers — pull a whole [`RowSource`] through a
//! [`StripLabeler`].

use ccl_core::label::LabelImage;

use crate::analysis::{CollectLabelImage, ComponentRecord, ComponentSink, CountComponents};
use crate::error::StreamError;
use crate::labeler::{StreamStats, StripConfig, StripLabeler};
use crate::source::RowSource;

/// Streams `source` through a strip labeler in bands of `band_rows`,
/// emitting every component through `sink`. Never holds more than one
/// band (plus the carry row) of pixels.
pub fn label_stream<S, C>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
    sink: &mut C,
) -> Result<StreamStats, StreamError>
where
    S: RowSource + ?Sized,
    C: ComponentSink,
{
    let mut labeler = StripLabeler::with_config(source.width(), cfg);
    while let Some(band) = source.next_band(band_rows)? {
        labeler.push_band(&band, sink)?;
    }
    Ok(labeler.finish(sink))
}

/// [`label_stream`] collecting every [`ComponentRecord`] (emission order:
/// closure order).
pub fn analyze_stream<S>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
) -> Result<(Vec<ComponentRecord>, StreamStats), StreamError>
where
    S: RowSource + ?Sized,
{
    let mut records = Vec::new();
    let stats = label_stream(source, band_rows, cfg, &mut records)?;
    Ok((records, stats))
}

/// Streams `source` and reconciles the labeled strips into a full
/// [`LabelImage`] — for callers who *do* want label output and can afford
/// it (the image is O(width × height); the labeling still runs in O(band)
/// working memory on top).
pub fn stream_to_label_image<S>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
) -> Result<(LabelImage, StreamStats), StreamError>
where
    S: RowSource + ?Sized,
{
    let mut labeler = StripLabeler::with_config(source.width(), cfg);
    let mut components = CountComponents::default();
    let mut strips = CollectLabelImage::default();
    while let Some(band) = source.next_band(band_rows)? {
        labeler.push_band_with_labels(&band, &mut components, &mut strips)?;
    }
    let stats = labeler.finish(&mut components);
    Ok((strips.into_label_image(), stats))
}

/// [`label_stream`] with the two-stage pipeline of [`crate::pipeline`]:
/// band *k + 1*'s scan (and fused partial accumulation) overlaps band
/// *k*'s carry seam / fold / compaction on a worker thread. Components
/// are bit-identical to the synchronous driver;
/// [`StreamStats::peak_resident_rows`] reports the pipeline's two-band +
/// carry residency.
pub fn label_stream_pipelined<S, C>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
    sink: &mut C,
) -> Result<StreamStats, StreamError>
where
    S: RowSource + Send + ?Sized,
    C: ComponentSink,
{
    crate::pipeline::run_pipelined(source, band_rows, cfg, sink, None)
}

/// [`analyze_stream`] with the two-stage pipeline (see
/// [`label_stream_pipelined`]).
pub fn analyze_stream_pipelined<S>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
) -> Result<(Vec<ComponentRecord>, StreamStats), StreamError>
where
    S: RowSource + Send + ?Sized,
{
    let mut records = Vec::new();
    let stats = label_stream_pipelined(source, band_rows, cfg, &mut records)?;
    Ok((records, stats))
}

/// [`stream_to_label_image`] with the two-stage pipeline (see
/// [`label_stream_pipelined`]): labeled strips are emitted by the merge
/// stage while the scan stage works one band ahead.
pub fn stream_to_label_image_pipelined<S>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
) -> Result<(LabelImage, StreamStats), StreamError>
where
    S: RowSource + Send + ?Sized,
{
    let mut components = CountComponents::default();
    let mut strips = CollectLabelImage::default();
    let stats =
        crate::pipeline::run_pipelined(source, band_rows, cfg, &mut components, Some(&mut strips))?;
    Ok((strips.into_label_image(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;
    use ccl_image::BinaryImage;

    #[test]
    fn analyze_stream_counts_components() {
        let img = BinaryImage::parse(
            "##..##
             ......
             .####.",
        );
        let mut src = MemorySource::new(&img);
        let (records, stats) = analyze_stream(&mut src, 2, StripConfig::default()).unwrap();
        assert_eq!(stats.components, 3);
        assert_eq!(records.len(), 3);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.bands, 2);
    }

    #[test]
    fn stream_to_label_image_matches_aremsp() {
        let img = BinaryImage::parse(
            "#.#
             .#.
             #.#",
        );
        let mut src = MemorySource::new(&img);
        let (li, stats) = stream_to_label_image(&mut src, 1, StripConfig::default()).unwrap();
        assert_eq!(stats.components, 1);
        let reference = ccl_core::seq::aremsp(&img);
        assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
    }
}
