//! Pipelined band execution — overlap band *k*'s merge with band
//! *k + 1*'s scan (the strip-labeler counterpart of `ccl-tiles`'
//! pipelined executor).
//!
//! The strip labeler's work per band splits into two stages with one
//! dependency between consecutive bands:
//!
//! * **scan stage** — pull the next band from the source, scan it
//!   (two-line + RemSP or PAREMSP worker groups), merge the
//!   chunk-boundary seams and build the fused partial accumulator
//!   tables ([`scan_band`](crate::labeler)): independent of everything
//!   before it, because carried ids are reserved by the width bound
//!   `⌈w/2⌉` rather than the actual open-component count;
//! * **merge stage** — the carry seam, the per-label accumulator fold,
//!   compaction and component emission
//!   ([`StripLabeler::merge_scanned_band`](crate::StripLabeler)):
//!   inherently sequential, because each band's carry feeds the next.
//!
//! The executor runs the scan stage on a worker thread and the merge
//! stage on the caller's, handing scanned bands across a **rendezvous
//! channel** (capacity 0): the scanner cannot run more than one band
//! ahead, so at any instant at most *two* bands are alive — band *k*
//! (labels, under merge) and band *k + 1* (pixels + labels, under scan)
//! — plus the carried boundary row. That is the pipelined residency
//! bound `2 × band_rows + 1` pixel rows, reported through
//! [`StreamStats::peak_resident_rows`](crate::StreamStats).
//!
//! Errors never hang the pipeline: a failing source or scan surfaces
//! through the channel disconnect + join, a failing merge drops the
//! receiver so the scanner's blocked send aborts, and a panicking source
//! is converted into [`StreamError::Worker`].

use std::sync::mpsc;

use crate::analysis::{ComponentSink, LabelSink};
use crate::error::StreamError;
use crate::labeler::{scan_band, StreamStats, StripConfig, StripLabeler};
use crate::source::RowSource;

/// Streams `source` through a strip labeler with the two-stage pipeline
/// described in the module docs. Output (components, merges, strips) is
/// bit-identical to the synchronous drivers; only
/// [`StreamStats::peak_resident_rows`](crate::StreamStats) differs,
/// reporting the pipeline's two-band + carry residency.
pub(crate) fn run_pipelined<S>(
    source: &mut S,
    band_rows: usize,
    cfg: StripConfig,
    components: &mut dyn ComponentSink,
    mut labels_sink: Option<&mut dyn LabelSink>,
) -> Result<StreamStats, StreamError>
where
    S: RowSource + Send + ?Sized,
{
    let width = source.width();
    // No carry row can hold more open components than ⌈w/2⌉ (adjacent
    // foreground pixels share one), so reserving that many low slots
    // makes every scan independent of the previous band's compaction.
    let carry_cap = width.div_ceil(2) as u32;
    let mut labeler = StripLabeler::with_config(width, cfg.clone());

    // Residency: while the merge stage holds band k, the scan stage holds
    // at most band k + 1 (rendezvous channel — the send blocks until the
    // merge stage takes the band). Deterministic accounting: the max over
    // consecutive band-height pairs, plus the carry row once two or more
    // bands exist.
    let mut prev_h = 0usize;
    let mut max_pair = 0usize;
    let mut nbands = 0usize;

    let (tx, rx) = mpsc::sync_channel(0);
    let scan_cfg = cfg;
    let merge_result = std::thread::scope(|s| {
        let scanner = s.spawn(move || -> Result<(), StreamError> {
            let mut r0 = 0usize;
            while let Some(band) = source.next_band(band_rows)? {
                let scanned = scan_band(&band, width, &scan_cfg, carry_cap, r0)?;
                r0 += band.height();
                drop(band); // pixels are dead once scanned
                if tx.send(scanned).is_err() {
                    break; // merge stage stopped early (error): unblock and exit
                }
            }
            Ok(())
        });

        let mut merged: Result<(), StreamError> = Ok(());
        while let Ok(band) = rx.recv() {
            if !band.degenerate {
                nbands += 1;
                max_pair = max_pair.max(prev_h + band.h);
                prev_h = band.h;
            }
            let sink_ref = labels_sink.as_mut().map(|s| &mut **s as &mut dyn LabelSink);
            if let Err(e) = labeler.merge_scanned_band(band, components, sink_ref) {
                merged = Err(e);
                break;
            }
        }
        // A merge error leaves bands queued: drop the receiver so the
        // scanner's blocked send fails and the thread exits.
        drop(rx);
        let scanned = match scanner.join() {
            Ok(r) => r,
            Err(payload) => Err(StreamError::worker_panic(payload.as_ref())),
        };
        merged.and(scanned)
    });
    merge_result?;

    let mut stats = labeler.finish(components);
    stats.peak_resident_rows = max_pair + usize::from(nbands >= 2);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{CollectLabelImage, ComponentRecord, CountComponents};
    use crate::labeler::FoldMode;
    use crate::source::{MemorySource, OwnedMemorySource};
    use ccl_image::BinaryImage;

    #[test]
    fn pipelined_output_matches_synchronous() {
        let img = BinaryImage::from_fn(23, 37, |r, c| (r * 31 + c * 17) % 3 != 0);
        let mut sync_records: Vec<ComponentRecord> = Vec::new();
        let mut sync_src = MemorySource::new(&img);
        let sync_stats = crate::driver::label_stream(
            &mut sync_src,
            4,
            StripConfig::default(),
            &mut sync_records,
        )
        .unwrap();

        for fold in [FoldMode::Sequential, FoldMode::Fused] {
            let mut records: Vec<ComponentRecord> = Vec::new();
            let mut src = OwnedMemorySource::new(img.clone());
            let cfg = StripConfig::default().with_fold(fold);
            let stats = run_pipelined(&mut src, 4, cfg, &mut records, None).unwrap();
            assert_eq!(records, sync_records, "{fold}");
            assert_eq!(stats.components, sync_stats.components);
            assert_eq!(stats.rows, sync_stats.rows);
            assert_eq!(stats.bands, sync_stats.bands);
            // two 4-row bands + the carry row
            assert_eq!(stats.peak_resident_rows, 2 * 4 + 1);
        }
    }

    #[test]
    fn pipelined_strips_reconcile_to_the_same_partition() {
        let img = BinaryImage::from_fn(17, 29, |r, c| (r * 7 + c * 5) % 4 != 0);
        let mut comps = CountComponents::default();
        let mut strips = CollectLabelImage::default();
        let mut src = OwnedMemorySource::new(img.clone());
        let stats = run_pipelined(
            &mut src,
            3,
            StripConfig::default(),
            &mut comps,
            Some(&mut strips),
        )
        .unwrap();
        let li = strips.into_label_image();
        assert_eq!(li.num_components() as u64, stats.components);
        let reference = ccl_core::seq::aremsp(&img);
        assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
    }

    #[test]
    fn panicking_source_surfaces_as_worker_error() {
        struct PanickingSource {
            left: usize,
        }
        impl RowSource for PanickingSource {
            fn width(&self) -> usize {
                4
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_band(&mut self, _max: usize) -> Result<Option<BinaryImage>, StreamError> {
                if self.left == 0 {
                    panic!("generator exploded mid-stream");
                }
                self.left -= 1;
                Ok(Some(BinaryImage::ones(4, 2)))
            }
        }
        let mut src = PanickingSource { left: 3 };
        let mut comps = CountComponents::default();
        let err = run_pipelined(&mut src, 2, StripConfig::default(), &mut comps, None).unwrap_err();
        match err {
            StreamError::Worker(msg) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected Worker error, got {other:?}"),
        }
    }
}
