//! Property tests for the fused-accumulation algebra: folding
//! [`Accum`]s with [`Accum::merge_with`] is **commutative** and
//! **associative** (with [`Accum::EMPTY`] as the identity of the full
//! [`Foldable::fold`]), across all 15 synthetic generator families.
//!
//! The fused path merges per-chunk partials in whatever order the seam
//! phase happens to union labels — nondeterministic under concurrent
//! mergers — so fold-order independence is exactly the property that
//! makes its output bit-identical to the sequential per-pixel pass.
//! Every field takes part: integer counters, bbox min/max, the raster-min
//! anchor, and the centroid sums, whose f64 additions are exact (integer
//! values below 2^53) and therefore genuinely associative.

use proptest::prelude::*;

use ccl_core::scan::Foldable as _;
use ccl_datasets::synth::adversarial::{
    comb, fine_checkerboard, hstripes, serpentine, spiral, vstripes,
};
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_datasets::synth::shapes::{shape_scene, text_page};
use ccl_datasets::synth::texture::{checkerboard, grating, rings, stripes};
use ccl_image::BinaryImage;
use ccl_stream::Accum;

/// One image per synthetic generator family (mirrors the equivalence
/// suites).
fn generator_image(idx: usize, w: usize, h: usize, seed: u64) -> BinaryImage {
    let params = BlobParams {
        coverage: 0.35,
        min_radius: 1,
        max_radius: 4,
    };
    let lc = LandcoverParams {
        base_scale: 6.0,
        octaves: 3,
        persistence: 0.5,
    };
    match idx {
        0 => bernoulli(w, h, 0.45, seed),
        1 => landcover(w, h, lc, seed),
        2 => blob_field(w, h, params, seed),
        3 => shape_scene(w, h, 1 + (seed % 7) as usize, seed),
        4 => text_page(w, h, 1, seed),
        5 => checkerboard(w, h, 1 + (seed % 3) as usize),
        6 => stripes(w, h, 5, 2, (1, 1)),
        7 => grating(w, h, 0.31, 0.17, 0.4),
        8 => rings(w, h, 4.0),
        9 => serpentine(w, h),
        10 => comb(w, h, h / 2),
        11 => fine_checkerboard(w, h),
        12 => hstripes(w, h),
        13 => vstripes(w, h),
        _ => spiral(w.max(3)),
    }
}

const NUM_GENERATORS: usize = 15;

/// Exact (bitwise for the f64 sums) comparison key over every field
/// `merge_with` touches.
type Key = (
    u64,
    (usize, usize, usize, usize),
    u64,
    u64,
    (usize, usize),
    u64,
    i64,
);

fn key(a: &Accum) -> Key {
    (
        a.area,
        (a.min_r, a.min_c, a.max_r, a.max_c),
        a.sum_r.to_bits(),
        a.sum_c.to_bits(),
        a.anchor,
        a.perimeter,
        a.euler,
    )
}

/// The image's foreground pixels as single-pixel accumulators with their
/// true already-scanned neighbour masks — the units the fused path folds.
fn pixel_units(img: &BinaryImage) -> Vec<Accum> {
    let fg = |r: isize, c: isize| img.get_or_bg(r, c) == 1;
    let mut units = Vec::new();
    for r in 0..img.height() {
        for c in 0..img.width() {
            if img.get(r, c) == 0 {
                continue;
            }
            let (ri, ci) = (r as isize, c as isize);
            units.push(Accum::pixel(
                r,
                c,
                fg(ri, ci - 1),
                fg(ri - 1, ci - 1),
                fg(ri - 1, ci),
                fg(ri - 1, ci + 1),
            ));
        }
    }
    units
}

/// Splits `units` into `parts` non-empty partials by a seeded assignment,
/// folding each part's pixels in raster order.
fn partition(units: &[Accum], parts: usize, seed: u64) -> Vec<Accum> {
    let mut state = seed | 1;
    let mut partials = vec![Accum::EMPTY; parts.max(1)];
    for u in units {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let slot = (state >> 33) as usize % partials.len();
        partials[slot].fold(u);
    }
    partials.retain(|p| p.area > 0);
    partials
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `merge_with` is commutative: a ∪ b == b ∪ a on partials drawn
    /// from every generator family.
    #[test]
    fn merge_with_is_commutative(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let units = pixel_units(&generator_image(gen, w, h, seed));
        let partials = partition(&units, 2, seed ^ 0xA5A5);
        if partials.len() == 2 {
            let mut ab = partials[0];
            ab.merge_with(&partials[1]);
            let mut ba = partials[1];
            ba.merge_with(&partials[0]);
            prop_assert_eq!(key(&ab), key(&ba), "generator {}", gen);
        }
    }

    /// `merge_with` is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_with_is_associative(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let units = pixel_units(&generator_image(gen, w, h, seed));
        let partials = partition(&units, 3, seed ^ 0x5A5A);
        if partials.len() == 3 {
            let mut left = partials[0];
            left.merge_with(&partials[1]);
            left.merge_with(&partials[2]);
            let mut bc = partials[1];
            bc.merge_with(&partials[2]);
            let mut right = partials[0];
            right.merge_with(&bc);
            prop_assert_eq!(key(&left), key(&right), "generator {}", gen);
        }
    }

    /// Fold-order independence end to end: any partition of a raster's
    /// pixel units, folded in any order (forward, reverse, interleaved
    /// tree), reproduces the raster-order sequential fold bit for bit —
    /// the invariant that lets the seam phase merge partials in
    /// nondeterministic order.
    #[test]
    fn any_fold_order_matches_the_sequential_fold(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        parts in 1usize..=9,
        seed in 0u64..1000,
    ) {
        let units = pixel_units(&generator_image(gen, w, h, seed));
        if !units.is_empty() {
            // raster-order sequential fold (what Accum::first + add build)
            let mut seq = Accum::EMPTY;
            for u in &units {
                seq.fold(u);
            }

            let partials = partition(&units, parts, seed ^ 0x1234);

            // forward left-fold of the partials
            let mut fwd = Accum::EMPTY;
            for p in &partials {
                fwd.fold(p);
            }
            prop_assert_eq!(key(&fwd), key(&seq), "forward, generator {}", gen);

            // reverse left-fold
            let mut rev = Accum::EMPTY;
            for p in partials.iter().rev() {
                rev.fold(p);
            }
            prop_assert_eq!(key(&rev), key(&seq), "reverse, generator {}", gen);

            // pairwise tree fold (seam-like: neighbours union first)
            let mut level: Vec<Accum> = partials;
            while level.len() > 1 {
                let mut next_level = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    let mut m = pair[0];
                    if let Some(b) = pair.get(1) {
                        m.merge_with(b);
                    }
                    next_level.push(m);
                }
                level = next_level;
            }
            prop_assert_eq!(key(&level[0]), key(&seq), "tree, generator {}", gen);
        }
    }
}
