//! Integration tests: the strip labeler's streamed analysis is equivalent
//! to whole-image AREMSP + `ccl_core::analysis` on the same pixels —
//! across band heights, synthetic generators, and thread counts — while
//! never holding more than one band plus the carry row.

use proptest::prelude::*;

use ccl_core::analysis::region_properties;
use ccl_core::seq::aremsp;
use ccl_core::verify::labelings_equivalent;
use ccl_datasets::synth::adversarial::{
    comb, fine_checkerboard, hstripes, serpentine, spiral, vstripes,
};
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_datasets::synth::shapes::{shape_scene, text_page};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_datasets::synth::texture::{checkerboard, grating, rings, stripes};
use ccl_image::BinaryImage;
use ccl_stream::{
    analyze_stream, analyze_stream_pipelined, stream_to_label_image, ComponentRecord, FoldMode,
    MemorySource, OwnedMemorySource, RowSource, StripConfig, StripLabeler,
};

/// One image per synthetic generator family, sized `w × h` (the spiral is
/// square by construction).
fn generator_image(idx: usize, w: usize, h: usize, seed: u64) -> BinaryImage {
    let params = BlobParams {
        coverage: 0.35,
        min_radius: 1,
        max_radius: 4,
    };
    let lc = LandcoverParams {
        base_scale: 6.0,
        octaves: 3,
        persistence: 0.5,
    };
    match idx {
        0 => bernoulli(w, h, 0.45, seed),
        1 => landcover(w, h, lc, seed),
        2 => blob_field(w, h, params, seed),
        3 => shape_scene(w, h, 1 + (seed % 7) as usize, seed),
        4 => text_page(w, h, 1, seed),
        5 => checkerboard(w, h, 1 + (seed % 3) as usize),
        6 => stripes(w, h, 5, 2, (1, 1)),
        7 => grating(w, h, 0.31, 0.17, 0.4),
        8 => rings(w, h, 4.0),
        9 => serpentine(w, h),
        10 => comb(w, h, h / 2),
        11 => fine_checkerboard(w, h),
        12 => hstripes(w, h),
        13 => vstripes(w, h),
        _ => spiral(w.max(3)),
    }
}

const NUM_GENERATORS: usize = 15;

/// Per-component features keyed by the raster-first anchor (unique per
/// component), comparable across labelers: anchor, area, bbox, centroid,
/// hole count. Centroid sums are integer accumulations in f64 (exact
/// below 2^53), so equality is exact.
type Features = Vec<(
    (usize, usize),
    u64,
    (usize, usize, usize, usize),
    (f64, f64),
    u64,
)>;

fn whole_image_features(img: &BinaryImage) -> Features {
    let labels = aremsp(img);
    let mut anchors = vec![usize::MAX; labels.num_components() as usize + 1];
    for (i, &l) in labels.as_slice().iter().enumerate() {
        if l != 0 && anchors[l as usize] == usize::MAX {
            anchors[l as usize] = i;
        }
    }
    // independent hole oracle: one-pass V − E + F census per component
    let holes = ccl_core::analysis::count_holes_per_label(&labels);
    let w = img.width();
    let mut out: Features = region_properties(&labels)
        .into_iter()
        .map(|region| {
            let a = anchors[region.label as usize];
            (
                (a / w, a % w),
                region.area as u64,
                region.bbox,
                region.centroid,
                holes[region.label as usize - 1],
            )
        })
        .collect();
    out.sort_unstable_by_key(|f| f.0);
    out
}

fn stream_features(records: &[ComponentRecord]) -> Features {
    let mut out: Features = records
        .iter()
        .map(|r| (r.anchor, r.area, r.bbox, r.centroid, r.holes))
        .collect();
    out.sort_unstable_by_key(|f| f.0);
    out
}

fn banded_features(img: &BinaryImage, band: usize, cfg: StripConfig) -> Features {
    let mut src = MemorySource::new(img);
    let (records, stats) = analyze_stream(&mut src, band, cfg).unwrap();
    assert_eq!(stats.components as usize, records.len());
    assert!(stats.peak_resident_rows <= 2 * band.max(1));
    stream_features(&records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite: `StripLabeler` analysis (count/areas/bboxes/centroids)
    /// equals `aremsp` + `ccl_core::analysis` on the same image, across
    /// band heights 1..=H and all synthetic generators.
    #[test]
    fn strip_analysis_matches_whole_image_analysis(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=20,
        h in 1usize..=20,
        band in 1usize..=21,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let expected = whole_image_features(&img);
        let got = banded_features(&img, band, StripConfig::default());
        prop_assert_eq!(got, expected, "generator {} band {}", gen, band);
    }

    /// The in-band PAREMSP mode is output-identical to the sequential
    /// mode, for every merger and thread count.
    #[test]
    fn parallel_mode_matches_sequential(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=18,
        h in 1usize..=18,
        band in 1usize..=19,
        threads in 2usize..=8,
        cas in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        use ccl_core::par::MergerKind;
        let img = generator_image(gen, w, h, seed);
        let cfg = StripConfig::parallel(threads)
            .with_merger(if cas { MergerKind::Cas } else { MergerKind::Locked });
        let seq = banded_features(&img, band, StripConfig::sequential());
        let par = banded_features(&img, band, cfg);
        prop_assert_eq!(par, seq, "generator {} threads {}", gen, threads);
    }

    /// Tentpole acceptance: the fused fold (per-chunk partial
    /// accumulators merged at the seam) is bit-identical to the
    /// sequential per-pixel fold — records *and* stats — across
    /// generators, band heights and thread counts, synchronous and
    /// pipelined.
    #[test]
    fn fused_fold_bit_identical_to_sequential_fold(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=18,
        h in 1usize..=18,
        band in 1usize..=19,
        threads in 1usize..=6,
        pipelined in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let run = |fold: FoldMode| {
            let cfg = StripConfig::parallel(threads).with_fold(fold);
            if pipelined {
                let mut src = OwnedMemorySource::new(img.clone());
                analyze_stream_pipelined(&mut src, band, cfg).unwrap()
            } else {
                let mut src = MemorySource::new(&img);
                analyze_stream(&mut src, band, cfg).unwrap()
            }
        };
        let (seq_records, seq_stats) = run(FoldMode::Sequential);
        let (fused_records, fused_stats) = run(FoldMode::Fused);
        prop_assert_eq!(
            fused_records, seq_records,
            "generator {} band {} threads {} pipelined {}", gen, band, threads, pipelined
        );
        prop_assert_eq!(fused_stats, seq_stats);
    }

    /// The pipelined scan ∥ merge executor produces the same records as
    /// the synchronous driver, and its residency never exceeds two bands
    /// plus the carry row.
    #[test]
    fn pipelined_strip_matches_synchronous(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=18,
        h in 1usize..=18,
        band in 1usize..=19,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut sync_src = MemorySource::new(&img);
        let (sync_records, sync_stats) =
            analyze_stream(&mut sync_src, band, StripConfig::default()).unwrap();
        let mut src = OwnedMemorySource::new(img.clone());
        let (records, stats) =
            analyze_stream_pipelined(&mut src, band, StripConfig::default()).unwrap();
        prop_assert_eq!(records, sync_records, "generator {} band {}", gen, band);
        prop_assert_eq!(stats.components, sync_stats.components);
        prop_assert_eq!(stats.rows, sync_stats.rows);
        prop_assert_eq!(stats.bands, sync_stats.bands);
        prop_assert!(stats.peak_resident_rows <= 2 * band.min(img.height().max(1)) + 1);
    }

    /// Labeled-strip output reconciles into the exact whole-image
    /// partition.
    #[test]
    fn strip_labels_reconcile_to_aremsp_partition(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        band in 1usize..=17,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut src = MemorySource::new(&img);
        let (li, stats) = stream_to_label_image(&mut src, band, StripConfig::default()).unwrap();
        let reference = aremsp(&img);
        prop_assert_eq!(stats.components, reference.num_components() as u64);
        prop_assert!(labelings_equivalent(&li, &reference));
    }
}

/// Acceptance-criteria shape at CI-friendly scale: a tall synthetic image
/// streamed straight from a generator, never materialized, produces
/// component count + per-component stats identical to whole-image AREMSP,
/// while the labeler holds at most 2 bands of pixel rows.
#[test]
fn tall_stream_flat_memory_matches_whole_image() {
    let (w, h, band) = (256, 16_384, 256);
    let mut source = bernoulli_stream(w, h, 0.5, 77);
    let mut records: Vec<ComponentRecord> = Vec::new();
    let mut labeler = StripLabeler::new(w);
    while let Some(b) = RowSource::next_band(&mut source, band).unwrap() {
        labeler.push_band(&b, &mut records).unwrap();
        assert!(
            labeler.peak_resident_rows() <= 2 * band,
            "resident rows exceeded two bands"
        );
    }
    let stats = labeler.finish(&mut records);
    assert_eq!(stats.rows, h);
    assert_eq!(stats.peak_resident_rows, band + 1);

    let img = bernoulli(w, h, 0.5, 77);
    assert_eq!(
        stats.components,
        aremsp(&img).num_components() as u64,
        "component count"
    );
    assert_eq!(stream_features(&records), whole_image_features(&img));
}

/// The full acceptance-criteria scale: 1,024 × 262,144 (268 Mpixel) in
/// 1,024-row bands, labeled twice — synchronously (fused fold, band +
/// carry resident) and through the pipelined scan ∥ merge executor
/// (which must report its two-band + carry residency and stay within the
/// ≤ 2-band bound) — with bit-identical records. Ignored by default
/// (minutes in debug builds); run with
/// `cargo test --release -p ccl-stream -- --ignored`.
#[test]
#[ignore = "268 Mpixel acceptance run; use cargo test --release -- --ignored"]
fn gigascale_stream_flat_memory_matches_whole_image() {
    let (w, h, band) = (1024, 262_144, 1024);
    let mut source = bernoulli_stream(w, h, 0.5, 4242);
    let mut records: Vec<ComponentRecord> = Vec::new();
    let mut labeler = StripLabeler::new(w);
    while let Some(b) = RowSource::next_band(&mut source, band).unwrap() {
        labeler.push_band(&b, &mut records).unwrap();
        assert!(labeler.peak_resident_rows() <= 2 * band);
    }
    let stats = labeler.finish(&mut records);
    assert_eq!(stats.rows, h);

    // The pipelined strip labeler: scan (with fused partial
    // accumulation) one band ahead of the merge stage. Residency is two
    // bands + the carry row — the pipelined ≤ 2-band bound — and the
    // records are bit-identical to the synchronous run.
    let mut piped_source = bernoulli_stream(w, h, 0.5, 4242);
    let (piped_records, piped_stats) =
        analyze_stream_pipelined(&mut piped_source, band, StripConfig::default()).unwrap();
    assert_eq!(piped_stats.rows, h);
    assert!(
        piped_stats.peak_resident_rows <= 2 * band + 1,
        "pipelined residency exceeded two bands + carry"
    );
    assert_eq!(piped_stats.peak_resident_rows, 2 * band + 1);
    assert_eq!(piped_records, records);
    assert_eq!(piped_stats.components, stats.components);

    let img = bernoulli(w, h, 0.5, 4242);
    assert_eq!(stats.components, aremsp(&img).num_components() as u64);
    assert_eq!(stream_features(&records), whole_image_features(&img));
}

/// Streaming a Netpbm file end to end: write → stream-decode → label →
/// analysis identical to decoding the whole file.
#[test]
fn netpbm_stream_end_to_end() {
    let img = blob_field(
        64,
        200,
        BlobParams {
            coverage: 0.3,
            min_radius: 2,
            max_radius: 6,
        },
        9,
    );
    let bytes = ccl_image::io::pbm::write_binary(&img);
    let mut src = ccl_stream::PbmSource::new(bytes.as_slice()).unwrap();
    let (records, stats) = analyze_stream(&mut src, 16, StripConfig::default()).unwrap();
    assert_eq!(stats.rows, 200);
    assert!(stats.peak_resident_rows <= 17);
    assert_eq!(stream_features(&records), whole_image_features(&img));
}
