//! Error type for the tile-grid pipeline.

use std::fmt;

use ccl_image::ImageError;
use ccl_stream::StreamError;

/// Errors produced while pulling, labeling or spilling tiles.
#[derive(Debug)]
pub enum TilesError {
    /// The underlying row/tile source failed (I/O or malformed stream).
    Stream(StreamError),
    /// An image decode or encode failed.
    Image(ImageError),
    /// A filesystem operation of the spill sink failed.
    Io(std::io::Error),
    /// A tile row arrived whose total width differs from the labeler's.
    WidthMismatch {
        /// Width the labeler was constructed with.
        expected: usize,
        /// Total width of the offending tile row.
        got: usize,
    },
    /// Tiles within one tile row disagree on height.
    RaggedTileRow {
        /// Height of the row's first tile.
        expected: usize,
        /// Height of the offending tile.
        got: usize,
    },
    /// A component id exceeds what the spill format can represent.
    LabelOverflow {
        /// The offending component id.
        gid: u64,
        /// The format's largest representable id.
        limit: u64,
    },
    /// The spill sidecar manifest is missing or malformed.
    Manifest(String),
    /// A background pipeline worker (the tile-scan stage or a
    /// `ccl-pipeline` prefetcher) died without producing a tile row —
    /// typically a panic in the wrapped source; the payload is the panic
    /// message.
    Worker(String),
}

impl TilesError {
    /// Builds [`TilesError::Worker`] from a caught panic payload
    /// (`&str`/`String` payloads pass through as the message, anything
    /// else becomes a generic one). Used wherever a pipeline stage joins
    /// a worker thread.
    pub fn worker_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked".to_string()
        };
        TilesError::Worker(msg)
    }
}

impl fmt::Display for TilesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilesError::Stream(e) => write!(f, "source error: {e}"),
            TilesError::Image(e) => write!(f, "image error: {e}"),
            TilesError::Io(e) => write!(f, "spill I/O error: {e}"),
            TilesError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "tile row width {got} does not match grid width {expected}"
                )
            }
            TilesError::RaggedTileRow { expected, got } => {
                write!(
                    f,
                    "ragged tile row: tile height {got}, row height {expected}"
                )
            }
            TilesError::LabelOverflow { gid, limit } => {
                write!(f, "component id {gid} exceeds spill format limit {limit}")
            }
            TilesError::Manifest(msg) => write!(f, "spill manifest error: {msg}"),
            TilesError::Worker(msg) => write!(f, "pipeline worker failed: {msg}"),
        }
    }
}

impl std::error::Error for TilesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TilesError::Stream(e) => Some(e),
            TilesError::Image(e) => Some(e),
            TilesError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for TilesError {
    fn from(e: StreamError) -> Self {
        TilesError::Stream(e)
    }
}

impl From<ImageError> for TilesError {
    fn from(e: ImageError) -> Self {
        TilesError::Image(e)
    }
}

impl From<std::io::Error> for TilesError {
    fn from(e: std::io::Error) -> Self {
        TilesError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = TilesError::WidthMismatch {
            expected: 8,
            got: 9,
        };
        assert!(e.to_string().contains("width 9"));
        assert!(e.source().is_none());
        let e = TilesError::LabelOverflow {
            gid: 70_000,
            limit: 65_535,
        };
        assert!(e.to_string().contains("70000"));
        let e: TilesError = ImageError::Parse("bad".into()).into();
        assert!(e.source().is_some());
        let e: TilesError = std::io::Error::other("disk full").into();
        assert!(e.to_string().contains("disk full"));
        let e = TilesError::Worker("boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_none());
    }
}
