//! [`TileSource`] — the pull-based supplier of tile rows.
//!
//! The grid labeler consumes one **tile row** at a time: the horizontal
//! run of `⌈width / tile_width⌉` tiles covering the next `tile_height`
//! image rows (clipped at the right and bottom edges). One generic
//! adapter, [`GridSource`], windows any `ccl-stream` [`RowSource`] into
//! tiles, which covers all three source families out of the box:
//!
//! * **in-memory** — [`GridSource::from_image`] over [`MemorySource`];
//! * **Netpbm window reader** — [`GridSource::pbm`] / [`GridSource::pgm`]
//!   over the incremental band decoders, so a file on disk is decoded one
//!   tile row at a time;
//! * **streamed generators** — [`GridSource::new`] over any
//!   `RowStream` from `ccl_datasets::synth::stream` (which implements
//!   [`RowSource`]), so synthetic rasters of unbounded size tile without
//!   ever existing in memory.

use std::io::Read;

use ccl_image::BinaryImage;
use ccl_stream::{MemorySource, PbmSource, PgmSource, RowSource};

use crate::error::TilesError;

/// A pull-based iterator of tile rows, top-to-bottom. Every returned row
/// holds the tiles left-to-right; all tiles in a row share one height
/// (`≤ tile_height`), and their widths sum to the grid width.
pub trait TileSource {
    /// Total width (columns) of the tiled image.
    fn width(&self) -> usize;

    /// Nominal tile width (the rightmost tile may be narrower).
    fn tile_width(&self) -> usize;

    /// Nominal tile height (the bottom tile row may be shorter).
    fn tile_height(&self) -> usize;

    /// Image rows not yet delivered, when the source knows.
    fn rows_remaining(&self) -> Option<usize>;

    /// Pulls the next tile row; `Ok(None)` once the stream is exhausted.
    fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError>;
}

/// Windows any [`RowSource`] into a tile grid: each pulled band of
/// `tile_height` rows is chopped into `tile_width`-wide tiles.
pub struct GridSource<S> {
    inner: S,
    tile_width: usize,
    tile_height: usize,
}

impl<S: RowSource> GridSource<S> {
    /// Wraps a row source in a `tile_width × tile_height` grid.
    ///
    /// # Panics
    /// Panics when either tile dimension is 0.
    pub fn new(inner: S, tile_width: usize, tile_height: usize) -> Self {
        assert!(
            tile_width > 0 && tile_height > 0,
            "tile dimensions must be positive"
        );
        GridSource {
            inner,
            tile_width,
            tile_height,
        }
    }

    /// Number of tile columns in the grid.
    pub fn tile_cols(&self) -> usize {
        self.inner.width().div_ceil(self.tile_width).max(1)
    }

    /// Consumes the adapter, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<'a> GridSource<MemorySource<'a>> {
    /// Tiles a resident [`BinaryImage`] (testing and small inputs).
    pub fn from_image(image: &'a BinaryImage, tile_width: usize, tile_height: usize) -> Self {
        GridSource::new(MemorySource::new(image), tile_width, tile_height)
    }
}

impl<R: Read> GridSource<PbmSource<R>> {
    /// Tiles a PBM (`P1`/`P4`) stream, decoding one tile row of the file
    /// at a time (wrap files in a [`std::io::BufReader`]).
    pub fn pbm(reader: R, tile_width: usize, tile_height: usize) -> Result<Self, TilesError> {
        Ok(GridSource::new(
            PbmSource::new(reader)?,
            tile_width,
            tile_height,
        ))
    }
}

impl<R: Read> GridSource<PgmSource<R>> {
    /// Tiles a PGM (`P2`/`P5`) stream binarized with the `im2bw`
    /// threshold `level` (the paper uses 0.5).
    pub fn pgm(
        reader: R,
        level: f64,
        tile_width: usize,
        tile_height: usize,
    ) -> Result<Self, TilesError> {
        Ok(GridSource::new(
            PgmSource::new(reader, level)?,
            tile_width,
            tile_height,
        ))
    }
}

impl<S: RowSource> TileSource for GridSource<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn tile_width(&self) -> usize {
        self.tile_width
    }

    fn tile_height(&self) -> usize {
        self.tile_height
    }

    fn rows_remaining(&self) -> Option<usize> {
        self.inner.rows_remaining()
    }

    fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
        let band = match self.inner.next_band(self.tile_height)? {
            Some(band) => band,
            None => return Ok(None),
        };
        let w = band.width();
        if w == 0 {
            // degenerate zero-width stream: one empty "tile" keeps the row
            // accounting alive without special-casing every consumer
            return Ok(Some(vec![band]));
        }
        let mut tiles = Vec::with_capacity(w.div_ceil(self.tile_width));
        let mut x0 = 0;
        while x0 < w {
            let tw = self.tile_width.min(w - x0);
            tiles.push(band.crop(0, x0, tw, band.height()));
            x0 += tw;
        }
        Ok(Some(tiles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_source_tiles_cover_the_image() {
        let img = BinaryImage::from_fn(7, 5, |r, c| (r * 7 + c) % 3 == 0);
        let mut src = GridSource::from_image(&img, 3, 2);
        assert_eq!(src.width(), 7);
        assert_eq!(src.tile_cols(), 3);
        assert_eq!(src.rows_remaining(), Some(5));
        let mut r0 = 0;
        while let Some(tiles) = src.next_tile_row().unwrap() {
            let widths: Vec<usize> = tiles.iter().map(BinaryImage::width).collect();
            assert_eq!(widths, vec![3, 3, 1]);
            let th = tiles[0].height();
            assert!(tiles.iter().all(|t| t.height() == th));
            for r in 0..th {
                for (t, x0) in tiles.iter().zip([0usize, 3, 6]) {
                    for c in 0..t.width() {
                        assert_eq!(t.get(r, c), img.get(r0 + r, x0 + c));
                    }
                }
            }
            r0 += th;
        }
        assert_eq!(r0, 5);
        assert_eq!(src.rows_remaining(), Some(0));
    }

    #[test]
    fn bottom_row_is_clipped() {
        let img = BinaryImage::ones(4, 5);
        let mut src = GridSource::from_image(&img, 2, 2);
        let mut heights = Vec::new();
        while let Some(tiles) = src.next_tile_row().unwrap() {
            heights.push(tiles[0].height());
        }
        assert_eq!(heights, vec![2, 2, 1]);
    }

    #[test]
    fn netpbm_window_reader_streams_tiles() {
        let img = BinaryImage::parse("#.#. .#.# ##.. ..##");
        let bytes = ccl_image::io::pbm::write_binary(&img);
        let mut src = GridSource::pbm(bytes.as_slice(), 3, 3).unwrap();
        let first = src.next_tile_row().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!((first[0].width(), first[1].width()), (3, 1));
        assert_eq!(first[0].height(), 3);
        let second = src.next_tile_row().unwrap().unwrap();
        assert_eq!(second[0].height(), 1);
        assert!(src.next_tile_row().unwrap().is_none());
    }

    #[test]
    fn zero_width_stream_yields_empty_tiles() {
        let img = BinaryImage::zeros(0, 3);
        let mut src = GridSource::from_image(&img, 4, 2);
        let row = src.next_tile_row().unwrap().unwrap();
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].width(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_width_rejected() {
        let img = BinaryImage::zeros(4, 4);
        GridSource::from_image(&img, 0, 2);
    }
}
