//! Convenience drivers — pull a whole [`TileSource`] through a
//! [`TileGridLabeler`].

use std::path::Path;

use ccl_core::label::LabelImage;
use ccl_stream::{ComponentRecord, ComponentSink, CountComponents};

use crate::error::TilesError;
use crate::labeler::{TileGridConfig, TileGridLabeler, TileGridStats};
use crate::sink::{CollectTiles, SpillFormat, SpillManifest, SpillSink};
use crate::source::TileSource;

/// Streams `source` through a grid labeler tile row by tile row, emitting
/// every component through `sink`. Never holds more than one tile row
/// (plus the carry row) of pixels.
pub fn label_tiles<S, C>(
    source: &mut S,
    cfg: TileGridConfig,
    sink: &mut C,
) -> Result<TileGridStats, TilesError>
where
    S: TileSource + ?Sized,
    C: ComponentSink,
{
    let mut labeler = TileGridLabeler::with_config(source.width(), cfg);
    while let Some(tiles) = source.next_tile_row()? {
        labeler.push_tile_row(&tiles, sink)?;
    }
    Ok(labeler.finish(sink))
}

/// [`label_tiles`] collecting every [`ComponentRecord`] (emission order:
/// closure order).
pub fn analyze_tiles<S>(
    source: &mut S,
    cfg: TileGridConfig,
) -> Result<(Vec<ComponentRecord>, TileGridStats), TilesError>
where
    S: TileSource + ?Sized,
{
    let mut records = Vec::new();
    let stats = label_tiles(source, cfg, &mut records)?;
    Ok((records, stats))
}

/// Streams `source` and reconciles the labeled tiles into a full
/// [`LabelImage`] — for callers who want label output resident (the image
/// is O(width × height); the labeling still runs in O(tile row) working
/// memory on top).
pub fn tiles_to_label_image<S>(
    source: &mut S,
    cfg: TileGridConfig,
) -> Result<(LabelImage, TileGridStats), TilesError>
where
    S: TileSource + ?Sized,
{
    let mut labeler = TileGridLabeler::with_config(source.width(), cfg);
    let mut components = CountComponents::default();
    let mut tiles = CollectTiles::default();
    while let Some(row) = source.next_tile_row()? {
        labeler.push_tile_row_with_labels(&row, &mut components, &mut tiles)?;
    }
    let stats = labeler.finish(&mut components);
    Ok((tiles.into_label_image(), stats))
}

/// The fully out-of-core pipeline: streams `source` through the grid
/// labeler while spilling every labeled tile to `dir` via [`SpillSink`],
/// then closes the sink (sidecar manifest + final-label patching). Both
/// input and output stay bounded-memory; reconstruct the partition later
/// with [`read_spilled_label_image`](crate::sink::read_spilled_label_image).
pub fn spill_tiles<S>(
    source: &mut S,
    cfg: TileGridConfig,
    dir: impl AsRef<Path>,
    format: SpillFormat,
) -> Result<(SpillManifest, TileGridStats), TilesError>
where
    S: TileSource + ?Sized,
{
    let mut labeler = TileGridLabeler::with_config(source.width(), cfg);
    let mut components = CountComponents::default();
    let mut sink = SpillSink::create(dir.as_ref(), format)?;
    while let Some(row) = source.next_tile_row()? {
        labeler.push_tile_row_with_labels(&row, &mut components, &mut sink)?;
    }
    let stats = labeler.finish(&mut components);
    let manifest = sink.close()?;
    Ok((manifest, stats))
}

/// [`label_tiles`] with the two-stage pipeline of [`crate::pipeline`]:
/// row *k + 1*'s tile scans overlap row *k*'s seam merge / accumulation
/// on a worker thread. Components are bit-identical to the synchronous
/// driver; [`TileGridStats::peak_resident_rows`] reports the pipeline's
/// two-tile-row + carry residency.
pub fn label_tiles_pipelined<S, C>(
    source: &mut S,
    cfg: TileGridConfig,
    sink: &mut C,
) -> Result<TileGridStats, TilesError>
where
    S: TileSource + Send + ?Sized,
    C: ComponentSink,
{
    crate::pipeline::run_pipelined(source, cfg, sink, None)
}

/// [`analyze_tiles`] with the two-stage pipeline (see
/// [`label_tiles_pipelined`]).
pub fn analyze_tiles_pipelined<S>(
    source: &mut S,
    cfg: TileGridConfig,
) -> Result<(Vec<ComponentRecord>, TileGridStats), TilesError>
where
    S: TileSource + Send + ?Sized,
{
    let mut records = Vec::new();
    let stats = label_tiles_pipelined(source, cfg, &mut records)?;
    Ok((records, stats))
}

/// [`tiles_to_label_image`] with the two-stage pipeline (see
/// [`label_tiles_pipelined`]): labeled tiles are emitted by the merge
/// stage while the scan stage works one tile row ahead.
pub fn tiles_to_label_image_pipelined<S>(
    source: &mut S,
    cfg: TileGridConfig,
) -> Result<(LabelImage, TileGridStats), TilesError>
where
    S: TileSource + Send + ?Sized,
{
    let mut components = CountComponents::default();
    let mut tiles = CollectTiles::default();
    let stats = crate::pipeline::run_pipelined(source, cfg, &mut components, Some(&mut tiles))?;
    Ok((tiles.into_label_image(), stats))
}

/// [`spill_tiles`] with the two-stage pipeline (see
/// [`label_tiles_pipelined`]): row *k*'s spill writes overlap row
/// *k + 1*'s tile scans, so the disk never idles behind the scanner nor
/// the scanner behind the disk.
pub fn spill_tiles_pipelined<S>(
    source: &mut S,
    cfg: TileGridConfig,
    dir: impl AsRef<Path>,
    format: SpillFormat,
) -> Result<(SpillManifest, TileGridStats), TilesError>
where
    S: TileSource + Send + ?Sized,
{
    let mut components = CountComponents::default();
    let mut sink = SpillSink::create(dir.as_ref(), format)?;
    let stats = crate::pipeline::run_pipelined(source, cfg, &mut components, Some(&mut sink))?;
    let manifest = sink.close()?;
    Ok((manifest, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::GridSource;
    use ccl_image::BinaryImage;

    #[test]
    fn analyze_tiles_counts_components() {
        let img = BinaryImage::parse(
            "##..##
             ......
             .####.",
        );
        let mut src = GridSource::from_image(&img, 2, 2);
        let (records, stats) = analyze_tiles(&mut src, TileGridConfig::default()).unwrap();
        assert_eq!(stats.components, 3);
        assert_eq!(records.len(), 3);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.tile_rows, 2);
        assert_eq!(stats.tiles, 6);
    }

    #[test]
    fn tiles_to_label_image_matches_aremsp() {
        let img = BinaryImage::parse(
            "#.#
             .#.
             #.#",
        );
        let mut src = GridSource::from_image(&img, 2, 2);
        let (li, stats) = tiles_to_label_image(&mut src, TileGridConfig::default()).unwrap();
        assert_eq!(stats.components, 1);
        let reference = ccl_core::seq::aremsp(&img);
        assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
    }

    #[test]
    fn spill_tiles_end_to_end() {
        let dir = crate::sink::temp_spill_dir("driver");
        let img = BinaryImage::parse(
            "#.#.#
             #.#.#
             #####",
        );
        let mut src = GridSource::from_image(&img, 2, 2);
        let (manifest, stats) = spill_tiles(
            &mut src,
            TileGridConfig::default(),
            &dir,
            SpillFormat::Pgm16,
        )
        .unwrap();
        assert_eq!(stats.components, 1);
        assert_eq!(manifest.width, 5);
        assert_eq!(manifest.rows, 3);
        let li = crate::sink::read_spilled_label_image(&dir).unwrap();
        let reference = ccl_core::seq::aremsp(&img);
        assert!(ccl_core::verify::labelings_equivalent(&li, &reference));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
