//! Pipelined tile-row execution — overlap row *k*'s merge with row
//! *k + 1*'s scans.
//!
//! The grid labeler's work per tile row splits into two stages with one
//! dependency between consecutive rows:
//!
//! * **scan stage** — pull the next tile row from the source, scan every
//!   tile, merge the vertical seams (`scan_tile_row`): independent of
//!   everything before it, because carried ids are reserved by the width
//!   bound `⌈w/2⌉` rather than the actual open-component count;
//! * **merge stage** — the horizontal seam against the carry row, the
//!   accumulator fold, compaction, component emission and (optionally)
//!   tile spilling (`TileGridLabeler::merge_scanned`): inherently
//!   sequential, because each row's carry feeds the next.
//!
//! The executor here runs the scan stage on a worker thread and the merge
//! stage on the caller's thread, handing scanned rows across a
//! **rendezvous channel** (capacity 0): the scanner cannot run more than
//! one tile row ahead, so at any instant at most *two* tile rows are
//! alive — row *k* (labels, under merge) and row *k + 1* (pixels + labels,
//! under scan) — plus the carried boundary row. That is the pipelined
//! residency bound `2 × tile_height + 1` pixel rows, reported through
//! [`TileGridStats::peak_resident_rows`].
//!
//! Errors never hang the pipeline: a failing source or scan surfaces
//! through the channel disconnect + join, a failing merge/sink drops the
//! receiver so the scanner's blocked send aborts, and a panicking source
//! is converted into [`TilesError::Worker`].

use std::sync::mpsc;

use ccl_stream::ComponentSink;

use crate::error::TilesError;
use crate::labeler::{scan_tile_row, TileGridConfig, TileGridLabeler, TileGridStats};
use crate::sink::TileSink;
use crate::source::TileSource;

/// Streams `source` through a grid labeler with the two-stage pipeline
/// described in the module docs. Output (components, merges, tiles) is
/// bit-identical to the synchronous drivers; only
/// [`TileGridStats::peak_resident_rows`] differs, reporting the
/// pipeline's two-tile-row + carry residency.
pub(crate) fn run_pipelined<S>(
    source: &mut S,
    cfg: TileGridConfig,
    components: &mut dyn ComponentSink,
    mut sink: Option<&mut dyn TileSink>,
) -> Result<TileGridStats, TilesError>
where
    S: TileSource + Send + ?Sized,
{
    let width = source.width();
    // No carry row can hold more open components than ⌈w/2⌉ (adjacent
    // foreground pixels share one), so reserving that many low slots
    // makes every scan independent of the previous row's compaction.
    let carry_cap = width.div_ceil(2) as u32;
    let mut labeler = TileGridLabeler::with_config(width, cfg.clone());

    // Residency: while the merge stage holds row k, the scan stage holds
    // at most row k + 1 (rendezvous channel — the send blocks until the
    // merge stage takes the row). Deterministic accounting: the max over
    // consecutive row-height pairs, plus the carry row once two or more
    // rows exist.
    let mut prev_th = 0usize;
    let mut max_pair = 0usize;
    let mut nrows = 0usize;

    let (tx, rx) = mpsc::sync_channel(0);
    let scan_cfg = cfg;
    let merge_result = std::thread::scope(|s| {
        let scanner = s.spawn(move || -> Result<(), TilesError> {
            let mut r0 = 0usize;
            while let Some(tiles) = source.next_tile_row()? {
                let row = scan_tile_row(&tiles, width, &scan_cfg, carry_cap, r0)?;
                r0 += row.th;
                drop(tiles); // pixels are dead once scanned
                if tx.send(row).is_err() {
                    break; // merge stage stopped early (error): unblock and exit
                }
            }
            Ok(())
        });

        let mut merged: Result<(), TilesError> = Ok(());
        while let Ok(row) = rx.recv() {
            nrows += 1;
            max_pair = max_pair.max(prev_th + row.th);
            prev_th = row.th;
            let sink_ref = sink.as_mut().map(|s| &mut **s as &mut dyn TileSink);
            if let Err(e) = labeler.merge_scanned(row, components, sink_ref) {
                merged = Err(e);
                break;
            }
        }
        // A merge error leaves rows queued: drop the receiver so the
        // scanner's blocked send fails and the thread exits.
        drop(rx);
        let scanned = match scanner.join() {
            Ok(r) => r,
            Err(payload) => Err(TilesError::worker_panic(payload.as_ref())),
        };
        merged.and(scanned)
    });
    merge_result?;

    let mut stats = labeler.finish(components);
    stats.peak_resident_rows = max_pair + usize::from(nrows >= 2);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::GridSource;
    use ccl_image::BinaryImage;
    use ccl_stream::{ComponentRecord, CountComponents};

    #[test]
    fn pipelined_output_matches_synchronous() {
        let img = BinaryImage::from_fn(23, 37, |r, c| (r * 31 + c * 17) % 3 != 0);
        let mut sync_records: Vec<ComponentRecord> = Vec::new();
        let mut sync_src = GridSource::from_image(&img, 5, 4);
        let sync_stats =
            crate::driver::label_tiles(&mut sync_src, TileGridConfig::default(), &mut sync_records)
                .unwrap();

        let mut records: Vec<ComponentRecord> = Vec::new();
        let mut src = GridSource::from_image(&img, 5, 4);
        let stats = run_pipelined(&mut src, TileGridConfig::default(), &mut records, None).unwrap();
        assert_eq!(records, sync_records);
        assert_eq!(stats.components, sync_stats.components);
        assert_eq!(stats.rows, sync_stats.rows);
        assert_eq!(stats.tiles, sync_stats.tiles);
        // two 4-row tile rows + the carry row
        assert_eq!(stats.peak_resident_rows, 2 * 4 + 1);
    }

    #[test]
    fn merge_error_does_not_hang_the_scanner() {
        struct FailingSink;
        impl TileSink for FailingSink {
            fn merge(&mut self, _: u64, _: u64) {}
            fn tile(&mut self, _: &crate::sink::TileMeta, _: &[u64]) -> Result<(), TilesError> {
                Err(TilesError::Manifest("sink refused".into()))
            }
        }
        let img = BinaryImage::ones(8, 32);
        let mut src = GridSource::from_image(&img, 4, 4);
        let mut comps = CountComponents::default();
        let mut sink = FailingSink;
        let err = run_pipelined(
            &mut src,
            TileGridConfig::default(),
            &mut comps,
            Some(&mut sink),
        )
        .unwrap_err();
        assert!(matches!(err, TilesError::Manifest(_)));
    }

    #[test]
    fn panicking_source_surfaces_as_worker_error() {
        struct PanickingSource {
            left: usize,
        }
        impl TileSource for PanickingSource {
            fn width(&self) -> usize {
                4
            }
            fn tile_width(&self) -> usize {
                4
            }
            fn tile_height(&self) -> usize {
                2
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
                if self.left == 0 {
                    panic!("generator exploded mid-stream");
                }
                self.left -= 1;
                Ok(Some(vec![BinaryImage::ones(4, 2)]))
            }
        }
        let mut src = PanickingSource { left: 3 };
        let mut comps = CountComponents::default();
        let err = run_pipelined(&mut src, TileGridConfig::default(), &mut comps, None).unwrap_err();
        match err {
            TilesError::Worker(msg) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected Worker error, got {other:?}"),
        }
    }
}
