//! [`TileGridLabeler`] — the bounded-memory 2-D tile-grid engine.
//!
//! PAREMSP's chunk-scan + boundary-merge structure generalizes from row
//! bands to a full tile grid: every tile of a **tile row** is scanned
//! independently (RemSP inside the tile, with disjoint provisional-label
//! ranges), then connectivity is restored along both seam orientations —
//!
//! * **vertical seams** between horizontally adjacent tiles, walked as
//!   strided columns ([`merge_seam_strided`]) directly over the per-tile
//!   label buffers, no transpose and no stitched full-width buffer;
//! * the **horizontal seam** against the carried last pixel row of the
//!   previous tile row ([`merge_seam`]), exactly like the strip labeler.
//!
//! In parallel mode the tiles of the resident row are scanned by
//! `threads` workers and the vertical seams merge concurrently with the
//! configured MERGER (Algorithm 8 or its CAS variant) — PAREMSP across
//! the tile row. After each row the label space is compacted to the
//! components still *open* on the carry boundary and every retired slot
//! is recycled, so resident state is
//!
//! * one tile row of pixels and labels,
//! * one carry row (`width` labels),
//! * one [`Accum`] per open component,
//!
//! i.e. **at most two tile rows** of pixel-equivalent memory, independent
//! of image height — and independent of image *width* mattering only
//! linearly (the carry row), never quadratically.

use std::ops::Range;

use ccl_core::par::{MergerKind, MergerStore};
use ccl_core::scan::{
    max_labels_two_line, merge_seam, merge_seam_span, merge_seam_strided, scan_two_line,
    split_spans, Foldable as _, FoldingStore,
};
use ccl_image::BinaryImage;
use ccl_stream::analysis::Accum;
use ccl_stream::labeler::fold_carried;
use ccl_stream::{BandUf, ComponentSink, FoldMode, StreamStats};
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents, LockedMerger};
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

use crate::error::TilesError;
use crate::sink::{TileMeta, TileSink};

/// Scan-stage output of the parallel tile-row path: per-tile label
/// buffers, the shared parent array, the fused partial table
/// (label-indexed) and the used label ranges.
type ParallelTileScan = (
    Vec<Vec<u32>>,
    ConcurrentParents,
    Option<Vec<Accum>>,
    Vec<Range<u32>>,
);

/// Configuration for [`TileGridLabeler`].
#[derive(Debug, Clone)]
pub struct TileGridConfig {
    /// Worker threads for the in-row tile scans and seam merges
    /// (1 = fully sequential).
    pub threads: usize,
    /// Boundary-merge implementation for the parallel mode.
    pub merger: MergerKind,
    /// Lock stripes for [`MergerKind::Locked`]; `None` = default.
    pub lock_stripes: Option<usize>,
    /// Accumulation strategy (default [`FoldMode::Fused`]: the tile
    /// scans build partial accumulator tables, the merge stage folds per
    /// label instead of re-reading every pixel).
    pub fold: FoldMode,
}

impl Default for TileGridConfig {
    fn default() -> Self {
        TileGridConfig {
            threads: 1,
            merger: MergerKind::default(),
            lock_stripes: None,
            fold: FoldMode::default(),
        }
    }
}

impl TileGridConfig {
    /// Sequential scanning (AREMSP tile by tile).
    pub fn sequential() -> Self {
        TileGridConfig::default()
    }

    /// PAREMSP across `threads` workers within each tile row.
    pub fn parallel(threads: usize) -> Self {
        TileGridConfig {
            threads,
            ..TileGridConfig::default()
        }
    }

    /// Builder: replaces the boundary-merge implementation.
    pub fn with_merger(mut self, merger: MergerKind) -> Self {
        self.merger = merger;
        self
    }

    /// Builder: replaces the accumulation strategy.
    pub fn with_fold(mut self, fold: FoldMode) -> Self {
        self.fold = fold;
        self
    }
}

/// Summary returned by [`TileGridLabeler::finish`]. Mirrors
/// [`StreamStats`] with the grid-specific tile counters added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGridStats {
    /// Grid width in pixels.
    pub width: usize,
    /// Total pixel rows labeled.
    pub rows: usize,
    /// Number of tile rows pushed.
    pub tile_rows: usize,
    /// Total tiles labeled.
    pub tiles: usize,
    /// Total components emitted.
    pub components: u64,
    /// Maximum pixel rows resident at any point: the tallest tile row
    /// plus the one carried boundary row — the ≤ 2-tile-row bound.
    pub peak_resident_rows: usize,
}

impl TileGridStats {
    /// The stats viewed as the equivalent row-band stream summary.
    pub fn as_stream_stats(&self) -> StreamStats {
        StreamStats {
            width: self.width,
            rows: self.rows,
            bands: self.tile_rows,
            components: self.components,
            peak_resident_rows: self.peak_resident_rows,
        }
    }
}

/// The tile-grid two-pass labeling engine. See the module docs.
///
/// ```
/// use ccl_image::BinaryImage;
/// use ccl_stream::ComponentRecord;
/// use ccl_tiles::TileGridLabeler;
///
/// // one component crossing both the vertical and horizontal seams
/// let tl = BinaryImage::parse(".. .#");
/// let tr = BinaryImage::parse(".. #.");
/// let bl = BinaryImage::parse(".# ..");
/// let br = BinaryImage::parse("#. ..");
/// let mut sink: Vec<ComponentRecord> = Vec::new();
/// let mut labeler = TileGridLabeler::new(4);
/// labeler.push_tile_row(&[tl, tr], &mut sink).unwrap();
/// labeler.push_tile_row(&[bl, br], &mut sink).unwrap();
/// let stats = labeler.finish(&mut sink);
/// assert_eq!(stats.components, 1);
/// assert_eq!(sink[0].area, 4);
/// ```
pub struct TileGridLabeler {
    width: usize,
    cfg: TileGridConfig,
    rows_done: usize,
    tile_rows_done: usize,
    tiles_done: usize,
    /// Labels (active ids `1..=k`, 0 = background) of the last pixel row
    /// of the previous tile row; empty before the first row.
    carry: Vec<u32>,
    /// Accumulators of the open components, indexed by active id (slot 0
    /// unused).
    active: Vec<Accum>,
    next_gid: u64,
    finalized: u64,
    peak_resident_rows: usize,
}

impl TileGridLabeler {
    /// Sequential labeler for a grid of the given total width.
    pub fn new(width: usize) -> Self {
        Self::with_config(width, TileGridConfig::default())
    }

    /// Labeler with explicit configuration.
    pub fn with_config(width: usize, cfg: TileGridConfig) -> Self {
        TileGridLabeler {
            width,
            cfg,
            rows_done: 0,
            tile_rows_done: 0,
            tiles_done: 0,
            carry: Vec::new(),
            active: vec![Accum::EMPTY],
            next_gid: 1,
            finalized: 0,
            peak_resident_rows: 0,
        }
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pixel rows labeled so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_done
    }

    /// Tile rows pushed so far.
    pub fn tile_rows_pushed(&self) -> usize {
        self.tile_rows_done
    }

    /// Components currently open (touching the carry row).
    pub fn open_components(&self) -> usize {
        self.active.len() - 1
    }

    /// Components emitted so far.
    pub fn finalized_components(&self) -> u64 {
        self.finalized
    }

    /// Maximum pixel rows resident at any point so far (tallest tile row
    /// + 1 carry row) — never exceeds two tile rows.
    pub fn peak_resident_rows(&self) -> usize {
        self.peak_resident_rows
    }

    /// Labels the next tile row, emitting every component that closes.
    /// `tiles` are left-to-right; their widths must sum to the grid width
    /// and their heights must agree.
    pub fn push_tile_row<C: ComponentSink>(
        &mut self,
        tiles: &[BinaryImage],
        components: &mut C,
    ) -> Result<(), TilesError> {
        self.process(tiles, components, None)
    }

    /// Like [`Self::push_tile_row`], additionally emitting every labeled
    /// tile (and any id merges) through `sink`.
    pub fn push_tile_row_with_labels<C: ComponentSink, T: TileSink>(
        &mut self,
        tiles: &[BinaryImage],
        components: &mut C,
        sink: &mut T,
    ) -> Result<(), TilesError> {
        self.process(tiles, components, Some(sink))
    }

    /// Closes the grid: every still-open component is finalized and
    /// emitted (ascending id), and the run's summary returned.
    pub fn finish<C: ComponentSink + ?Sized>(mut self, components: &mut C) -> TileGridStats {
        let mut remaining: Vec<Accum> = self.active.drain(1..).collect();
        remaining.sort_by_key(|a| a.gid);
        for acc in remaining {
            self.finalized += 1;
            components.component(&acc.into_record());
        }
        TileGridStats {
            width: self.width,
            rows: self.rows_done,
            tile_rows: self.tile_rows_done,
            tiles: self.tiles_done,
            components: self.finalized,
            peak_resident_rows: self.peak_resident_rows,
        }
    }

    fn process(
        &mut self,
        tiles: &[BinaryImage],
        components: &mut dyn ComponentSink,
        sink: Option<&mut dyn TileSink>,
    ) -> Result<(), TilesError> {
        let n_carry = (self.active.len() - 1) as u32;
        let row = scan_tile_row(tiles, self.width, &self.cfg, n_carry, self.rows_done)?;
        self.merge_scanned(row, components, sink)
    }

    /// The merge/accumulate stage: restores connectivity between a
    /// scanned tile row and the carried boundary row, folds the open
    /// accumulators, emits closed components (and labeled tiles), and
    /// rebuilds the carry. Counterpart of [`scan_tile_row`]; the two
    /// called back-to-back are exactly [`Self::push_tile_row`], while the
    /// pipelined executor ([`crate::pipeline`]) runs them on different
    /// threads, one tile row apart.
    pub(crate) fn merge_scanned(
        &mut self,
        row: ScannedTileRow,
        components: &mut dyn ComponentSink,
        sink: Option<&mut dyn TileSink>,
    ) -> Result<(), TilesError> {
        let th = row.th;
        if row.degenerate {
            self.rows_done += th;
            self.tile_rows_done += usize::from(th > 0);
            return Ok(());
        }
        let w = self.width;
        self.peak_resident_rows = self
            .peak_resident_rows
            .max(th + usize::from(!self.carry.is_empty()));
        let n_carry = (self.active.len() - 1) as u32;
        let r0 = self.rows_done;
        let nslots = row.uf.slots();

        let ScannedTileRow {
            widths,
            x0s,
            bufs,
            mut uf,
            partials,
            used,
            ..
        } = row;
        let ntiles = bufs.len();

        let mut root_of: Vec<u32> = vec![u32::MAX; nslots];
        let mut touched: Vec<u32> = Vec::new();
        let mut merges: Vec<(u64, u64)> = Vec::new();

        // Fold phase: after this block `acc[root]` holds the complete
        // accumulator of every component with a pixel in the row (fresh
        // ones still gid 0), `touched` lists the occupied roots, and
        // `merges` the carried-id pairs that turned out to be one
        // component. The horizontal carry seam — the only part of the
        // row's labeling that depends on earlier tile rows — runs here
        // too.
        let mut acc = match partials {
            Some(mut parts) => {
                // Fused: partials are complete except the row's first
                // line — absorb it here, where the carry row is known
                // (labels double as the foreground mask).
                for t in 0..ntiles {
                    let tw = widths[t];
                    for c in 0..tw {
                        let l = bufs[t][c];
                        if l == 0 {
                            continue;
                        }
                        let x = x0s[t] + c;
                        let west = if c > 0 {
                            bufs[t][c - 1] != 0
                        } else {
                            t > 0 && widths[t - 1] > 0 && bufs[t - 1][widths[t - 1] - 1] != 0
                        };
                        let (nw, north, ne) = if !self.carry.is_empty() {
                            (
                                x > 0 && self.carry[x - 1] != 0,
                                self.carry[x] != 0,
                                x + 1 < w && self.carry[x + 1] != 0,
                            )
                        } else {
                            (false, false, false)
                        };
                        parts[l as usize].absorb(r0, x, west, nw, north, ne);
                    }
                }
                let is_par = matches!(uf, BandUf::Par(_));
                match &mut uf {
                    BandUf::Seq(store) => {
                        // Fold each used label's partial onto its in-row
                        // root, then let the carry seam itself combine
                        // partials as it unions (the core fold hook).
                        for range in &used {
                            for l in range.clone() {
                                if parts[l as usize].is_empty() {
                                    continue;
                                }
                                let root = store.find(l);
                                if root == l {
                                    touched.push(l);
                                } else {
                                    let p = std::mem::replace(&mut parts[l as usize], Accum::EMPTY);
                                    parts[root as usize].fold(&p);
                                }
                            }
                        }
                        for id in 1..=n_carry {
                            parts[id as usize] = self.active[id as usize];
                            touched.push(id);
                        }
                        if !self.carry.is_empty() {
                            let top = assemble_row(&bufs, &widths, 0, w);
                            let mut folding = FoldingStore::new(store, &mut parts);
                            merge_seam(&self.carry, &top, &mut folding);
                        }
                        // Carried ids that now share a root merged; replay
                        // the pairwise events (identical to the
                        // sequential fold's bookkeeping).
                        let mut kept: Vec<u64> = vec![0; n_carry as usize + 1];
                        for id in 1..=n_carry {
                            let root = store.find(id) as usize;
                            debug_assert!(root <= n_carry as usize, "carried roots are carried");
                            let gid = self.active[id as usize].gid;
                            if kept[root] == 0 {
                                kept[root] = gid;
                            } else {
                                let (k, a) = if kept[root] <= gid {
                                    (kept[root], gid)
                                } else {
                                    (gid, kept[root])
                                };
                                merges.push((k, a));
                                kept[root] = k;
                            }
                        }
                    }
                    BandUf::Par(parents) => {
                        // Concurrent mergers cannot fold safely mid-union:
                        // run the carry seam first (column spans across
                        // the workers); the fold below happens after, per
                        // label — O(labels), not O(pixels).
                        if !self.carry.is_empty() {
                            let top = assemble_row(&bufs, &widths, 0, w);
                            merge_carry_seam_parallel(&self.carry, &top, parents, &self.cfg);
                        }
                    }
                }
                if is_par {
                    fold_carried(
                        &mut uf,
                        &self.active,
                        n_carry,
                        &mut parts,
                        &mut touched,
                        &mut merges,
                    );
                    for range in &used {
                        for l in range.clone() {
                            if parts[l as usize].is_empty() {
                                continue;
                            }
                            let root = uf.find(l);
                            root_of[l as usize] = root;
                            if root == l {
                                touched.push(l);
                            } else {
                                let p = std::mem::replace(&mut parts[l as usize], Accum::EMPTY);
                                parts[root as usize].fold(&p);
                            }
                        }
                    }
                }
                parts
            }
            None => {
                // Sequential fold: seam first, then one pass over the
                // row's pixels accumulating per root (the pre-fused
                // baseline).
                if !self.carry.is_empty() {
                    let top = assemble_row(&bufs, &widths, 0, w);
                    match &mut uf {
                        BandUf::Seq(store) => merge_seam(&self.carry, &top, store),
                        BandUf::Par(parents) => {
                            merge_carry_seam_parallel(&self.carry, &top, parents, &self.cfg)
                        }
                    }
                }
                let mut acc = vec![Accum::EMPTY; nslots];
                fold_carried(
                    &mut uf,
                    &self.active,
                    n_carry,
                    &mut acc,
                    &mut touched,
                    &mut merges,
                );

                // Accumulate the row's pixels per root in *global raster
                // order* (row-major across the whole tile row), so fresh
                // ids are assigned exactly as the strip labeler would and
                // anchors stay raster-first. `prev`/`cur` carry the
                // previous global pixel row's foreground mask across tile
                // boundaries for the perimeter/Euler folds (the carry row
                // for the first line).
                let mut prev: Vec<bool> = vec![false; w];
                for (x, &l) in self.carry.iter().enumerate() {
                    prev[x] = l != 0;
                }
                let mut cur: Vec<bool> = vec![false; w];
                for r in 0..th {
                    for t in 0..ntiles {
                        let tw = widths[t];
                        let base = r * tw;
                        for c in 0..tw {
                            let l = bufs[t][base + c];
                            let x = x0s[t] + c;
                            cur[x] = l != 0;
                            if l == 0 {
                                continue;
                            }
                            let root = uf.find_cached(&mut root_of, l);
                            let west = x > 0 && cur[x - 1];
                            let nw = x > 0 && prev[x - 1];
                            let north = prev[x];
                            let ne = x + 1 < w && prev[x + 1];
                            let slot = &mut acc[root as usize];
                            let (gr, gc) = (r0 + r, x);
                            if slot.area == 0 {
                                debug_assert!(!west && !north, "first pixel with live 4-neighbour");
                                *slot = Accum::first(gr, gc);
                                touched.push(root);
                            } else {
                                slot.add(gr, gc, west, nw, north, ne);
                            }
                        }
                    }
                    std::mem::swap(&mut prev, &mut cur);
                }
                acc
            }
        };

        // Assign fresh ids in raster order of each new component's first
        // pixel — its anchor, unique per component, so the sort
        // reproduces the sequential pass's id sequence exactly.
        let mut fresh: Vec<((usize, usize), u32)> = touched
            .iter()
            .filter(|&&root| {
                let a = &acc[root as usize];
                a.area > 0 && a.gid == 0
            })
            .map(|&root| (acc[root as usize].anchor, root))
            .collect();
        fresh.sort_unstable();
        for &(_, root) in &fresh {
            acc[root as usize].gid = self.next_gid;
            self.next_gid += 1;
        }

        // Components with a pixel on the row's last line stay open:
        // compact them to active ids 1..=k and rebuild the carry row.
        // The fused sequential path resolves roots lazily: its carry seam
        // changed roots after the fold sweep, so the cache fills here.
        let mut new_active: Vec<Accum> = vec![Accum::EMPTY];
        let mut new_carry = vec![0u32; w];
        let mut survivor_id: Vec<u32> = vec![0; nslots];
        for t in 0..ntiles {
            let tw = widths[t];
            let base = (th - 1) * tw;
            for c in 0..tw {
                let l = bufs[t][base + c];
                if l == 0 {
                    continue;
                }
                let root = uf.find_cached(&mut root_of, l) as usize;
                if survivor_id[root] == 0 {
                    new_active.push(acc[root]);
                    survivor_id[root] = (new_active.len() - 1) as u32;
                }
                new_carry[x0s[t] + c] = survivor_id[root];
            }
        }

        let mut closed: Vec<Accum> = touched
            .iter()
            .filter(|&&root| survivor_id[root as usize] == 0 && acc[root as usize].area > 0)
            .map(|&root| acc[root as usize])
            .collect();
        closed.sort_by_key(|a| a.gid);
        for acc in closed {
            self.finalized += 1;
            components.component(&acc.into_record());
        }

        if let Some(sink) = sink {
            merges.sort_unstable();
            for (kept, absorbed) in merges {
                sink.merge(kept, absorbed);
            }
            for t in 0..ntiles {
                let tw = widths[t];
                let mut gids = vec![0u64; tw * th];
                for (i, g) in gids.iter_mut().enumerate() {
                    let l = bufs[t][i];
                    if l == 0 {
                        continue;
                    }
                    let root = uf.find_cached(&mut root_of, l);
                    *g = acc[root as usize].gid;
                }
                sink.tile(
                    &TileMeta {
                        tile_row: self.tile_rows_done,
                        tile_col: t,
                        row0: r0,
                        col0: x0s[t],
                        width: widths[t],
                        height: th,
                    },
                    &gids,
                )?;
            }
        }

        self.active = new_active;
        self.carry = new_carry;
        self.rows_done += th;
        self.tile_rows_done += 1;
        self.tiles_done += ntiles;
        Ok(())
    }
}

/// Post-scan state of one tile row: per-tile label buffers with the
/// vertical seams already merged, and the union-find view the merge
/// stage resolves roots through. Produced by [`scan_tile_row`], consumed
/// by [`TileGridLabeler::merge_scanned`].
pub(crate) struct ScannedTileRow {
    /// Height of every tile in the row (0 for degenerate rows).
    pub(crate) th: usize,
    /// Per-tile widths, left to right.
    pub(crate) widths: Vec<usize>,
    /// Per-tile global column offsets.
    pub(crate) x0s: Vec<usize>,
    /// Per-tile label buffers (row-major within each tile).
    pub(crate) bufs: Vec<Vec<u32>>,
    /// The row's equivalences: carried-id slots `1..=carry_cap`, tile
    /// labels from `carry_cap + 1`.
    pub(crate) uf: BandUf,
    /// Fused mode: partial accumulators indexed by provisional label,
    /// covering every pixel of the row except its first line (whose
    /// upper neighbours are the carry row the scan must not read).
    pub(crate) partials: Option<Vec<Accum>>,
    /// Provisional-label ranges the scan actually allocated — the merge
    /// stage's fold sweeps these instead of the full slot space.
    pub(crate) used: Vec<Range<u32>>,
    /// True for rows with no pixels (zero height or zero width): the
    /// merge stage only counts them.
    pub(crate) degenerate: bool,
}

/// Accumulates one tile's fused partial table: every foreground pixel of
/// the tile's rows `1..th` folds its single-pixel accumulator into
/// `parts[label - base]`. Neighbour probes read the raw tile pixels —
/// the adjacent tiles' edge columns included — so the result never
/// depends on another tile's label buffer, which may not exist yet. The
/// row's global first line is always skipped: its upper neighbours are
/// the carry row, which the merge stage absorbs in O(width).
#[allow(clippy::too_many_arguments)]
fn accumulate_tile(
    tiles: &[BinaryImage],
    t: usize,
    buf: &[u32],
    th: usize,
    r0: usize,
    x0: usize,
    base: u32,
    parts: &mut [Accum],
) {
    let tile = &tiles[t];
    let tw = tile.width();
    let left = (t > 0).then(|| &tiles[t - 1]).filter(|l| l.width() > 0);
    let right = tiles.get(t + 1).filter(|r| r.width() > 0);
    for r in 1..th {
        let row_base = r * tw;
        let cur = tile.row(r);
        let up = tile.row(r - 1);
        for c in 0..tw {
            let l = buf[row_base + c];
            if l == 0 {
                continue;
            }
            let west = if c > 0 {
                cur[c - 1] == 1
            } else {
                left.is_some_and(|lt| lt.row(r)[lt.width() - 1] == 1)
            };
            let nw = if c > 0 {
                up[c - 1] == 1
            } else {
                left.is_some_and(|lt| lt.row(r - 1)[lt.width() - 1] == 1)
            };
            let north = up[c] == 1;
            let ne = if c + 1 < tw {
                up[c + 1] == 1
            } else {
                right.is_some_and(|rt| rt.row(r - 1)[0] == 1)
            };
            parts[(l - base) as usize].absorb(r0 + r, x0 + c, west, nw, north, ne);
        }
    }
}

/// The scan stage: validates a tile row's shape, scans every tile with
/// chunk-local semantics (RemSP sequentially, PAREMSP worker groups in
/// parallel mode), merges the vertical seams between adjacent tiles, and
/// — in [`FoldMode::Fused`] — accumulates every tile's partial table
/// while the pixels are hot ([`accumulate_tile`]).
///
/// Everything here is independent of the carried boundary row — the one
/// dependency between consecutive tile rows — except for the size of the
/// reserved low label slots: carried ids occupy `1..=carry_cap`, tile
/// labels start at `carry_cap + 1`. The synchronous path passes the
/// exact open-component count; the pipelined executor passes the width
/// bound `⌈w/2⌉` (no row can carry more open components than that), so
/// the scan can run before the previous row's compaction has decided the
/// real count. Unused reserved slots stay singleton sets that no tile
/// label ever resolves to, so the output is identical either way. `r0`
/// is the global row of the tile row's first line (partial accumulators
/// hold global coordinates).
pub(crate) fn scan_tile_row(
    tiles: &[BinaryImage],
    width: usize,
    cfg: &TileGridConfig,
    carry_cap: u32,
    r0: usize,
) -> Result<ScannedTileRow, TilesError> {
    let total: usize = tiles.iter().map(BinaryImage::width).sum();
    if total != width {
        return Err(TilesError::WidthMismatch {
            expected: width,
            got: total,
        });
    }
    let th = tiles.first().map_or(0, |t| t.height());
    if let Some(bad) = tiles.iter().find(|t| t.height() != th) {
        return Err(TilesError::RaggedTileRow {
            expected: th,
            got: bad.height(),
        });
    }
    if th == 0 || width == 0 {
        return Ok(ScannedTileRow {
            th,
            widths: Vec::new(),
            x0s: Vec::new(),
            bufs: Vec::new(),
            uf: BandUf::Seq(RemSP::new()),
            partials: None,
            used: Vec::new(),
            degenerate: true,
        });
    }
    let fused = cfg.fold == FoldMode::Fused;
    let widths: Vec<usize> = tiles.iter().map(BinaryImage::width).collect();
    let mut x0s = Vec::with_capacity(tiles.len());
    let mut x0 = 0usize;
    for &tw in &widths {
        x0s.push(x0);
        x0 += tw;
    }

    let (bufs, uf, partials, used) = if cfg.threads <= 1 {
        let capacity: usize = widths
            .iter()
            .map(|&tw| max_labels_two_line(th, tw))
            .sum::<usize>()
            + 1
            + carry_cap as usize;
        let mut store = RemSP::with_capacity(capacity);
        for id in 0..=carry_cap {
            store.new_label(id);
        }
        let mut bufs: Vec<Vec<u32>> = widths.iter().map(|&tw| vec![0u32; tw * th]).collect();
        let mut partials = fused.then(|| vec![Accum::EMPTY; capacity]);
        let mut next = carry_cap + 1;
        for (t, buf) in bufs.iter_mut().enumerate() {
            next = scan_two_line(&tiles[t], 0..th, buf, &mut store, next);
            if let Some(parts) = &mut partials {
                accumulate_tile(tiles, t, buf, th, r0, x0s[t], 0, parts);
            }
        }
        if let Some(parts) = &mut partials {
            parts.truncate(next as usize);
        }
        for t in 1..tiles.len() {
            let lw = widths[t - 1];
            merge_seam_strided(
                &bufs[t - 1][lw - 1..],
                lw,
                &bufs[t],
                widths[t],
                th,
                &mut store,
            );
        }
        let used: Vec<Range<u32>> = std::iter::once(carry_cap + 1..next).collect();
        (bufs, BandUf::Seq(store), partials, used)
    } else {
        let (bufs, parents, partials, used) = match cfg.merger {
            MergerKind::Locked => {
                let merger = match cfg.lock_stripes {
                    Some(s) => LockedMerger::with_stripes(s),
                    None => LockedMerger::new(),
                };
                scan_tile_row_parallel(tiles, &widths, &x0s, th, carry_cap, cfg, r0, &merger)
            }
            MergerKind::Cas => scan_tile_row_parallel(
                tiles,
                &widths,
                &x0s,
                th,
                carry_cap,
                cfg,
                r0,
                &CasMerger::new(),
            ),
        };
        (bufs, BandUf::Par(parents), partials, used)
    };
    Ok(ScannedTileRow {
        th,
        widths,
        x0s,
        bufs,
        uf,
        partials,
        used,
        degenerate: false,
    })
}

/// Merges the horizontal carry seam in column spans across the
/// configured workers (phase 3 of the parallel mode, run by the merge
/// stage because it needs the carry row).
fn merge_carry_seam_parallel(
    carry: &[u32],
    top: &[u32],
    parents: &ConcurrentParents,
    cfg: &TileGridConfig,
) {
    match cfg.merger {
        MergerKind::Locked => {
            let merger = match cfg.lock_stripes {
                Some(s) => LockedMerger::with_stripes(s),
                None => LockedMerger::new(),
            };
            carry_seam_spans(carry, top, parents, cfg.threads, &merger);
        }
        MergerKind::Cas => carry_seam_spans(carry, top, parents, cfg.threads, &CasMerger::new()),
    }
}

fn carry_seam_spans<M: ConcurrentMerger>(
    carry: &[u32],
    top: &[u32],
    parents: &ConcurrentParents,
    threads: usize,
    merger: &M,
) {
    rayon::scope(|s| {
        for span in split_spans(carry.len(), threads) {
            s.spawn(move |_| {
                let mut store = MergerStore::new(parents, merger);
                merge_seam_span(carry, top, span, &mut store);
            });
        }
    });
}

/// Copies local row `r` of every tile buffer into one `width`-long row.
fn assemble_row(bufs: &[Vec<u32>], widths: &[usize], r: usize, width: usize) -> Vec<u32> {
    let mut row = Vec::with_capacity(width);
    for (buf, &tw) in bufs.iter().zip(widths) {
        row.extend_from_slice(&buf[r * tw..(r + 1) * tw]);
    }
    debug_assert_eq!(row.len(), width);
    row
}

/// Parallel tile-row scan: tiles are grouped into at most `threads`
/// contiguous runs scanned concurrently with disjoint provisional-label
/// ranges, then the vertical seams merge concurrently with the configured
/// MERGER. In [`FoldMode::Fused`] every worker also accumulates its
/// tiles' partial [`Accum`] tables (contention-free: partials live in
/// the tile's own label range; neighbour probes read raw pixels, never
/// another worker's labels). The horizontal carry seam is the merge
/// stage's job ([`merge_carry_seam_parallel`]).
#[allow(clippy::too_many_arguments)]
fn scan_tile_row_parallel<M: ConcurrentMerger>(
    tiles: &[BinaryImage],
    widths: &[usize],
    x0s: &[usize],
    th: usize,
    carry_cap: u32,
    cfg: &TileGridConfig,
    r0: usize,
    merger: &M,
) -> ParallelTileScan {
    let ntiles = tiles.len();
    let threads = cfg.threads.max(1);
    let fused = cfg.fold == FoldMode::Fused;
    // disjoint label ranges, one per tile
    let mut offsets = Vec::with_capacity(ntiles);
    let mut next = carry_cap + 1;
    for &tw in widths {
        offsets.push(next);
        next += max_labels_two_line(th, tw) as u32;
    }
    let parents = ConcurrentParents::new(next as usize);
    {
        let mut store = parents.chunk_store();
        for id in 1..=carry_cap {
            store.new_label(id);
        }
    }
    let mut bufs: Vec<Vec<u32>> = widths.iter().map(|&tw| vec![0u32; tw * th]).collect();
    let mut partials = fused.then(|| vec![Accum::EMPTY; next as usize]);
    let mut nexts: Vec<u32> = offsets.clone();

    // Phase 1: per-tile scans, grouped into contiguous runs of tiles
    // (contention-free: disjoint ranges, one ChunkStore per group);
    // fused mode accumulates each tile's partial table in the same
    // worker, right after its scan, while the pixels are hot.
    rayon::scope(|s| {
        let mut rest: &mut [Vec<u32>] = &mut bufs;
        let mut rest_next: &mut [u32] = &mut nexts;
        let mut rest_parts: &mut [Accum] = match &mut partials {
            Some(p) => &mut p[(carry_cap as usize + 1)..],
            None => &mut [],
        };
        for group in split_spans(ntiles, threads) {
            let (mine, tail) = rest.split_at_mut(group.len());
            rest = tail;
            let (my_nexts, ntail) = rest_next.split_at_mut(group.len());
            rest_next = ntail;
            let group_caps: usize = group
                .clone()
                .map(|t| max_labels_two_line(th, widths[t]))
                .sum();
            let (my_parts, ptail) = if fused {
                rest_parts.split_at_mut(group_caps)
            } else {
                (&mut [] as &mut [Accum], rest_parts)
            };
            rest_parts = ptail;
            let parents = &parents;
            let offsets = &offsets;
            s.spawn(move |_| {
                let mut store = parents.chunk_store();
                let mut parts_rest = my_parts;
                for ((t, buf), next_out) in group.zip(mine).zip(my_nexts) {
                    *next_out = scan_two_line(&tiles[t], 0..th, buf, &mut store, offsets[t]);
                    if fused {
                        let cap = max_labels_two_line(th, widths[t]);
                        let (tile_parts, tail) = parts_rest.split_at_mut(cap);
                        parts_rest = tail;
                        accumulate_tile(tiles, t, buf, th, r0, x0s[t], offsets[t], tile_parts);
                    }
                }
            });
        }
    });

    // Phase 2: vertical seams between adjacent tiles, concurrently with
    // the shared merger (each boundary reads two finished tile buffers).
    if ntiles > 1 {
        let bufs_ref = &bufs;
        rayon::scope(|s| {
            for group in split_spans(ntiles - 1, threads) {
                let parents = &parents;
                s.spawn(move |_| {
                    let mut store = MergerStore::new(parents, merger);
                    // boundary i sits between tiles i and i + 1
                    for t in group.start + 1..group.end + 1 {
                        let lw = widths[t - 1];
                        merge_seam_strided(
                            &bufs_ref[t - 1][lw - 1..],
                            lw,
                            &bufs_ref[t],
                            widths[t],
                            th,
                            &mut store,
                        );
                    }
                });
            }
        });
    }

    let used = offsets.iter().zip(&nexts).map(|(&o, &n)| o..n).collect();
    (bufs, parents, partials, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_stream::{ComponentRecord, CountComponents};

    /// Tiles `img` into `tile_w × tile_h` tiles and runs the grid labeler.
    fn run_tiled(
        img: &BinaryImage,
        tile_w: usize,
        tile_h: usize,
        cfg: TileGridConfig,
    ) -> (Vec<ComponentRecord>, TileGridStats) {
        use crate::source::{GridSource, TileSource};
        let mut sink: Vec<ComponentRecord> = Vec::new();
        let mut labeler = TileGridLabeler::with_config(img.width(), cfg);
        let mut src = GridSource::from_image(img, tile_w, tile_h);
        while let Some(tiles) = src.next_tile_row().unwrap() {
            labeler.push_tile_row(&tiles, &mut sink).unwrap();
        }
        let stats = labeler.finish(&mut sink);
        (sink, stats)
    }

    #[test]
    fn single_tile_matches_strip_semantics() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let (recs, stats) = run_tiled(&img, 4, 3, TileGridConfig::default());
        assert_eq!(stats.components, 2);
        assert_eq!(recs[0].area, 4);
        assert_eq!(recs[0].bbox, (0, 0, 1, 1));
        assert_eq!(recs[1].area, 1);
    }

    #[test]
    fn component_crossing_vertical_seam() {
        let img = BinaryImage::from_fn(8, 3, |r, _| r == 1);
        for tile_w in 1..=8 {
            let (recs, stats) = run_tiled(&img, tile_w, 3, TileGridConfig::default());
            assert_eq!(stats.components, 1, "tile width {tile_w}");
            assert_eq!(recs[0].area, 8);
            assert_eq!(recs[0].bbox, (1, 0, 1, 7));
        }
    }

    #[test]
    fn diagonal_only_vertical_seam_connects() {
        // pixels at (0,1) and (1,2): tiles of width 2 split them into
        // different tiles; only the diagonal crosses the seam
        let img = BinaryImage::parse(
            ".#..
             ..#.",
        );
        let (recs, stats) = run_tiled(&img, 2, 2, TileGridConfig::default());
        assert_eq!(stats.components, 1);
        assert_eq!(recs[0].area, 2);
    }

    #[test]
    fn u_shape_across_all_four_tiles() {
        let img = BinaryImage::parse(
            "#..#
             #..#
             ####",
        );
        for (tw, th) in [(1, 1), (2, 2), (3, 2), (2, 1), (4, 3), (1, 3)] {
            let (recs, stats) = run_tiled(&img, tw, th, TileGridConfig::default());
            assert_eq!(stats.components, 1, "{tw}x{th} tiles");
            assert_eq!(recs[0].id, 1, "older id survives");
            assert_eq!(recs[0].area, 8);
        }
    }

    #[test]
    fn tile_shape_invariance_on_random_images() {
        let mut state = 3u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(21, 17, |_, _| rnd());
        let (reference, _) = run_tiled(&img, 21, 17, TileGridConfig::default());
        let mut sorted_ref: Vec<_> = reference
            .iter()
            .map(|r| (r.anchor, r.area, r.bbox, r.perimeter))
            .collect();
        sorted_ref.sort_unstable();
        for (tw, th) in [(1, 1), (2, 3), (5, 5), (7, 2), (20, 16), (21, 1), (1, 17)] {
            let (recs, _) = run_tiled(&img, tw, th, TileGridConfig::default());
            let mut got: Vec<_> = recs
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.perimeter))
                .collect();
            got.sort_unstable();
            assert_eq!(got, sorted_ref, "{tw}x{th} tiles");
        }
    }

    #[test]
    fn parallel_mode_is_bit_identical_to_sequential() {
        let mut state = 1234u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(37, 29, |_, _| rnd());
        let (seq, seq_stats) = run_tiled(&img, 7, 5, TileGridConfig::sequential());
        for threads in [2, 3, 8] {
            for merger in MergerKind::ALL {
                let cfg = TileGridConfig::parallel(threads).with_merger(merger);
                let (par, par_stats) = run_tiled(&img, 7, 5, cfg);
                assert_eq!(par, seq, "{threads} threads, {merger}");
                assert_eq!(par_stats, seq_stats);
            }
        }
    }

    #[test]
    fn fused_fold_is_bit_identical_to_sequential_fold() {
        let mut state = 77u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let img = BinaryImage::from_fn(29, 23, |_, _| rnd());
        for (tw, th) in [(1, 1), (4, 3), (7, 5), (29, 23)] {
            for threads in [1, 2, 4] {
                let seq_cfg = TileGridConfig::parallel(threads).with_fold(FoldMode::Sequential);
                let fused_cfg = TileGridConfig::parallel(threads).with_fold(FoldMode::Fused);
                let (seq, seq_stats) = run_tiled(&img, tw, th, seq_cfg);
                let (fused, fused_stats) = run_tiled(&img, tw, th, fused_cfg);
                assert_eq!(fused, seq, "{tw}x{th} tiles, {threads} threads");
                assert_eq!(fused_stats, seq_stats);
            }
        }
    }

    #[test]
    fn bounded_memory_invariant() {
        let img = BinaryImage::from_fn(32, 64, |r, c| (r + c) % 3 != 0);
        let (_, stats) = run_tiled(&img, 8, 8, TileGridConfig::default());
        assert_eq!(stats.peak_resident_rows, 9); // 8-row tile row + carry
        assert_eq!(stats.rows, 64);
        assert_eq!(stats.tile_rows, 8);
        assert_eq!(stats.tiles, 8 * 4);
    }

    #[test]
    fn label_slots_are_recycled() {
        let img = BinaryImage::from_fn(64, 64, |r, _| r % 2 == 0);
        let mut sink = CountComponents::default();
        let mut labeler = TileGridLabeler::new(64);
        let mut src = crate::source::GridSource::from_image(&img, 16, 2);
        use crate::source::TileSource;
        while let Some(tiles) = src.next_tile_row().unwrap() {
            labeler.push_tile_row(&tiles, &mut sink).unwrap();
            assert!(labeler.open_components() <= 1);
        }
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 32);
    }

    #[test]
    fn holes_match_whole_image_oracle_across_tile_shapes() {
        // figure-eight (2 holes) + a diagonal-gap ring (1 hole: bg is
        // 4-connected, foreground 8-connected)
        let img = BinaryImage::parse(
            "#####..##
             #.#.#.#.#
             #####.##.",
        );
        let expected = ccl_core::analysis::count_holes(&img, ccl_image::Connectivity::Eight) as u64;
        for (tw, th) in [(1, 1), (2, 2), (3, 1), (9, 3), (4, 2)] {
            let (recs, _) = run_tiled(&img, tw, th, TileGridConfig::default());
            let total: u64 = recs.iter().map(|r| r.holes).sum();
            assert_eq!(total, expected, "{tw}x{th} tiles");
        }
    }

    #[test]
    fn width_and_height_validation() {
        let mut labeler = TileGridLabeler::new(4);
        let mut sink = CountComponents::default();
        let err = labeler
            .push_tile_row(&[BinaryImage::zeros(3, 2)], &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            TilesError::WidthMismatch {
                expected: 4,
                got: 3
            }
        ));
        let err = labeler
            .push_tile_row(
                &[BinaryImage::zeros(2, 2), BinaryImage::zeros(2, 3)],
                &mut sink,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TilesError::RaggedTileRow {
                expected: 2,
                got: 3
            }
        ));
    }

    #[test]
    fn empty_and_degenerate_grids() {
        let mut sink = CountComponents::default();
        let stats = TileGridLabeler::new(8).finish(&mut sink);
        assert_eq!(stats.components, 0);

        let mut labeler = TileGridLabeler::new(0);
        labeler
            .push_tile_row(&[BinaryImage::zeros(0, 5)], &mut sink)
            .unwrap();
        let stats = labeler.finish(&mut sink);
        assert_eq!(stats.components, 0);
        assert_eq!(stats.rows, 5);
    }
}
