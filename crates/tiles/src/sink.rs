//! [`TileSink`] — labeled-tile output, including the spill-to-disk writer.
//!
//! The grid labeler emits each tile's labels exactly once, carrying the
//! [`ComponentId`]s known at emission time; components still open may
//! later merge, and every such event is reported through
//! [`TileSink::merge`] *before* the next tile. Two sinks are provided:
//!
//! * [`CollectTiles`] — buffers everything and reconciles into a
//!   [`LabelImage`] (tests and callers with memory to spare);
//! * [`SpillSink`] — the out-of-core path: tiles are **spilled to disk**
//!   as raw little-endian `u32` rasters or 16-bit PGM (`P5`, maxval
//!   65535), a sidecar manifest records the grid geometry and the merge
//!   table, and [`SpillSink::close`] patches the spilled files to final
//!   labels one tile at a time — output memory stays O(tile), matching
//!   the labeler's input bound.
//!
//! The sidecar is a line-oriented text format (`manifest.txt`) so it
//! round-trips without a JSON parser; [`read_manifest`] and
//! [`read_spilled_label_image`] reconstruct the exact partition from the
//! spilled tiles plus the merge table.

use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use ccl_core::label::LabelImage;
use ccl_image::io::pgm;
use ccl_stream::ComponentId;

use crate::error::TilesError;

/// Placement of one emitted tile within the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileMeta {
    /// Tile-row index (0-based, top to bottom).
    pub tile_row: usize,
    /// Tile-column index (0-based, left to right).
    pub tile_col: usize,
    /// Global image row of the tile's first pixel row.
    pub row0: usize,
    /// Global image column of the tile's first pixel column.
    pub col0: usize,
    /// Tile width in pixels.
    pub width: usize,
    /// Tile height in pixels.
    pub height: usize,
}

/// Receives every labeled tile exactly once, in row-major tile order.
/// Tile pixels hold [`ComponentId`]s (0 = background) as known at
/// emission time; [`TileSink::merge`] reports every later unification
/// (always before the tiles of the band that discovered it), so a
/// consumer that union-finds the merge pairs obtains the exact final
/// partition.
pub trait TileSink {
    /// Two previously emitted ids turned out to be one component; `kept`
    /// (the smaller) survives.
    fn merge(&mut self, kept: ComponentId, absorbed: ComponentId);

    /// One labeled tile, row-major within the tile.
    fn tile(&mut self, meta: &TileMeta, gids: &[ComponentId]) -> Result<(), TilesError>;
}

/// Reference in-memory [`TileSink`]: buffers tiles and merge events, then
/// reconciles them into a [`LabelImage`].
#[derive(Debug, Default)]
pub struct CollectTiles {
    tiles: Vec<(TileMeta, Vec<ComponentId>)>,
    merges: Vec<(ComponentId, ComponentId)>,
}

impl TileSink for CollectTiles {
    fn merge(&mut self, kept: ComponentId, absorbed: ComponentId) {
        self.merges.push((kept, absorbed));
    }

    fn tile(&mut self, meta: &TileMeta, gids: &[ComponentId]) -> Result<(), TilesError> {
        debug_assert_eq!(gids.len(), meta.width * meta.height);
        self.tiles.push((*meta, gids.to_vec()));
        Ok(())
    }
}

impl CollectTiles {
    /// Applies the recorded merges and renumbers components canonically
    /// (consecutive `1..=k` by raster order of first pixel).
    pub fn into_label_image(self) -> LabelImage {
        let (width, height) = extent(self.tiles.iter().map(|(m, _)| m));
        let mut gids = vec![0u64; width * height];
        for (meta, tile) in &self.tiles {
            blit(&mut gids, width, meta, tile);
        }
        reconcile(width, height, gids, &self.merges)
    }
}

/// Computes the grid extent covered by a set of tile placements.
fn extent<'a>(metas: impl Iterator<Item = &'a TileMeta>) -> (usize, usize) {
    let mut width = 0;
    let mut height = 0;
    for m in metas {
        width = width.max(m.col0 + m.width);
        height = height.max(m.row0 + m.height);
    }
    (width, height)
}

/// Copies a tile's ids into a full-width gid raster.
fn blit(gids: &mut [u64], width: usize, meta: &TileMeta, tile: &[ComponentId]) {
    for r in 0..meta.height {
        let dst = (meta.row0 + r) * width + meta.col0;
        gids[dst..dst + meta.width].copy_from_slice(&tile[r * meta.width..(r + 1) * meta.width]);
    }
}

/// Resolves merge chains and canonically renumbers a gid raster into a
/// [`LabelImage`] (consecutive labels by raster order of first pixel).
fn reconcile(
    width: usize,
    height: usize,
    gids: Vec<u64>,
    merges: &[(ComponentId, ComponentId)],
) -> LabelImage {
    // merges always keep the smaller id, so absorbed -> kept terminates
    let mut parent: HashMap<ComponentId, ComponentId> = HashMap::new();
    for &(kept, absorbed) in merges {
        parent.insert(absorbed, kept);
    }
    let resolve = |mut id: ComponentId| {
        while let Some(&p) = parent.get(&id) {
            id = p;
        }
        id
    };
    let mut remap: HashMap<ComponentId, u32> = HashMap::new();
    let mut next = 0u32;
    let labels: Vec<u32> = gids
        .iter()
        .map(|&g| {
            if g == 0 {
                0
            } else {
                let root = resolve(g);
                *remap.entry(root).or_insert_with(|| {
                    next += 1;
                    next
                })
            }
        })
        .collect();
    LabelImage::from_raw(width, height, labels, next)
}

/// On-disk encoding of a spilled tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFormat {
    /// Raw little-endian `u32` samples, row-major, no header (geometry
    /// lives in the manifest). Ids up to `u32::MAX`.
    RawU32,
    /// 16-bit binary PGM (`P5`, maxval 65535, big-endian samples) — a
    /// standard format any Netpbm tool can open. Ids up to 65535.
    Pgm16,
}

impl SpillFormat {
    /// Largest representable component id.
    pub fn limit(self) -> u64 {
        match self {
            SpillFormat::RawU32 => u32::MAX as u64,
            SpillFormat::Pgm16 => u16::MAX as u64,
        }
    }

    fn extension(self) -> &'static str {
        match self {
            SpillFormat::RawU32 => "u32",
            SpillFormat::Pgm16 => "pgm",
        }
    }

    fn name(self) -> &'static str {
        match self {
            SpillFormat::RawU32 => "raw-u32",
            SpillFormat::Pgm16 => "pgm16",
        }
    }

    fn parse(s: &str) -> Result<Self, TilesError> {
        match s {
            "raw-u32" => Ok(SpillFormat::RawU32),
            "pgm16" => Ok(SpillFormat::Pgm16),
            other => Err(TilesError::Manifest(format!("unknown format {other:?}"))),
        }
    }
}

/// Geometry + merge table of a finished spill, as written to / read from
/// the sidecar `manifest.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillManifest {
    /// Tile encoding.
    pub format: SpillFormat,
    /// Grid width in pixels.
    pub width: usize,
    /// Pixel rows covered by the spilled tiles.
    pub rows: usize,
    /// Placement of every spilled tile, in emission (row-major) order.
    pub tiles: Vec<TileMeta>,
    /// The merge table: every `(kept, absorbed)` id unification, in
    /// emission order. After [`SpillSink::close`] the tile files already
    /// carry final ids, but the table is kept as the sidecar of record so
    /// a reader can reconstruct the partition from *unpatched* spills too
    /// (resolution is idempotent).
    pub merges: Vec<(ComponentId, ComponentId)>,
}

const MANIFEST_NAME: &str = "manifest.txt";
const MANIFEST_MAGIC: &str = "ccl-tiles spill v1";

/// The out-of-core [`TileSink`]: spills each labeled tile to `dir` as it
/// is emitted and patches final labels on [`close`](SpillSink::close).
/// See the module docs for the file layout.
#[derive(Debug)]
pub struct SpillSink {
    dir: PathBuf,
    format: SpillFormat,
    tiles: Vec<TileMeta>,
    merges: Vec<(ComponentId, ComponentId)>,
}

impl SpillSink {
    /// Creates the spill directory (and parents) and an empty sink.
    pub fn create(dir: impl Into<PathBuf>, format: SpillFormat) -> Result<Self, TilesError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillSink {
            dir,
            format,
            tiles: Vec::new(),
            merges: Vec::new(),
        })
    }

    /// Directory the tiles spill into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Tiles spilled so far.
    pub fn tiles_spilled(&self) -> usize {
        self.tiles.len()
    }

    fn tile_path(dir: &Path, format: SpillFormat, meta: &TileMeta) -> PathBuf {
        dir.join(format!(
            "tile_{:05}_{:05}.{}",
            meta.tile_row,
            meta.tile_col,
            format.extension()
        ))
    }

    fn write_tile(&self, meta: &TileMeta, gids: &[u64]) -> Result<(), TilesError> {
        let path = Self::tile_path(&self.dir, self.format, meta);
        let limit = self.format.limit();
        if let Some(&bad) = gids.iter().find(|&&g| g > limit) {
            return Err(TilesError::LabelOverflow { gid: bad, limit });
        }
        let bytes = match self.format {
            SpillFormat::RawU32 => {
                let mut out = Vec::with_capacity(gids.len() * 4);
                for &g in gids {
                    out.extend_from_slice(&(g as u32).to_le_bytes());
                }
                out
            }
            SpillFormat::Pgm16 => {
                let samples: Vec<u16> = gids.iter().map(|&g| g as u16).collect();
                pgm::write_binary16(meta.width, meta.height, &samples)
            }
        };
        fs::write(path, bytes)?;
        Ok(())
    }

    /// Finalizes the spill: writes the sidecar manifest, then patches
    /// every tile whose ids were absorbed by a merge — one tile resident
    /// at a time — so the on-disk rasters carry final component ids.
    /// Returns the manifest.
    pub fn close(self) -> Result<SpillManifest, TilesError> {
        let (width, rows) = extent(self.tiles.iter());
        let manifest = SpillManifest {
            format: self.format,
            width,
            rows,
            tiles: self.tiles,
            merges: self.merges,
        };
        write_manifest(&self.dir, &manifest)?;

        // resolve map: absorbed id -> final id (chains collapsed)
        let mut parent: HashMap<u64, u64> = HashMap::new();
        for &(kept, absorbed) in &manifest.merges {
            parent.insert(absorbed, kept);
        }
        let mut finals: HashMap<u64, u64> = HashMap::new();
        for &absorbed in parent.keys() {
            let mut id = absorbed;
            while let Some(&p) = parent.get(&id) {
                id = p;
            }
            finals.insert(absorbed, id);
        }
        if !finals.is_empty() {
            for meta in &manifest.tiles {
                patch_tile(&self.dir, manifest.format, meta, &finals)?;
            }
        }
        Ok(manifest)
    }
}

impl TileSink for SpillSink {
    fn merge(&mut self, kept: ComponentId, absorbed: ComponentId) {
        self.merges.push((kept, absorbed));
    }

    fn tile(&mut self, meta: &TileMeta, gids: &[ComponentId]) -> Result<(), TilesError> {
        self.write_tile(meta, gids)?;
        self.tiles.push(*meta);
        Ok(())
    }
}

/// Rewrites one spilled tile with absorbed ids mapped to their final ids.
/// Skips the write when nothing in the tile changed.
fn patch_tile(
    dir: &Path,
    format: SpillFormat,
    meta: &TileMeta,
    finals: &HashMap<u64, u64>,
) -> Result<(), TilesError> {
    let path = SpillSink::tile_path(dir, format, meta);
    let mut gids = read_tile(&path, format, meta)?;
    let mut changed = false;
    for g in gids.iter_mut() {
        if let Some(&f) = finals.get(g) {
            *g = f;
            changed = true;
        }
    }
    if changed {
        // final ids are always the *smaller* of a merged pair, so
        // patching can never overflow the format
        let sink = SpillSink {
            dir: dir.to_path_buf(),
            format,
            tiles: Vec::new(),
            merges: Vec::new(),
        };
        sink.write_tile(meta, &gids)?;
    }
    Ok(())
}

/// Reads one spilled tile back into component ids.
fn read_tile(path: &Path, format: SpillFormat, meta: &TileMeta) -> Result<Vec<u64>, TilesError> {
    let bytes = fs::read(path)?;
    let expected = meta.width * meta.height;
    match format {
        SpillFormat::RawU32 => {
            if bytes.len() != expected * 4 {
                return Err(TilesError::Manifest(format!(
                    "tile {} has {} bytes, expected {}",
                    path.display(),
                    bytes.len(),
                    expected * 4
                )));
            }
            Ok(bytes
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64)
                .collect())
        }
        SpillFormat::Pgm16 => {
            let (w, h, samples) = pgm::read_binary16(&bytes)?;
            if (w, h) != (meta.width, meta.height) {
                return Err(TilesError::Manifest(format!(
                    "tile {} is {w}x{h}, expected {}x{}",
                    path.display(),
                    meta.width,
                    meta.height
                )));
            }
            Ok(samples.into_iter().map(u64::from).collect())
        }
    }
}

fn write_manifest(dir: &Path, manifest: &SpillManifest) -> Result<(), TilesError> {
    let mut out = String::new();
    out.push_str(MANIFEST_MAGIC);
    out.push('\n');
    out.push_str(&format!("format {}\n", manifest.format.name()));
    out.push_str(&format!("width {}\n", manifest.width));
    out.push_str(&format!("rows {}\n", manifest.rows));
    out.push_str(&format!("tiles {}\n", manifest.tiles.len()));
    for m in &manifest.tiles {
        out.push_str(&format!(
            "tile {} {} {} {} {} {}\n",
            m.tile_row, m.tile_col, m.row0, m.col0, m.width, m.height
        ));
    }
    out.push_str(&format!("merges {}\n", manifest.merges.len()));
    for &(kept, absorbed) in &manifest.merges {
        out.push_str(&format!("merge {kept} {absorbed}\n"));
    }
    let mut f = fs::File::create(dir.join(MANIFEST_NAME))?;
    f.write_all(out.as_bytes())?;
    Ok(())
}

/// Parses the sidecar manifest of a spill directory.
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<SpillManifest, TilesError> {
    let path = dir.as_ref().join(MANIFEST_NAME);
    let file = fs::File::open(&path)
        .map_err(|e| TilesError::Manifest(format!("{}: {e}", path.display())))?;
    let mut lines = BufReader::new(file).lines();
    let mut next_line = || -> Result<String, TilesError> {
        lines
            .next()
            .transpose()?
            .ok_or_else(|| TilesError::Manifest("unexpected end of manifest".into()))
    };
    if next_line()? != MANIFEST_MAGIC {
        return Err(TilesError::Manifest("bad magic line".into()));
    }
    let field = |line: &str, key: &str| -> Result<String, TilesError> {
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| TilesError::Manifest(format!("expected {key:?}, got {line:?}")))
    };
    let parse_usize = |s: &str| -> Result<usize, TilesError> {
        s.parse()
            .map_err(|_| TilesError::Manifest(format!("invalid number {s:?}")))
    };
    let format = SpillFormat::parse(&field(&next_line()?, "format")?)?;
    let width = parse_usize(&field(&next_line()?, "width")?)?;
    let rows = parse_usize(&field(&next_line()?, "rows")?)?;
    let ntiles = parse_usize(&field(&next_line()?, "tiles")?)?;
    let mut tiles = Vec::with_capacity(ntiles);
    for _ in 0..ntiles {
        let line = next_line()?;
        let body = field(&line, "tile")?;
        let nums: Vec<usize> = body
            .split_ascii_whitespace()
            .map(parse_usize)
            .collect::<Result<_, _>>()?;
        if nums.len() != 6 {
            return Err(TilesError::Manifest(format!(
                "malformed tile line {line:?}"
            )));
        }
        tiles.push(TileMeta {
            tile_row: nums[0],
            tile_col: nums[1],
            row0: nums[2],
            col0: nums[3],
            width: nums[4],
            height: nums[5],
        });
    }
    let nmerges = parse_usize(&field(&next_line()?, "merges")?)?;
    let mut merges = Vec::with_capacity(nmerges);
    for _ in 0..nmerges {
        let line = next_line()?;
        let body = field(&line, "merge")?;
        let nums: Vec<u64> = body
            .split_ascii_whitespace()
            .map(|s| {
                s.parse()
                    .map_err(|_| TilesError::Manifest(format!("invalid id {s:?}")))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 2 {
            return Err(TilesError::Manifest(format!(
                "malformed merge line {line:?}"
            )));
        }
        merges.push((nums[0], nums[1]));
    }
    // Self-consistency: every declared placement must fit the declared
    // extent (and the extent itself must be addressable), so downstream
    // readers can allocate and blit without bounds surprises.
    width
        .checked_mul(rows)
        .ok_or_else(|| TilesError::Manifest(format!("extent {width}x{rows} overflows")))?;
    for m in &tiles {
        let fits = m
            .col0
            .checked_add(m.width)
            .is_some_and(|right| right <= width)
            && m.row0
                .checked_add(m.height)
                .is_some_and(|bottom| bottom <= rows);
        if !fits {
            return Err(TilesError::Manifest(format!(
                "tile {}x{} at ({}, {}) exceeds declared extent {width}x{rows}",
                m.width, m.height, m.row0, m.col0
            )));
        }
    }
    Ok(SpillManifest {
        format,
        width,
        rows,
        tiles,
        merges,
    })
}

/// A fresh scratch directory under the system temp dir for spills that
/// do not outlive the run (demos, tests): unique per `tag`, process and
/// thread, and removed first if a previous run left it behind.
pub fn temp_spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ccl_tiles_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Reconstructs the exact labeling from a spill directory: reads the
/// manifest, loads every tile, applies the merge table (a no-op on
/// patched spills) and canonically renumbers into a [`LabelImage`].
/// The *reader* holds the whole image — the spill itself was produced in
/// O(tile) memory.
pub fn read_spilled_label_image(dir: impl AsRef<Path>) -> Result<LabelImage, TilesError> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let mut gids = vec![0u64; manifest.width * manifest.rows];
    for meta in &manifest.tiles {
        let tile = read_tile(
            &SpillSink::tile_path(dir, manifest.format, meta),
            manifest.format,
            meta,
        )?;
        blit(&mut gids, manifest.width, meta, &tile);
    }
    Ok(reconcile(
        manifest.width,
        manifest.rows,
        gids,
        &manifest.merges,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        temp_spill_dir(tag)
    }

    fn meta(tr: usize, tc: usize, r0: usize, c0: usize, w: usize, h: usize) -> TileMeta {
        TileMeta {
            tile_row: tr,
            tile_col: tc,
            row0: r0,
            col0: c0,
            width: w,
            height: h,
        }
    }

    #[test]
    fn collect_tiles_reconciles_merges() {
        let mut sink = CollectTiles::default();
        sink.tile(&meta(0, 0, 0, 0, 2, 1), &[1, 0]).unwrap();
        sink.tile(&meta(0, 1, 0, 2, 1, 1), &[2]).unwrap();
        sink.merge(1, 2);
        sink.tile(&meta(1, 0, 1, 0, 2, 1), &[1, 1]).unwrap();
        sink.tile(&meta(1, 1, 1, 2, 1, 1), &[2]).unwrap();
        let li = sink.into_label_image();
        assert_eq!(li.num_components(), 1);
        assert_eq!(li.as_slice(), &[1, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn spill_round_trip_raw_u32() {
        let dir = temp_dir("raw");
        let mut sink = SpillSink::create(&dir, SpillFormat::RawU32).unwrap();
        sink.tile(&meta(0, 0, 0, 0, 2, 2), &[1, 0, 1, 2]).unwrap();
        sink.tile(&meta(0, 1, 0, 2, 2, 2), &[0, 3, 2, 0]).unwrap();
        sink.merge(2, 3);
        sink.tile(&meta(1, 0, 2, 0, 2, 1), &[0, 2]).unwrap();
        sink.tile(&meta(1, 1, 2, 2, 2, 1), &[2, 0]).unwrap();
        assert_eq!(sink.tiles_spilled(), 4);
        let manifest = sink.close().unwrap();
        assert_eq!(manifest.width, 4);
        assert_eq!(manifest.rows, 3);
        assert_eq!(manifest.merges, vec![(2, 3)]);

        // files were patched: absorbed id 3 no longer appears
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back, manifest);
        let raw = read_tile(
            &SpillSink::tile_path(&dir, SpillFormat::RawU32, &back.tiles[1]),
            SpillFormat::RawU32,
            &back.tiles[1],
        )
        .unwrap();
        assert_eq!(raw, vec![0, 2, 2, 0]);

        let li = read_spilled_label_image(&dir).unwrap();
        assert_eq!(li.num_components(), 2);
        assert_eq!(li.as_slice(), &[1, 0, 0, 2, 1, 2, 2, 0, 0, 2, 2, 0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_round_trip_pgm16() {
        let dir = temp_dir("pgm");
        let mut sink = SpillSink::create(&dir, SpillFormat::Pgm16).unwrap();
        sink.tile(&meta(0, 0, 0, 0, 3, 1), &[1, 0, 2]).unwrap();
        sink.merge(1, 2);
        let manifest = sink.close().unwrap();
        assert_eq!(manifest.format, SpillFormat::Pgm16);
        // the spilled tile is a well-formed 16-bit PGM
        let bytes = fs::read(SpillSink::tile_path(
            &dir,
            SpillFormat::Pgm16,
            &manifest.tiles[0],
        ))
        .unwrap();
        let (w, h, samples) = pgm::read_binary16(&bytes).unwrap();
        assert_eq!((w, h), (3, 1));
        assert_eq!(samples, vec![1, 0, 1]); // patched
        let li = read_spilled_label_image(&dir).unwrap();
        assert_eq!(li.num_components(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pgm16_overflow_is_reported() {
        let dir = temp_dir("overflow");
        let mut sink = SpillSink::create(&dir, SpillFormat::Pgm16).unwrap();
        let err = sink.tile(&meta(0, 0, 0, 0, 1, 1), &[70_000]).unwrap_err();
        assert!(matches!(err, TilesError::LabelOverflow { gid: 70_000, .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unpatched_spill_still_reconstructs() {
        // write tiles + manifest by hand without patching: the reader's
        // merge resolution alone must recover the partition
        let dir = temp_dir("unpatched");
        fs::create_dir_all(&dir).unwrap();
        let tiles = vec![meta(0, 0, 0, 0, 2, 1), meta(0, 1, 0, 2, 2, 1)];
        let manifest = SpillManifest {
            format: SpillFormat::RawU32,
            width: 4,
            rows: 1,
            tiles: tiles.clone(),
            merges: vec![(1, 2)],
        };
        write_manifest(&dir, &manifest).unwrap();
        let sink = SpillSink {
            dir: dir.clone(),
            format: SpillFormat::RawU32,
            tiles: Vec::new(),
            merges: Vec::new(),
        };
        sink.write_tile(&tiles[0], &[1, 1]).unwrap();
        sink.write_tile(&tiles[1], &[2, 2]).unwrap();
        let li = read_spilled_label_image(&dir).unwrap();
        assert_eq!(li.num_components(), 1);
        assert_eq!(li.as_slice(), &[1, 1, 1, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_garbage() {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&dir).is_err()); // missing file
        fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::write(
            dir.join(MANIFEST_NAME),
            format!("{MANIFEST_MAGIC}\nformat raw-u32\nwidth x\n"),
        )
        .unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_tiles_exceeding_declared_extent() {
        // a 4-wide tile in a declared 2x1 grid must be Err, not a panic
        // in the reader's blit
        let dir = temp_dir("oob");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(MANIFEST_NAME),
            format!(
                "{MANIFEST_MAGIC}\nformat raw-u32\nwidth 2\nrows 1\ntiles 1\n\
                 tile 0 0 0 0 4 1\nmerges 0\n"
            ),
        )
        .unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert!(matches!(err, TilesError::Manifest(_)), "{err}");
        assert!(read_spilled_label_image(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
