//! # ccl-tiles
//!
//! Out-of-core **2-D tile-grid** connected component labeling with
//! spill-to-disk label output — the second out-of-core stage of the
//! PAREMSP reproduction (Gupta et al., IPPS 2014), generalizing
//! `ccl-stream`'s 1-D row bands to a full tile grid.
//!
//! The strip labeler bounds memory by O(band) = O(image width × band
//! height). Tiles bound the *unit of work* by O(tile) instead: every tile
//! of the resident tile row is scanned independently (RemSP inside the
//! tile, PAREMSP across worker threads over the row), then connectivity
//! is restored along **both** seam orientations with the same
//! `merge_seam` machinery — strided columns for the vertical seams
//! between adjacent tiles, the carried boundary row for the horizontal
//! seam (Komura's generalized label-equivalence merge over an arbitrary
//! block decomposition). Label slots recycle after every tile row, keyed
//! to the components still open on the carry boundary, so arbitrarily
//! tall images label in at most **two tile rows** of resident memory.
//!
//! The crate pairs the bounded-memory *input* with bounded-memory
//! *output*: [`SpillSink`] spills each labeled tile to disk (raw
//! little-endian `u32` or 16-bit PGM) with a sidecar manifest carrying
//! the merge table, and patches final labels on close — so a gigapixel
//! labeling run never holds more than a tile row of pixels or labels.
//!
//! * [`TileSource`] / [`GridSource`] — pull-based tile rows windowed from
//!   any `ccl-stream` [`RowSource`](ccl_stream::RowSource): in-memory
//!   images, incremental Netpbm files, streamed generators;
//! * [`TileGridLabeler`] — the engine (see [`labeler`]);
//! * [`TileSink`] / [`CollectTiles`] / [`SpillSink`] — labeled-tile
//!   output, in memory or spilled ([`sink`]);
//! * [`analyze_tiles`] / [`label_tiles`] / [`tiles_to_label_image`] /
//!   [`spill_tiles`] — whole-stream drivers;
//! * the `*_pipelined` drivers — the same, with row *k + 1*'s tile scans
//!   overlapped against row *k*'s seam merge / accumulation / spill on a
//!   worker thread ([`pipeline`]): bit-identical output, at most two
//!   tile rows + the carry row resident.
//!
//! ## Example
//!
//! ```
//! use ccl_datasets::synth::stream::bernoulli_stream;
//! use ccl_tiles::{analyze_tiles, GridSource, TileGridConfig};
//!
//! // A 96 × 4096 noise raster in 32×32 tiles: the labeler never holds
//! // more than 33 pixel rows (one tile row + the carry row).
//! let source = bernoulli_stream(96, 4096, 0.4, 7);
//! let mut grid = GridSource::new(source, 32, 32);
//! let (components, stats) = analyze_tiles(&mut grid, TileGridConfig::default()).unwrap();
//! assert_eq!(stats.components as usize, components.len());
//! assert!(stats.peak_resident_rows <= 33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod error;
pub mod labeler;
pub mod pipeline;
pub mod sink;
pub mod source;

pub use driver::{
    analyze_tiles, analyze_tiles_pipelined, label_tiles, label_tiles_pipelined, spill_tiles,
    spill_tiles_pipelined, tiles_to_label_image, tiles_to_label_image_pipelined,
};
pub use error::TilesError;
pub use labeler::{TileGridConfig, TileGridLabeler, TileGridStats};
pub use sink::{
    read_manifest, read_spilled_label_image, temp_spill_dir, CollectTiles, SpillFormat,
    SpillManifest, SpillSink, TileMeta, TileSink,
};
pub use source::{GridSource, TileSource};
