//! Integration tests: tile-grid labeling is equivalent (up to label
//! renaming) to whole-image AREMSP across tile shapes, synthetic
//! generators and thread counts, while never holding more than one tile
//! row plus the carry row — and the spill-to-disk sink reconstructs the
//! exact partition from its tiles + sidecar merge table.

use proptest::prelude::*;

use ccl_core::seq::aremsp;
use ccl_core::verify::labelings_equivalent;
use ccl_datasets::synth::adversarial::{
    comb, fine_checkerboard, hstripes, serpentine, spiral, vstripes,
};
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_datasets::synth::shapes::{shape_scene, text_page};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_datasets::synth::texture::{checkerboard, grating, rings, stripes};
use ccl_image::BinaryImage;
use ccl_stream::ComponentRecord;
use ccl_tiles::{
    analyze_tiles, read_spilled_label_image, spill_tiles, temp_spill_dir, tiles_to_label_image,
    GridSource, SpillFormat, TileGridConfig,
};

/// One image per synthetic generator family (mirrors the `ccl-stream`
/// equivalence suite).
fn generator_image(idx: usize, w: usize, h: usize, seed: u64) -> BinaryImage {
    let params = BlobParams {
        coverage: 0.35,
        min_radius: 1,
        max_radius: 4,
    };
    let lc = LandcoverParams {
        base_scale: 6.0,
        octaves: 3,
        persistence: 0.5,
    };
    match idx {
        0 => bernoulli(w, h, 0.45, seed),
        1 => landcover(w, h, lc, seed),
        2 => blob_field(w, h, params, seed),
        3 => shape_scene(w, h, 1 + (seed % 7) as usize, seed),
        4 => text_page(w, h, 1, seed),
        5 => checkerboard(w, h, 1 + (seed % 3) as usize),
        6 => stripes(w, h, 5, 2, (1, 1)),
        7 => grating(w, h, 0.31, 0.17, 0.4),
        8 => rings(w, h, 4.0),
        9 => serpentine(w, h),
        10 => comb(w, h, h / 2),
        11 => fine_checkerboard(w, h),
        12 => hstripes(w, h),
        13 => vstripes(w, h),
        _ => spiral(w.max(3)),
    }
}

const NUM_GENERATORS: usize = 15;

/// Per-component features keyed by the raster-first anchor, including the
/// streamed perimeter and hole count; the whole-image side recomputes
/// everything brute force so the comparison is an independent oracle.
type Features = Vec<(
    (usize, usize),
    u64,
    (usize, usize, usize, usize),
    (f64, f64),
    u64,
    u64,
)>;

fn whole_image_features(img: &BinaryImage) -> Features {
    let labels = aremsp(img);
    let n = labels.num_components() as usize;
    let w = img.width();
    let mut area = vec![0u64; n + 1];
    let mut bbox = vec![(usize::MAX, usize::MAX, 0usize, 0usize); n + 1];
    let mut sums = vec![(0f64, 0f64); n + 1];
    let mut anchor = vec![(usize::MAX, usize::MAX); n + 1];
    let mut perimeter = vec![0u64; n + 1];
    for r in 0..img.height() {
        for c in 0..w {
            let l = labels.get(r, c) as usize;
            if l == 0 {
                continue;
            }
            area[l] += 1;
            let b = &mut bbox[l];
            b.0 = b.0.min(r);
            b.1 = b.1.min(c);
            b.2 = b.2.max(r);
            b.3 = b.3.max(c);
            sums[l].0 += r as f64;
            sums[l].1 += c as f64;
            if anchor[l] == (usize::MAX, usize::MAX) {
                anchor[l] = (r, c);
            }
            perimeter[l] += [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)]
                .iter()
                .filter(|&&(dr, dc)| img.get_or_bg(r as isize + dr, c as isize + dc) == 0)
                .count() as u64;
        }
    }
    // independent hole oracle: one-pass V − E + F census per component
    let holes = ccl_core::analysis::count_holes_per_label(&labels);
    let mut out: Features = (1..=n)
        .map(|l| {
            (
                anchor[l],
                area[l],
                bbox[l],
                (sums[l].0 / area[l] as f64, sums[l].1 / area[l] as f64),
                perimeter[l],
                holes[l - 1],
            )
        })
        .collect();
    out.sort_unstable_by_key(|f| f.0);
    out
}

fn record_features(records: &[ComponentRecord]) -> Features {
    let mut out: Features = records
        .iter()
        .map(|r| (r.anchor, r.area, r.bbox, r.centroid, r.perimeter, r.holes))
        .collect();
    out.sort_unstable_by_key(|f| f.0);
    out
}

fn tiled_features(img: &BinaryImage, tw: usize, th: usize, cfg: TileGridConfig) -> Features {
    let mut src = GridSource::from_image(img, tw, th);
    let (records, stats) = analyze_tiles(&mut src, cfg).unwrap();
    assert_eq!(stats.components as usize, records.len());
    assert!(stats.peak_resident_rows <= 2 * th);
    record_features(&records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tentpole acceptance: tile-grid analysis (count / area / bbox /
    /// centroid / perimeter) equals whole-image AREMSP + brute-force
    /// analysis, across tile shapes 1×1..=W×H and all generators.
    #[test]
    fn grid_analysis_matches_whole_image(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=18,
        h in 1usize..=18,
        tw in 1usize..=19,
        th in 1usize..=19,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let expected = whole_image_features(&img);
        let got = tiled_features(&img, tw, th, TileGridConfig::default());
        prop_assert_eq!(got, expected, "generator {} tiles {}x{}", gen, tw, th);
    }

    /// The in-row PAREMSP mode is output-identical to the sequential
    /// mode, for every merger and thread count.
    #[test]
    fn parallel_mode_matches_sequential(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        tw in 1usize..=9,
        th in 1usize..=9,
        threads in 2usize..=8,
        cas in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        use ccl_core::par::MergerKind;
        let img = generator_image(gen, w, h, seed);
        let cfg = TileGridConfig::parallel(threads)
            .with_merger(if cas { MergerKind::Cas } else { MergerKind::Locked });
        let seq = tiled_features(&img, tw, th, TileGridConfig::sequential());
        let par = tiled_features(&img, tw, th, cfg);
        prop_assert_eq!(par, seq, "generator {} threads {}", gen, threads);
    }

    /// Tentpole acceptance: the fused fold (per-tile partial
    /// accumulators merged at the seams) is bit-identical to the
    /// sequential per-pixel fold — records *and* stats — across
    /// generators, tile shapes, thread counts and the pipelined
    /// executor.
    #[test]
    fn fused_fold_bit_identical_to_sequential_fold(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        tw in 1usize..=9,
        th in 1usize..=9,
        threads in 1usize..=6,
        pipelined in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        use ccl_stream::FoldMode;
        use ccl_tiles::analyze_tiles_pipelined;
        let img = generator_image(gen, w, h, seed);
        let run = |fold: FoldMode| {
            let cfg = TileGridConfig::parallel(threads).with_fold(fold);
            let mut src = GridSource::from_image(&img, tw, th);
            if pipelined {
                analyze_tiles_pipelined(&mut src, cfg).unwrap()
            } else {
                analyze_tiles(&mut src, cfg).unwrap()
            }
        };
        let (seq_records, seq_stats) = run(FoldMode::Sequential);
        let (fused_records, fused_stats) = run(FoldMode::Fused);
        prop_assert_eq!(
            fused_records, seq_records,
            "generator {} tiles {}x{} threads {} pipelined {}", gen, tw, th, threads, pipelined
        );
        prop_assert_eq!(fused_stats, seq_stats);
    }

    /// Labeled-tile output reconciles into the exact whole-image
    /// partition.
    #[test]
    fn tile_labels_reconcile_to_aremsp_partition(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=14,
        h in 1usize..=14,
        tw in 1usize..=8,
        th in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut src = GridSource::from_image(&img, tw, th);
        let (li, stats) = tiles_to_label_image(&mut src, TileGridConfig::default()).unwrap();
        let reference = aremsp(&img);
        prop_assert_eq!(stats.components, reference.num_components() as u64);
        prop_assert!(labelings_equivalent(&li, &reference));
    }
}

/// Spill round-trip at moderate scale, both formats: the spilled tiles +
/// sidecar merge table reconstruct the exact partition.
#[test]
fn spilled_tiles_reconstruct_exact_partition() {
    let img = blob_field(
        120,
        90,
        BlobParams {
            coverage: 0.35,
            min_radius: 1,
            max_radius: 5,
        },
        21,
    );
    let reference = aremsp(&img);
    for (format, tag) in [(SpillFormat::RawU32, "raw"), (SpillFormat::Pgm16, "pgm")] {
        let dir = temp_spill_dir(tag);
        let mut src = GridSource::from_image(&img, 32, 16);
        let (manifest, stats) =
            spill_tiles(&mut src, TileGridConfig::default(), &dir, format).unwrap();
        assert_eq!(manifest.width, 120);
        assert_eq!(manifest.rows, 90);
        assert_eq!(stats.components, reference.num_components() as u64);
        let li = read_spilled_label_image(&dir).unwrap();
        assert!(labelings_equivalent(&li, &reference), "{tag}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Acceptance-criteria shape at CI-friendly scale: a generator-fed grid,
/// never materialized on input, spilled on output, reconstructing the
/// exact whole-image partition with ≤ 2 tile rows resident.
#[test]
fn streamed_grid_spills_and_reconstructs() {
    let (w, h, tile) = (256, 2048, 64);
    let dir = temp_spill_dir("it_streamed");
    let source = bernoulli_stream(w, h, 0.5, 99);
    let mut grid = GridSource::new(source, tile, tile);
    let (manifest, stats) = spill_tiles(
        &mut grid,
        TileGridConfig::default(),
        &dir,
        SpillFormat::RawU32,
    )
    .unwrap();
    assert_eq!(stats.rows, h);
    assert!(stats.peak_resident_rows <= 2 * tile);
    assert_eq!(manifest.tiles.len(), (w / tile) * (h / tile));

    let img = bernoulli(w, h, 0.5, 99);
    let reference = aremsp(&img);
    assert_eq!(stats.components, reference.num_components() as u64);
    let li = read_spilled_label_image(&dir).unwrap();
    assert!(labelings_equivalent(&li, &reference));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full acceptance run: a 12,288 × 8,192 grid (100.7 Mpixel) streamed
/// from a generator in 512×512 tiles — at most 2 tile rows (1,025 pixel
/// rows) resident — while the spill sink writes every labeled tile to
/// disk; the spilled tiles + sidecar merge table then reconstruct the
/// exact whole-image partition. A second pass runs the **pipelined**
/// executor (row *k + 1*'s scans overlapping row *k*'s merge + spill) and
/// must produce the identical spill while holding at most two tile rows
/// plus the carry row. Ignored by default (minutes in debug builds); run
/// with `cargo test --release -p ccl-tiles -- --ignored`.
#[test]
#[ignore = "100-Mpixel acceptance run; use cargo test --release -- --ignored"]
fn hundred_megapixel_grid_bounded_memory_and_spill() {
    let (w, h, tile) = (12_288usize, 8_192usize, 512usize);
    assert!(w * h >= 100_000_000, "acceptance demands >= 100 Mpixel");
    let dir = temp_spill_dir("it_gigascale");

    let source = bernoulli_stream(w, h, 0.5, 4242);
    let mut grid = GridSource::new(source, tile, tile);
    let (manifest, stats) = spill_tiles(
        &mut grid,
        TileGridConfig::default(),
        &dir,
        SpillFormat::RawU32,
    )
    .unwrap();
    assert_eq!(stats.rows, h);
    assert_eq!(stats.tiles, (w / tile) * (h / tile));
    assert!(
        stats.peak_resident_rows <= 2 * tile,
        "resident rows exceeded two tile rows"
    );
    assert_eq!(stats.peak_resident_rows, tile + 1);
    assert_eq!(manifest.tiles.len(), stats.tiles);

    let img = bernoulli(w, h, 0.5, 4242);
    let reference = aremsp(&img);
    assert_eq!(stats.components, reference.num_components() as u64);
    let li = read_spilled_label_image(&dir).unwrap();
    assert!(labelings_equivalent(&li, &reference));
    std::fs::remove_dir_all(&dir).unwrap();

    // The same run through the pipelined executor: identical output, and
    // the residency bound still holds — two tile rows (row k's labels
    // under merge/spill + row k+1 under scan) plus the carry row.
    let dir = temp_spill_dir("it_gigascale_pipelined");
    let source = bernoulli_stream(w, h, 0.5, 4242);
    let mut grid = GridSource::new(source, tile, tile);
    let (manifest, stats) = ccl_tiles::spill_tiles_pipelined(
        &mut grid,
        TileGridConfig::default(),
        &dir,
        SpillFormat::RawU32,
    )
    .unwrap();
    assert_eq!(stats.rows, h);
    assert!(
        stats.peak_resident_rows <= 2 * tile + 1,
        "pipelined resident rows exceeded two tile rows + carry"
    );
    assert_eq!(stats.peak_resident_rows, 2 * tile + 1);
    assert_eq!(stats.components, reference.num_components() as u64);
    assert_eq!(manifest.tiles.len(), stats.tiles);
    let li = read_spilled_label_image(&dir).unwrap();
    assert!(labelings_equivalent(&li, &reference));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Netpbm end to end: write a PGM, window-read it in tiles, label, and
/// match the whole-image pipeline (decode + im2bw + AREMSP).
#[test]
fn netpbm_window_reader_end_to_end() {
    let gray = ccl_image::GrayImage::from_fn(96, 70, |r, c| ((r * 13 + c * 7) % 256) as u8);
    let bytes = ccl_image::io::pgm::write_binary(&gray);
    let img = ccl_image::threshold::im2bw(&gray, 0.5);

    let mut src = GridSource::pgm(bytes.as_slice(), 0.5, 24, 16).unwrap();
    let (records, stats) = analyze_tiles(&mut src, TileGridConfig::default()).unwrap();
    assert_eq!(stats.rows, 70);
    assert!(stats.peak_resident_rows <= 17);
    assert_eq!(record_features(&records), whole_image_features(&img));
}
