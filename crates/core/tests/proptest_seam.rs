//! Property tests for the column/strided orientation of `merge_seam`:
//! merging a **vertical** seam between two side-by-side label buffers
//! with [`merge_seam_strided`] yields exactly the partition obtained by
//! transposing both buffers, merging the resulting **row** seam with the
//! original [`merge_seam`], and transposing back — i.e. the strided walk
//! really is the row seam on the transposed image.

use proptest::prelude::*;

use ccl_core::scan::{max_labels_two_line, merge_seam, merge_seam_strided, scan_two_line};
use ccl_image::BinaryImage;
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

/// Labels the left and right halves of `img` (split before column
/// `split`) independently into one shared store with disjoint label
/// ranges — the state both seam paths start from.
fn label_halves(img: &BinaryImage, split: usize) -> (Vec<u32>, Vec<u32>, RemSP, u32) {
    let (w, h) = (img.width(), img.height());
    let left = img.crop(0, 0, split, h);
    let right = img.crop(0, split, w - split, h);
    let mut store = RemSP::with_capacity(1 + max_labels_two_line(h, w));
    store.new_label(0);
    let mut left_labels = vec![0u32; left.len()];
    let next = scan_two_line(&left, 0..h, &mut left_labels, &mut store, 1);
    let mut right_labels = vec![0u32; right.len()];
    let next = scan_two_line(&right, 0..h, &mut right_labels, &mut store, next);
    (left_labels, right_labels, store, next)
}

/// Transposes a row-major `rows × cols` label buffer.
fn transpose(labels: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    let mut out = vec![0u32; labels.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = labels[r * cols + c];
        }
    }
    out
}

/// Canonical partition of labels `1..next`: each label mapped to its
/// set's representative.
fn partition(store: &mut RemSP, next: u32) -> Vec<u32> {
    (1..next).map(|l| store.find(l)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite acceptance: vertical seam merge ≡ transpose, row-merge,
    /// transpose back — for arbitrary split positions and densities.
    #[test]
    fn vertical_seam_equals_transposed_row_seam(
        w in 2usize..=16,
        h in 1usize..=16,
        split_frac in 1usize..=15,
        density in 0u64..=100,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let img = BinaryImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < density
        });
        let split = 1 + split_frac % (w - 1).max(1);
        let split = split.min(w - 1);

        // Path A: strided column seam directly on the two buffers.
        let (left, right, mut store_a, next) = label_halves(&img, split);
        let lw = split;
        let rw = w - split;
        merge_seam_strided(&left[lw - 1..], lw, &right, rw, h, &mut store_a);

        // Path B: transpose both halves; the left half's right column is
        // the last row of its transpose, the right half's left column the
        // first row of its transpose — a plain row seam.
        let (left_b, right_b, mut store_b, next_b) = label_halves(&img, split);
        prop_assert_eq!(next, next_b);
        let tl = transpose(&left_b, h, lw);
        let tr = transpose(&right_b, h, rw);
        merge_seam(&tl[(lw - 1) * h..], &tr[..h], &mut store_b);

        prop_assert_eq!(
            partition(&mut store_a, next),
            partition(&mut store_b, next),
            "split {} of width {}", split, w
        );
    }

    /// The seam-merged halves agree with labeling the unsplit image: the
    /// column seam restores exactly the connectivity the split severed.
    #[test]
    fn seamed_halves_match_whole_image_partition(
        w in 2usize..=14,
        h in 1usize..=14,
        split_frac in 1usize..=15,
        density in 20u64..=80,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let img = BinaryImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < density
        });
        let split = 1 + split_frac % (w - 1).max(1);
        let split = split.min(w - 1);

        let (left, right, mut store, _) = label_halves(&img, split);
        merge_seam_strided(&left[split - 1..], split, &right, w - split, h, &mut store);
        // resolve each pixel's label to its set representative
        let mut resolved = vec![0u32; w * h];
        for r in 0..h {
            for c in 0..w {
                let l = if c < split {
                    left[r * split + c]
                } else {
                    right[r * (w - split) + (c - split)]
                };
                resolved[r * w + c] = if l == 0 { 0 } else { store.find(l) };
            }
        }
        // reference: whole-image AREMSP
        let reference = ccl_core::seq::aremsp(&img);
        // same-partition check: bijection between resolved reps and
        // reference labels over foreground pixels
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (i, &l) in resolved.iter().enumerate() {
            let rl = reference.as_slice()[i];
            prop_assert_eq!(l == 0, rl == 0, "foreground mismatch at {}", i);
            if l != 0 {
                prop_assert_eq!(*fwd.entry(l).or_insert(rl), rl);
                prop_assert_eq!(*bwd.entry(rl).or_insert(l), l);
            }
        }
    }
}
