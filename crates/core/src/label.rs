//! [`LabelImage`] — the output of every labeling algorithm.

use ccl_image::BinaryImage;

/// A labeled image: background pixels hold 0, each connected component's
/// pixels hold the same label from `1..=num_components`.
///
/// All algorithms number components consecutively, but in one of two
/// orders (see [`crate::algorithm::Numbering`]): raster order of the
/// first pixel (decision-tree scans, run-based, multipass, flood fill)
/// or row-pair scan order (the two-line scans: ARUN, AREMSP, PAREMSP).
/// Outputs within one order compare with `==`; across orders, compare
/// [`LabelImage::canonicalized`] forms (or use
/// `ccl_core::verify::labelings_equivalent`).
#[derive(Clone, PartialEq, Eq)]
pub struct LabelImage {
    width: usize,
    height: usize,
    labels: Vec<u32>,
    num_components: u32,
}

impl LabelImage {
    /// Wraps a raw label buffer.
    ///
    /// # Panics
    /// Panics when `labels.len() != width * height` or when any label
    /// exceeds `num_components`.
    pub fn from_raw(width: usize, height: usize, labels: Vec<u32>, num_components: u32) -> Self {
        assert_eq!(labels.len(), width * height, "label buffer size mismatch");
        debug_assert!(
            labels.iter().all(|&l| l <= num_components),
            "label exceeds component count"
        );
        LabelImage {
            width,
            height,
            labels,
            num_components,
        }
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of connected components (labels run `1..=num_components`).
    #[inline]
    pub fn num_components(&self) -> u32 {
        self.num_components
    }

    /// Label at `(row, col)`; 0 is background.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u32 {
        debug_assert!(row < self.height && col < self.width);
        self.labels[row * self.width + col]
    }

    /// Read-only view of the row-major label buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }

    /// Consumes the image and returns the label buffer.
    pub fn into_raw(self) -> Vec<u32> {
        self.labels
    }

    /// Pixel count of every component, indexed by label
    /// (`sizes[0]` is the background pixel count).
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components as usize + 1];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Bounding box `(min_row, min_col, max_row, max_col)` of every
    /// component, indexed by `label - 1`. Inclusive coordinates.
    pub fn bounding_boxes(&self) -> Vec<(usize, usize, usize, usize)> {
        let mut boxes =
            vec![(usize::MAX, usize::MAX, 0usize, 0usize); self.num_components as usize];
        for r in 0..self.height {
            for c in 0..self.width {
                let l = self.labels[r * self.width + c];
                if l == 0 {
                    continue;
                }
                let b = &mut boxes[l as usize - 1];
                b.0 = b.0.min(r);
                b.1 = b.1.min(c);
                b.2 = b.2.max(r);
                b.3 = b.3.max(c);
            }
        }
        boxes
    }

    /// Centroid (mean row, mean col) of every component, indexed by
    /// `label - 1`.
    pub fn centroids(&self) -> Vec<(f64, f64)> {
        let n = self.num_components as usize;
        let mut sums = vec![(0f64, 0f64, 0usize); n];
        for r in 0..self.height {
            for c in 0..self.width {
                let l = self.labels[r * self.width + c];
                if l != 0 {
                    let s = &mut sums[l as usize - 1];
                    s.0 += r as f64;
                    s.1 += c as f64;
                    s.2 += 1;
                }
            }
        }
        sums.iter()
            .map(|&(sr, sc, n)| (sr / n as f64, sc / n as f64))
            .collect()
    }

    /// Label of the largest component (ties broken by smaller label);
    /// `None` when there are no components.
    pub fn largest_component(&self) -> Option<u32> {
        let sizes = self.component_sizes();
        (1..sizes.len())
            .max_by_key(|&l| (sizes[l], usize::MAX - l))
            .map(|l| l as u32)
    }

    /// Extracts the binary mask of one component.
    pub fn component_mask(&self, label: u32) -> BinaryImage {
        BinaryImage::from_fn(self.width, self.height, |r, c| self.get(r, c) == label)
    }

    /// The binary foreground (all labeled pixels).
    pub fn foreground_mask(&self) -> BinaryImage {
        BinaryImage::from_fn(self.width, self.height, |r, c| self.get(r, c) != 0)
    }

    /// Renumbers labels into the canonical order: consecutive `1..=k` by
    /// raster position of each component's first pixel. Two labelings
    /// denote the same partition iff their canonical forms are equal.
    pub fn canonicalized(&self) -> LabelImage {
        let mut remap = vec![0u32; self.num_components as usize + 1];
        let mut next = 0u32;
        let labels = self
            .labels
            .iter()
            .map(|&l| {
                if l == 0 {
                    0
                } else {
                    if remap[l as usize] == 0 {
                        next += 1;
                        remap[l as usize] = next;
                    }
                    remap[l as usize]
                }
            })
            .collect();
        LabelImage {
            width: self.width,
            height: self.height,
            labels,
            num_components: next,
        }
    }
}

impl std::fmt::Debug for LabelImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "LabelImage({}x{}, {} components)",
            self.width, self.height, self.num_components
        )?;
        let max_dim = 32;
        for r in 0..self.height.min(max_dim) {
            for c in 0..self.width.min(max_dim) {
                let l = self.get(r, c);
                if l == 0 {
                    f.write_str("  .")?;
                } else {
                    write!(f, "{l:>3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabelImage {
        // 1 1 0 2
        // 0 1 0 2
        // 3 0 0 2
        LabelImage::from_raw(4, 3, vec![1, 1, 0, 2, 0, 1, 0, 2, 3, 0, 0, 2], 3)
    }

    #[test]
    fn accessors() {
        let li = sample();
        assert_eq!(li.get(0, 0), 1);
        assert_eq!(li.get(2, 3), 2);
        assert_eq!(li.get(2, 1), 0);
        assert_eq!(li.num_components(), 3);
    }

    #[test]
    fn component_sizes_count_pixels() {
        let sizes = sample().component_sizes();
        assert_eq!(sizes, vec![5, 3, 3, 1]);
    }

    #[test]
    fn bounding_boxes_are_tight() {
        let boxes = sample().bounding_boxes();
        assert_eq!(boxes[0], (0, 0, 1, 1)); // label 1
        assert_eq!(boxes[1], (0, 3, 2, 3)); // label 2
        assert_eq!(boxes[2], (2, 0, 2, 0)); // label 3
    }

    #[test]
    fn centroids_average_coordinates() {
        let c = sample().centroids();
        assert!((c[2].0 - 2.0).abs() < 1e-12);
        assert!((c[2].1 - 0.0).abs() < 1e-12);
        assert!((c[1].0 - 1.0).abs() < 1e-12);
        assert!((c[1].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn largest_component_prefers_smaller_label_on_tie() {
        let li = sample();
        // labels 1 and 2 both have 3 pixels; tie goes to label 1
        assert_eq!(li.largest_component(), Some(1));
        let empty = LabelImage::from_raw(2, 2, vec![0; 4], 0);
        assert_eq!(empty.largest_component(), None);
    }

    #[test]
    fn masks_round_trip() {
        let li = sample();
        let m2 = li.component_mask(2);
        assert_eq!(m2.count_foreground(), 3);
        assert_eq!(m2.get(0, 3), 1);
        let fg = li.foreground_mask();
        assert_eq!(fg.count_foreground(), 7);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_checks_size() {
        LabelImage::from_raw(2, 2, vec![0; 3], 0);
    }

    #[test]
    fn canonicalized_renumbers_by_raster_first_pixel() {
        // labels 2 and 1 appear in swapped raster order
        let li = LabelImage::from_raw(3, 1, vec![2, 0, 1], 2);
        let canon = li.canonicalized();
        assert_eq!(canon.as_slice(), &[1, 0, 2]);
        assert_eq!(canon.num_components(), 2);
        // idempotent
        assert_eq!(canon.canonicalized(), canon);
    }

    #[test]
    fn canonicalized_preserves_partition() {
        let li = sample();
        let canon = li.canonicalized();
        assert_eq!(canon, li); // sample is already canonical
        assert_eq!(canon.component_sizes(), li.component_sizes());
    }
}
