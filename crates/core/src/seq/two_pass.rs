//! The four two-pass algorithms of the paper, as scan × union-find
//! combinations (Algorithms 1 and 5).
//!
//! Each driver runs three phases on the whole image:
//!
//! 1. **Scan** — provisional labels + equivalence recording,
//! 2. **Analysis** — FLATTEN (Algorithm 3) via [`UnionFind::flatten`],
//! 3. **Labeling** — `label(e) ← p[label(e)]` for every pixel.

use ccl_image::BinaryImage;
use ccl_unionfind::{Compression, HeEquivalence, RankUF, RemSP, UnionFind};

use crate::label::LabelImage;
use crate::scan::{
    max_labels_decision_tree, max_labels_two_line, scan_decision_tree, scan_two_line,
};

/// Which first-pass strategy a two-pass run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// One line at a time with the Fig. 2 decision tree (Algorithm 4).
    DecisionTree,
    /// Two lines / two pixels at a time (Algorithm 6).
    TwoLine,
}

impl ScanStrategy {
    /// Upper bound on provisional labels for an `rows × cols` image.
    pub fn max_labels(self, rows: usize, cols: usize) -> usize {
        match self {
            ScanStrategy::DecisionTree => max_labels_decision_tree(rows, cols),
            ScanStrategy::TwoLine => max_labels_two_line(rows, cols),
        }
    }
}

/// Generic two-pass driver: any scan strategy with any union-find backend.
/// This is the paper's Algorithm 1/5 skeleton; the four named algorithms
/// below are instantiations.
pub fn two_pass_with<U: UnionFind>(image: &BinaryImage, scan: ScanStrategy) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let mut labels = vec![0u32; w * h];
    let mut store = U::with_capacity(1 + scan.max_labels(h, w));
    store.new_label(0); // reserved background
    match scan {
        ScanStrategy::DecisionTree => {
            scan_decision_tree(image, 0..h, &mut labels, &mut store, 1);
        }
        ScanStrategy::TwoLine => {
            scan_two_line(image, 0..h, &mut labels, &mut store, 1);
        }
    }
    let num_components = store.flatten();
    for l in &mut labels {
        *l = store.resolve(*l);
    }
    LabelImage::from_raw(w, h, labels, num_components)
}

/// CCLLRPC (Wu–Otoo–Suzuki, the paper's ref \[36\]): decision-tree scan +
/// link-by-rank with path compression.
pub fn ccllrpc(image: &BinaryImage) -> LabelImage {
    // RankUF's default compression is Full — exactly LRPC.
    debug_assert_eq!(RankUF::new().compression(), Compression::Full);
    two_pass_with::<RankUF>(image, ScanStrategy::DecisionTree)
}

/// CCLREMSP (this paper, §III-A): decision-tree scan + RemSP.
pub fn cclremsp(image: &BinaryImage) -> LabelImage {
    two_pass_with::<RemSP>(image, ScanStrategy::DecisionTree)
}

/// ARUN (He–Chao–Suzuki, the paper's ref \[37\]): two-line scan + the
/// `rtable`/`next`/`tail` equivalence structure.
pub fn arun(image: &BinaryImage) -> LabelImage {
    two_pass_with::<HeEquivalence>(image, ScanStrategy::TwoLine)
}

/// AREMSP (this paper, §III-B): two-line scan + RemSP — the paper's best
/// sequential algorithm and the basis of PAREMSP.
///
/// ```
/// use ccl_core::seq::aremsp;
/// use ccl_image::BinaryImage;
///
/// let img = BinaryImage::parse("#.# .#. #.#");
/// let labels = aremsp(&img);
/// assert_eq!(labels.num_components(), 1); // an 8-connected X
/// assert_eq!(labels.get(1, 1), 1);
/// ```
pub fn aremsp(image: &BinaryImage) -> LabelImage {
    two_pass_with::<RemSP>(image, ScanStrategy::TwoLine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_four(img: &BinaryImage) -> [LabelImage; 4] {
        [ccllrpc(img), cclremsp(img), arun(img), aremsp(img)]
    }

    #[test]
    fn all_algorithms_identical_on_fixtures() {
        let fixtures = [
            "....",
            "####",
            "#.#. .#.# #.#.",
            "##.. ##.. ..## ..##",
            "#.# #.# ###",
            ".#. #.# .#.",
            "#...# .#.#. ..#.. .#.#. #...#",
        ];
        for pic in fixtures {
            let img = BinaryImage::parse(pic);
            let [a, b, c, d] = all_four(&img);
            // same scan strategy => bit-identical output
            assert_eq!(a, b, "{pic}: decision-tree group");
            assert_eq!(c, d, "{pic}: two-line group");
            // across scan strategies the numbering order may differ, the
            // partition may not
            assert_eq!(b.canonicalized(), c.canonicalized(), "{pic}: cross-group");
        }
    }

    #[test]
    fn component_counts() {
        let img = BinaryImage::parse(
            "##.#
             ##..
             ...#",
        );
        // {(0,0),(0,1),(1,0),(1,1)}, {(0,3)} and (2,3) joins (0,3)? No:
        // (0,3) and (2,3) are two rows apart -> separate. But (1, ...)
        // nothing. Components: big square, (0,3), (2,3) = 3.
        let li = aremsp(&img);
        assert_eq!(li.num_components(), 3);
        assert_eq!(li.get(0, 0), 1);
        assert_eq!(li.get(0, 3), 2);
        assert_eq!(li.get(2, 3), 3);
    }

    #[test]
    fn labels_are_raster_ordered_and_consecutive() {
        let img = BinaryImage::parse(
            "..#..
             .....
             #...#",
        );
        let li = cclremsp(&img);
        assert_eq!(li.num_components(), 3);
        assert_eq!(li.get(0, 2), 1);
        assert_eq!(li.get(2, 0), 2);
        assert_eq!(li.get(2, 4), 3);
    }

    #[test]
    fn spiral_single_component() {
        let img = BinaryImage::parse(
            "#######
             ......#
             #####.#
             #...#.#
             #.###.#
             #.....#
             #######",
        );
        for li in all_four(&img) {
            assert_eq!(li.num_components(), 1);
        }
    }

    #[test]
    fn empty_and_degenerate_images() {
        for img in [
            BinaryImage::zeros(0, 0),
            BinaryImage::zeros(5, 0),
            BinaryImage::zeros(0, 5),
            BinaryImage::ones(1, 1),
        ] {
            for li in all_four(&img) {
                assert_eq!(li.num_components(), img.count_foreground().min(1) as u32);
            }
        }
    }

    #[test]
    fn single_row_and_single_column() {
        let row = BinaryImage::parse("##.##.#");
        for li in all_four(&row) {
            assert_eq!(li.num_components(), 3);
        }
        let col = row.transposed();
        for li in all_four(&col) {
            assert_eq!(li.num_components(), 3);
        }
    }

    #[test]
    fn generic_driver_accepts_other_backends() {
        use ccl_unionfind::{MinUF, SizeUF};
        let img = BinaryImage::parse("#.# ### #.#");
        let reference = aremsp(&img);
        assert_eq!(
            two_pass_with::<MinUF>(&img, ScanStrategy::TwoLine),
            reference
        );
        assert_eq!(
            two_pass_with::<SizeUF>(&img, ScanStrategy::TwoLine),
            reference
        );
        assert_eq!(
            two_pass_with::<HeEquivalence>(&img, ScanStrategy::DecisionTree),
            reference
        );
    }
}
