//! Repeated-pass labeling — the classic multi-pass baseline (the paper's
//! refs \[11\], \[12\]: Haralick; Hashizume et al.).
//!
//! Alternating forward and backward raster passes propagate the minimum
//! label across each component until a fixed point. No equivalence
//! structure at all — the price is a pass count proportional to the
//! longest label-propagation chain (spirals are pathological, which the
//! ablation benches demonstrate). Kept as a baseline and oracle;
//! Suzuki's 1-D table acceleration of this family is what two-pass
//! algorithms made obsolete.

use ccl_image::BinaryImage;

use crate::label::LabelImage;

/// Repeated forward/backward passes until stable (8-connectivity).
pub fn multipass(image: &BinaryImage) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let mut labels = vec![0u32; w * h];
    // initial labels: raster index + 1 (component minima end up in
    // raster-first-pixel order, matching the two-pass algorithms)
    for r in 0..h {
        for c in 0..w {
            if image.get(r, c) == 1 {
                labels[r * w + c] = (r * w + c + 1) as u32;
            }
        }
    }
    if w == 0 || h == 0 {
        return LabelImage::from_raw(w, h, labels, 0);
    }
    let mut changed = true;
    while changed {
        changed = false;
        // forward pass: prior mask (a b c / d) plus self
        for r in 0..h {
            for c in 0..w {
                let i = r * w + c;
                if labels[i] == 0 {
                    continue;
                }
                let mut m = labels[i];
                if r > 0 {
                    let up = (r - 1) * w + c;
                    if c > 0 && labels[up - 1] != 0 {
                        m = m.min(labels[up - 1]);
                    }
                    if labels[up] != 0 {
                        m = m.min(labels[up]);
                    }
                    if c + 1 < w && labels[up + 1] != 0 {
                        m = m.min(labels[up + 1]);
                    }
                }
                if c > 0 && labels[i - 1] != 0 {
                    m = m.min(labels[i - 1]);
                }
                if m != labels[i] {
                    labels[i] = m;
                    changed = true;
                }
            }
        }
        // backward pass: subsequent mask plus self
        for r in (0..h).rev() {
            for c in (0..w).rev() {
                let i = r * w + c;
                if labels[i] == 0 {
                    continue;
                }
                let mut m = labels[i];
                if r + 1 < h {
                    let down = (r + 1) * w + c;
                    if c > 0 && labels[down - 1] != 0 {
                        m = m.min(labels[down - 1]);
                    }
                    if labels[down] != 0 {
                        m = m.min(labels[down]);
                    }
                    if c + 1 < w && labels[down + 1] != 0 {
                        m = m.min(labels[down + 1]);
                    }
                }
                if c + 1 < w && labels[i + 1] != 0 {
                    m = m.min(labels[i + 1]);
                }
                if m != labels[i] {
                    labels[i] = m;
                    changed = true;
                }
            }
        }
    }
    // consecutive renumbering in raster order of first occurrence
    let mut remap = std::collections::HashMap::new();
    let mut next = 0u32;
    for l in &mut labels {
        if *l != 0 {
            *l = *remap.entry(*l).or_insert_with(|| {
                next += 1;
                next
            });
        }
    }
    LabelImage::from_raw(w, h, labels, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::flood_fill_label;

    #[test]
    fn matches_flood_fill_on_fixtures() {
        for pic in [
            "#.#. .#.# #.#.",
            "##### #...# #.#.# #...# #####",
            "#######
             ......#
             #####.#
             #...#.#
             #.###.#
             #.....#
             #######",
        ] {
            let img = BinaryImage::parse(pic);
            assert_eq!(multipass(&img), flood_fill_label(&img), "{pic}");
        }
    }

    #[test]
    fn empty_image() {
        assert_eq!(multipass(&BinaryImage::zeros(4, 0)).num_components(), 0);
        assert_eq!(multipass(&BinaryImage::zeros(3, 3)).num_components(), 0);
    }

    #[test]
    fn serpentine_converges() {
        // worst-case propagation: a snake across many rows
        let w = 11;
        let h = 9;
        let img = BinaryImage::from_fn(w, h, |r, c| {
            if r % 2 == 0 {
                true
            } else {
                // connectors alternate sides
                (r / 2) % 2 == 0 && c == w - 1 || (r / 2) % 2 == 1 && c == 0
            }
        });
        let li = multipass(&img);
        assert_eq!(li.num_components(), 1);
        assert_eq!(li, flood_fill_label(&img));
    }
}
