//! Sequential labeling algorithms (§III of the paper) plus reference
//! baselines.

pub mod contour;
pub mod flood;
pub mod four_conn;
pub mod grayscale;
pub mod multipass;
pub mod run_based;
pub mod two_pass;

pub use contour::contour_label;
pub use flood::{flood_fill_label, flood_fill_label_with};
pub use four_conn::label_four_connectivity;
pub use grayscale::{flood_fill_grayscale, label_grayscale};
pub use multipass::multipass;
pub use run_based::run_based;
pub use two_pass::{aremsp, arun, ccllrpc, cclremsp, two_pass_with, ScanStrategy};
