//! Contour-tracing labeling — Chang, Chen & Lu's linear-time technique
//! (the paper's ref \[4\]), an additional baseline from a different
//! algorithm family: instead of recording label equivalences, it traces
//! each component's external and internal contours when their first
//! pixels are met in raster order, then fills interior pixels from their
//! left neighbours in the same single scan.
//!
//! Mechanics: Moore-neighbourhood tracing over directions indexed
//! clockwise from east (0 = E, 1 = SE, …, 7 = NE). The tracer marks every
//! probed background pixel as *visited* so an internal contour is traced
//! exactly once (the visited marks are what replace the union-find).

use ccl_image::BinaryImage;

use crate::label::LabelImage;

/// Clockwise direction offsets starting east.
const DIRS: [(isize, isize); 8] = [
    (0, 1),
    (1, 1),
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, -1),
    (-1, 0),
    (-1, 1),
];

struct Tracing<'a> {
    image: &'a BinaryImage,
    labels: Vec<u32>,
    /// visited marks for background pixels probed by the tracer
    marks: Vec<bool>,
    w: usize,
    h: usize,
}

impl Tracing<'_> {
    #[inline]
    fn fg(&self, r: isize, c: isize) -> bool {
        r >= 0
            && c >= 0
            && (r as usize) < self.h
            && (c as usize) < self.w
            && self.image.get(r as usize, c as usize) == 1
    }

    /// Finds the next contour point clockwise from `start_dir`, marking
    /// probed background cells. `None` for isolated pixels.
    fn tracer(&mut self, r: usize, c: usize, start_dir: u8) -> Option<(usize, usize, u8)> {
        for i in 0..8u8 {
            let d = (start_dir + i) % 8;
            let (dr, dc) = DIRS[d as usize];
            let (nr, nc) = (r as isize + dr, c as isize + dc);
            if self.fg(nr, nc) {
                return Some((nr as usize, nc as usize, d));
            }
            if nr >= 0 && nc >= 0 && (nr as usize) < self.h && (nc as usize) < self.w {
                self.marks[nr as usize * self.w + nc as usize] = true;
            }
        }
        None
    }

    /// Traces a full contour starting at `(r, c)`; `external` selects the
    /// initial search direction (7 = NE for external, 3 = SW for
    /// internal, per Chang et al.).
    fn trace_contour(&mut self, r: usize, c: usize, label: u32, external: bool) {
        self.labels[r * self.w + c] = label;
        let start_dir = if external { 7 } else { 3 };
        let Some((sr, sc, sd)) = self.tracer(r, c, start_dir) else {
            return; // isolated pixel
        };
        // `second` is the first step away from the start; the contour is
        // complete when we are back at the start about to re-enter it.
        let (second_r, second_c) = (sr, sc);
        let (mut cur_r, mut cur_c, mut dir) = (sr, sc, sd);
        loop {
            self.labels[cur_r * self.w + cur_c] = label;
            // resume the search two steps back from the arrival direction
            let next_start = (dir + 6) % 8;
            let (nr, nc, nd) = self
                .tracer(cur_r, cur_c, next_start)
                .expect("non-isolated contour always has a successor");
            if (cur_r, cur_c) == (r, c) && (nr, nc) == (second_r, second_c) {
                break;
            }
            cur_r = nr;
            cur_c = nc;
            dir = nd;
        }
    }
}

/// Contour-tracing labeling (8-connectivity, raster numbering).
pub fn contour_label(image: &BinaryImage) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let mut t = Tracing {
        image,
        labels: vec![0u32; w * h],
        marks: vec![false; w * h],
        w,
        h,
    };
    let mut next = 0u32;
    for r in 0..h {
        for c in 0..w {
            if image.get(r, c) == 0 {
                continue;
            }
            let i = r * w + c;
            // external contour: unlabeled pixel with background above is
            // necessarily its component's first pixel in raster order
            if t.labels[i] == 0 && !t.fg(r as isize - 1, c as isize) {
                next += 1;
                t.trace_contour(r, c, next, true);
            }
            // internal contour: background below, not yet visited by any
            // tracer => an untraced hole starts here
            if r + 1 < h && image.get(r + 1, c) == 0 && !t.marks[i + w] {
                if t.labels[i] == 0 {
                    // interior pixel adjacent to the hole: label flows
                    // from the left neighbour
                    t.labels[i] = t.labels[i - 1];
                }
                let label = t.labels[i];
                t.trace_contour(r, c, label, false);
            }
            // interior pixel: copy the left neighbour
            if t.labels[i] == 0 {
                t.labels[i] = t.labels[i - 1];
            }
        }
    }
    LabelImage::from_raw(w, h, t.labels, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::flood_fill_label;

    #[test]
    fn simple_shapes() {
        for pic in [
            "#",
            "##",
            "#.#",
            "###
             #.#
             ###",
            "####
             #..#
             ####",
            ".#.
             #.#
             .#.",
        ] {
            let img = BinaryImage::parse(pic);
            assert_eq!(contour_label(&img), flood_fill_label(&img), "{pic}");
        }
    }

    #[test]
    fn nested_holes() {
        let img = BinaryImage::parse(
            "#########
             #.......#
             #.#####.#
             #.#...#.#
             #.#.#.#.#
             #.#...#.#
             #.#####.#
             #.......#
             #########",
        );
        let li = contour_label(&img);
        assert_eq!(li, flood_fill_label(&img));
        assert_eq!(li.num_components(), 3);
    }

    #[test]
    fn exhaustive_4x4() {
        for bits in 0..(1u32 << 16) {
            let img = BinaryImage::from_fn(4, 4, |r, c| (bits >> (r * 4 + c)) & 1 == 1);
            assert_eq!(
                contour_label(&img),
                flood_fill_label(&img),
                "bits {bits:#x}\n{img:?}"
            );
        }
    }

    #[test]
    fn exhaustive_3x5_and_5x3() {
        for bits in 0..(1u32 << 15) {
            for (w, h) in [(3, 5), (5, 3)] {
                let img = BinaryImage::from_fn(w, h, |r, c| (bits >> (r * w + c)) & 1 == 1);
                assert_eq!(
                    contour_label(&img),
                    flood_fill_label(&img),
                    "{w}x{h} bits {bits:#x}\n{img:?}"
                );
            }
        }
    }

    #[test]
    fn spiral_single_component() {
        // long winding contour
        let mut img = BinaryImage::zeros(9, 9);
        for c in 0..9 {
            img.set(0, c, true);
            img.set(8, c, true);
        }
        for r in 0..9 {
            img.set(r, 8, true);
        }
        for r in 2..9 {
            img.set(r, 0, true);
        }
        assert_eq!(contour_label(&img), flood_fill_label(&img));
    }

    #[test]
    fn empty_image() {
        assert_eq!(contour_label(&BinaryImage::zeros(5, 5)).num_components(), 0);
    }
}
