//! Run-based two-scan labeling — He, Chao & Suzuki's RUN algorithm (the
//! paper's ref \[43\]), an additional baseline mentioned in §II.
//!
//! The first scan assigns one provisional label per *run* (maximal
//! horizontal segment of foreground pixels) and merges a run's label with
//! every 8-connected run on the previous row; the structure of choice is
//! He's `rtable`/`next`/`tail` equivalence table, as in the original.
//! The second scan paints pixels run by run — far fewer label writes than
//! per-pixel algorithms when runs are long.

use ccl_image::{BinaryImage, RunImage};
use ccl_unionfind::{EquivalenceStore, HeEquivalence, UnionFind};

use crate::label::LabelImage;

/// Run-based two-scan labeling (8-connectivity).
pub fn run_based(image: &BinaryImage) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let runs = RunImage::from_binary(image);
    let n_runs = runs.run_count();
    // one provisional label per run, plus background
    let mut store = HeEquivalence::with_capacity(n_runs + 1);
    store.new_label(0);
    let mut run_labels = vec![0u32; n_runs];
    let mut next = 1u32;
    for r in 0..h {
        let cur = runs.row_run_range(r);
        let prev = if r > 0 {
            runs.row_run_range(r - 1)
        } else {
            0..0
        };
        let mut pi = prev.start;
        for ri in cur.clone() {
            let run = runs.runs()[ri];
            let mut label = 0u32;
            // advance past previous-row runs that end left of our reach
            let mut scan = pi;
            while scan < prev.end {
                let prun = runs.runs()[scan];
                if prun.end < run.start {
                    // cannot touch this or any later current run start
                    scan += 1;
                    if scan > pi {
                        pi = scan;
                    }
                    continue;
                }
                if prun.start > run.end {
                    break; // past our reach (8-conn widens by one)
                }
                if run.touches_8(&prun) {
                    let plabel = run_labels[scan];
                    if label == 0 {
                        label = plabel;
                    } else {
                        label = store.merge(label, plabel);
                    }
                }
                scan += 1;
            }
            if label == 0 {
                store.new_label(next);
                label = next;
                next += 1;
            }
            run_labels[ri] = label;
        }
    }
    let num_components = store.flatten();
    // second scan: paint runs
    let mut labels = vec![0u32; w * h];
    for (ri, run) in runs.runs().iter().enumerate() {
        let final_label = store.resolve(run_labels[ri]);
        let base = run.row * w;
        for c in run.start..run.end {
            labels[base + c] = final_label;
        }
    }
    LabelImage::from_raw(w, h, labels, num_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{aremsp, flood_fill_label};

    #[test]
    fn simple_fixtures_match_flood_fill() {
        for pic in [
            "....",
            "####",
            "#.#. .#.# #.#.",
            "#..# .##. #..#",
            "##### #...# #.#.# #...# #####",
        ] {
            let img = BinaryImage::parse(pic);
            assert_eq!(run_based(&img), flood_fill_label(&img), "{pic}");
        }
    }

    #[test]
    fn long_runs_single_component() {
        let img = BinaryImage::ones(100, 3);
        let li = run_based(&img);
        assert_eq!(li.num_components(), 1);
        assert!(li.as_slice().iter().all(|&l| l == 1));
    }

    #[test]
    fn touching_via_diagonal_only() {
        let img = BinaryImage::parse(
            "##..
             ..##",
        );
        assert_eq!(run_based(&img).num_components(), 1);
        let gap = BinaryImage::parse(
            "##...
             ...##",
        );
        assert_eq!(run_based(&gap).num_components(), 2);
    }

    #[test]
    fn multiple_parents_merge() {
        // bottom run touches three separate top runs
        let img = BinaryImage::parse(
            "#.#.#
             #####",
        );
        let li = run_based(&img);
        assert_eq!(li.num_components(), 1);
    }

    #[test]
    fn matches_flood_and_aremsp_on_pseudorandom() {
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 41) & 1 == 1
        };
        for trial in 0..25 {
            let w = 4 + trial % 9;
            let h = 3 + trial % 6;
            let img = BinaryImage::from_fn(w, h, |_, _| rnd());
            // run-based labels runs row by row: raster numbering, exactly
            // like flood fill
            assert_eq!(run_based(&img), flood_fill_label(&img), "trial {trial}");
            // same partition as the two-line scan, up to numbering
            assert_eq!(
                run_based(&img).canonicalized(),
                aremsp(&img).canonicalized(),
                "trial {trial}"
            );
        }
    }
}
