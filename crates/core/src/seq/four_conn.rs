//! 4-connectivity two-pass labeling.
//!
//! The paper uses 8-connectedness exclusively; 4-connectivity is the
//! other standard definition (§III) and completes the library. The prior
//! mask shrinks to `b` (above) and `d` (left), so the decision tree
//! degenerates to three cases — copy `b` (merging `d` when both
//! present), copy `d`, or a fresh label.

use ccl_image::BinaryImage;
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

use crate::label::LabelImage;

/// Two-pass labeling under 4-connectivity (RemSP equivalences, raster
/// numbering).
pub fn label_four_connectivity(image: &BinaryImage) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let mut labels = vec![0u32; w * h];
    // 4-connectivity worst case: ceil of half the pixels per row twice…
    // an isolated-pixel grid achieves ceil(w/2)*ceil(h/2); adjacent-column
    // creation is blocked by `d`, so each row creates at most ceil(w/2).
    let mut store = RemSP::with_capacity(h * w.div_ceil(2) + 1);
    store.new_label(0);
    let mut next = 1u32;
    for r in 0..h {
        let row = image.row(r);
        for (c, &px) in row.iter().enumerate() {
            if px == 0 {
                continue;
            }
            let i = r * w + c;
            let lb = if r > 0 { labels[i - w] } else { 0 };
            let ld = if c > 0 { labels[i - 1] } else { 0 };
            let lab = match (lb, ld) {
                (0, 0) => {
                    store.new_label(next);
                    next += 1;
                    next - 1
                }
                (b, 0) => b,
                (0, d) => d,
                (b, d) => store.merge(b, d),
            };
            labels[i] = lab;
        }
    }
    let num_components = store.flatten();
    for l in &mut labels {
        *l = store.resolve(*l);
    }
    LabelImage::from_raw(w, h, labels, num_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::flood::flood_fill_label_with;
    use ccl_image::Connectivity;

    #[test]
    fn diagonals_do_not_connect() {
        let img = BinaryImage::parse(
            "#.
             .#",
        );
        assert_eq!(label_four_connectivity(&img).num_components(), 2);
    }

    #[test]
    fn cross_is_one_component() {
        let img = BinaryImage::parse(
            ".#.
             ###
             .#.",
        );
        let li = label_four_connectivity(&img);
        assert_eq!(li.num_components(), 1);
    }

    #[test]
    fn u_shape_merge() {
        let img = BinaryImage::parse(
            "#.#
             #.#
             ###",
        );
        assert_eq!(label_four_connectivity(&img).num_components(), 1);
    }

    #[test]
    fn matches_flood_oracle_exhaustively_3x4() {
        for bits in 0..(1u32 << 12) {
            let img = BinaryImage::from_fn(3, 4, |r, c| (bits >> (r * 3 + c)) & 1 == 1);
            assert_eq!(
                label_four_connectivity(&img),
                flood_fill_label_with(&img, Connectivity::Four),
                "bits {bits:#x}"
            );
        }
    }

    #[test]
    fn checkerboard_is_all_singletons() {
        let img = BinaryImage::from_fn(8, 8, |r, c| (r + c) % 2 == 0);
        assert_eq!(label_four_connectivity(&img).num_components(), 32);
    }

    #[test]
    fn never_fewer_components_than_eight_conn() {
        let mut state = 3u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) & 1 == 1
        };
        for _ in 0..20 {
            let img = BinaryImage::from_fn(12, 10, |_, _| rnd());
            let four = label_four_connectivity(&img).num_components();
            let eight = crate::seq::aremsp(&img).num_components();
            assert!(four >= eight);
        }
    }
}
