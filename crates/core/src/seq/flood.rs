//! BFS flood-fill labeling — the ground-truth oracle.
//!
//! One-component-at-a-time labeling with an explicit queue: simple enough
//! to be obviously correct, which is what every other algorithm in this
//! crate is tested against. Components are numbered in raster order of
//! their first pixel — the canonical numbering, so `flood_fill_label(img)`
//! equals `labels.canonicalized()` for any correct labeling of `img`.

use std::collections::VecDeque;

use ccl_image::{BinaryImage, Connectivity};

use crate::label::LabelImage;

/// Flood-fill labeling with 8-connectivity (the paper's setting).
pub fn flood_fill_label(image: &BinaryImage) -> LabelImage {
    flood_fill_label_with(image, Connectivity::Eight)
}

/// Flood-fill labeling with the given connectivity.
pub fn flood_fill_label_with(image: &BinaryImage, conn: Connectivity) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    let mut labels = vec![0u32; w * h];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    let offsets = conn.offsets();
    for r in 0..h {
        for c in 0..w {
            if image.get(r, c) == 0 || labels[r * w + c] != 0 {
                continue;
            }
            next += 1;
            labels[r * w + c] = next;
            queue.push_back((r, c));
            while let Some((qr, qc)) = queue.pop_front() {
                for &(dr, dc) in offsets {
                    let nr = qr as isize + dr;
                    let nc = qc as isize + dc;
                    if nr < 0 || nc < 0 || nr as usize >= h || nc as usize >= w {
                        continue;
                    }
                    let (nr, nc) = (nr as usize, nc as usize);
                    if image.get(nr, nc) == 1 && labels[nr * w + nc] == 0 {
                        labels[nr * w + nc] = next;
                        queue.push_back((nr, nc));
                    }
                }
            }
        }
    }
    LabelImage::from_raw(w, h, labels, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_vs_four_connectivity_differ_on_diagonals() {
        let img = BinaryImage::parse(
            "#.
             .#",
        );
        assert_eq!(
            flood_fill_label_with(&img, Connectivity::Eight).num_components(),
            1
        );
        assert_eq!(
            flood_fill_label_with(&img, Connectivity::Four).num_components(),
            2
        );
    }

    #[test]
    fn raster_order_numbering() {
        let img = BinaryImage::parse(
            "..#
             #..
             ..#",
        );
        let li = flood_fill_label(&img);
        assert_eq!(li.get(0, 2), 1);
        assert_eq!(li.get(1, 0), 2);
        assert_eq!(li.get(2, 2), 3);
    }

    #[test]
    fn ring_is_one_component() {
        let img = BinaryImage::parse(
            "####
             #..#
             ####",
        );
        assert_eq!(flood_fill_label(&img).num_components(), 1);
    }

    #[test]
    fn checkerboard_eight_is_single_component() {
        let img = BinaryImage::from_fn(6, 6, |r, c| (r + c) % 2 == 0);
        assert_eq!(flood_fill_label(&img).num_components(), 1);
        // under 4-connectivity every pixel is isolated
        assert_eq!(
            flood_fill_label_with(&img, Connectivity::Four).num_components(),
            18
        );
    }

    #[test]
    fn empty_image() {
        assert_eq!(
            flood_fill_label(&BinaryImage::zeros(3, 3)).num_components(),
            0
        );
    }

    #[test]
    fn matches_two_pass() {
        use crate::seq::{aremsp, cclremsp};
        let img = BinaryImage::parse(
            "#..#..##
             .##..#..
             #..##..#
             ........
             ####.###",
        );
        let flood = flood_fill_label(&img);
        // decision-tree scan shares flood fill's raster numbering exactly
        assert_eq!(flood, cclremsp(&img));
        // the two-line scan numbers by row pairs; same partition though
        assert_eq!(flood.canonicalized(), aremsp(&img).canonicalized());
    }
}
