//! Grayscale connected component labeling — the extension the paper
//! notes in §V: *"our algorithm can be easily extended to gray scale
//! images."*
//!
//! Components are maximal 8-connected regions of **equal** gray value
//! (flat zones). The scan is the decision-tree scan with the foreground
//! test replaced by a value-equality test against the current pixel;
//! every pixel receives a label (there is no background), so labels run
//! `1..=k` over the whole raster. Equivalences go through RemSP exactly
//! as in CCLREMSP.

use ccl_image::GrayImage;
use ccl_unionfind::{EquivalenceStore, RemSP, UnionFind};

use crate::label::LabelImage;

/// Labels the flat zones (equal-value 8-connected regions) of a
/// grayscale image. Numbering follows raster order of each zone's first
/// pixel.
pub fn label_grayscale(img: &GrayImage) -> LabelImage {
    let (w, h) = (img.width(), img.height());
    let mut labels = vec![0u32; w * h];
    // worst case: every pixel its own zone
    let mut store = RemSP::with_capacity(w * h + 1);
    store.new_label(0); // keep slot 0 reserved so flatten's contract holds
    let mut next = 1u32;
    let pixels = img.as_slice();
    for r in 0..h {
        for c in 0..w {
            let i = r * w + c;
            let v = pixels[i];
            // mask values: a b c (row above), d (left)
            let matches = |rr: isize, cc: isize| -> u32 {
                if rr < 0 || cc < 0 || cc as usize >= w {
                    0
                } else {
                    let j = rr as usize * w + cc as usize;
                    if pixels[j] == v {
                        labels[j]
                    } else {
                        0
                    }
                }
            };
            let (ri, ci) = (r as isize, c as isize);
            let lb = matches(ri - 1, ci);
            let lab = if lb != 0 {
                lb
            } else {
                let lc = matches(ri - 1, ci + 1);
                if lc != 0 {
                    let la = matches(ri - 1, ci - 1);
                    if la != 0 {
                        store.merge(lc, la)
                    } else {
                        let ld = matches(ri, ci - 1);
                        if ld != 0 {
                            store.merge(lc, ld)
                        } else {
                            lc
                        }
                    }
                } else {
                    let la = matches(ri - 1, ci - 1);
                    if la != 0 {
                        la
                    } else {
                        let ld = matches(ri, ci - 1);
                        if ld != 0 {
                            ld
                        } else {
                            store.new_label(next);
                            next += 1;
                            next - 1
                        }
                    }
                }
            };
            labels[i] = lab;
        }
    }
    let num_components = store.flatten();
    for l in &mut labels {
        *l = store.resolve(*l);
    }
    LabelImage::from_raw(w, h, labels, num_components)
}

/// Flood-fill oracle for flat-zone labeling (used by the tests).
pub fn flood_fill_grayscale(img: &GrayImage) -> LabelImage {
    let (w, h) = (img.width(), img.height());
    let mut labels = vec![0u32; w * h];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for r in 0..h {
        for c in 0..w {
            if labels[r * w + c] != 0 {
                continue;
            }
            next += 1;
            let v = img.get(r, c);
            labels[r * w + c] = next;
            queue.push_back((r, c));
            while let Some((qr, qc)) = queue.pop_front() {
                for dr in -1isize..=1 {
                    for dc in -1isize..=1 {
                        if dr == 0 && dc == 0 {
                            continue;
                        }
                        let nr = qr as isize + dr;
                        let nc = qc as isize + dc;
                        if nr < 0 || nc < 0 || nr as usize >= h || nc as usize >= w {
                            continue;
                        }
                        let (nr, nc) = (nr as usize, nc as usize);
                        if labels[nr * w + nc] == 0 && img.get(nr, nc) == v {
                            labels[nr * w + nc] = next;
                            queue.push_back((nr, nc));
                        }
                    }
                }
            }
        }
    }
    LabelImage::from_raw(w, h, labels, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_image_is_one_zone() {
        let img = GrayImage::from_fn(8, 6, |_, _| 77);
        let li = label_grayscale(&img);
        assert_eq!(li.num_components(), 1);
        assert!(li.as_slice().iter().all(|&l| l == 1));
    }

    #[test]
    fn binary_image_degenerates_to_two_zones() {
        let img = GrayImage::from_fn(6, 6, |r, _| if r < 3 { 0 } else { 255 });
        let li = label_grayscale(&img);
        assert_eq!(li.num_components(), 2);
    }

    #[test]
    fn gradient_is_per_column_zones() {
        let img = GrayImage::from_fn(5, 4, |_, c| c as u8 * 10);
        let li = label_grayscale(&img);
        assert_eq!(li.num_components(), 5);
        for r in 0..4 {
            for c in 0..5 {
                assert_eq!(li.get(r, c), c as u32 + 1);
            }
        }
    }

    #[test]
    fn matches_oracle_on_pseudorandom_images() {
        let mut state = 31u64;
        let mut rnd = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % m) as u8
        };
        for trial in 0..30 {
            // few gray levels => interesting zone shapes
            let levels = 2 + (trial % 4) as u64;
            let img = GrayImage::from_fn(4 + trial % 9, 3 + trial % 7, |_, _| rnd(levels) * 50);
            assert_eq!(
                label_grayscale(&img),
                flood_fill_grayscale(&img),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn empty_image() {
        let img = GrayImage::zeros(0, 0);
        assert_eq!(label_grayscale(&img).num_components(), 0);
    }

    #[test]
    fn diagonal_equal_values_connect() {
        let img = GrayImage::from_raw(2, 2, vec![9, 1, 2, 9]).unwrap();
        let li = label_grayscale(&img);
        // the two 9s touch diagonally -> same zone
        assert_eq!(li.get(0, 0), li.get(1, 1));
        assert_eq!(li.num_components(), 3);
    }
}
