//! [`Algorithm`] — a uniform handle over every labeler in the crate, used
//! by the benchmark harness and the examples to iterate algorithms by
//! name.

use ccl_image::BinaryImage;

use crate::label::LabelImage;
use crate::par::paremsp;
use crate::seq::{
    aremsp, arun, ccllrpc, cclremsp, contour_label, flood_fill_label, multipass, run_based,
};

/// The order in which an algorithm hands out final component labels.
/// Labels are always consecutive `1..=k`; only the order differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Numbering {
    /// Raster order of each component's first (top-most-then-left-most)
    /// pixel: one-line scans, run-based, multipass, flood fill.
    Raster,
    /// Row-pair scan order: the two-line scans visit the pixel pair
    /// `(r, c)`/`(r+1, c)` before `(r, c+1)`, so a component starting low
    /// in an early column can be numbered before one starting high in a
    /// later column. ARUN, AREMSP and PAREMSP share this order.
    PairScan,
}

/// Every labeling algorithm in the crate, as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Decision-tree scan + link-by-rank/path-compression (ref \[36\]).
    Ccllrpc,
    /// Decision-tree scan + RemSP (this paper).
    Cclremsp,
    /// Two-line scan + He's equivalence table (ref \[37\]).
    Arun,
    /// Two-line scan + RemSP (this paper — best sequential).
    Aremsp,
    /// Run-based two-scan (ref \[43\]).
    RunBased,
    /// Repeated-pass baseline (refs \[11\], \[12\]).
    Multipass,
    /// BFS flood fill (oracle).
    FloodFill,
    /// Contour tracing (Chang–Chen–Lu, ref \[4\]).
    ContourTrace,
    /// PAREMSP with the given thread count (this paper — parallel).
    Paremsp(usize),
}

impl Algorithm {
    /// The four sequential algorithms of Table II, in the paper's column
    /// order.
    pub fn table2() -> [Algorithm; 4] {
        [
            Algorithm::Ccllrpc,
            Algorithm::Cclremsp,
            Algorithm::Arun,
            Algorithm::Aremsp,
        ]
    }

    /// Every sequential algorithm (baselines included).
    pub fn all_sequential() -> [Algorithm; 8] {
        [
            Algorithm::Ccllrpc,
            Algorithm::Cclremsp,
            Algorithm::Arun,
            Algorithm::Aremsp,
            Algorithm::RunBased,
            Algorithm::Multipass,
            Algorithm::FloodFill,
            Algorithm::ContourTrace,
        ]
    }

    /// Short name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Algorithm::Ccllrpc => "CCLLRPC".into(),
            Algorithm::Cclremsp => "CCLRemSP".into(),
            Algorithm::Arun => "ARun".into(),
            Algorithm::Aremsp => "ARemSP".into(),
            Algorithm::RunBased => "RUN".into(),
            Algorithm::Multipass => "MultiPass".into(),
            Algorithm::FloodFill => "FloodFill".into(),
            Algorithm::ContourTrace => "ContourTrace".into(),
            Algorithm::Paremsp(t) => format!("PARemSP({t})"),
        }
    }

    /// The label-numbering order this algorithm produces. Outputs with
    /// equal numbering compare with `==`; across orders, compare
    /// [`LabelImage::canonicalized`] forms.
    pub fn numbering(&self) -> Numbering {
        match self {
            Algorithm::Arun | Algorithm::Aremsp | Algorithm::Paremsp(_) => Numbering::PairScan,
            _ => Numbering::Raster,
        }
    }

    /// Runs the algorithm.
    pub fn run(&self, image: &BinaryImage) -> LabelImage {
        match self {
            Algorithm::Ccllrpc => ccllrpc(image),
            Algorithm::Cclremsp => cclremsp(image),
            Algorithm::Arun => arun(image),
            Algorithm::Aremsp => aremsp(image),
            Algorithm::RunBased => run_based(image),
            Algorithm::Multipass => multipass(image),
            Algorithm::FloodFill => flood_fill_label(image),
            Algorithm::ContourTrace => contour_label(image),
            Algorithm::Paremsp(threads) => paremsp(image, *threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Algorithm::Ccllrpc.name(), "CCLLRPC");
        assert_eq!(Algorithm::Aremsp.name(), "ARemSP");
        assert_eq!(Algorithm::Paremsp(24).name(), "PARemSP(24)");
    }

    #[test]
    fn every_algorithm_agrees_on_a_fixture() {
        let img = BinaryImage::parse(
            "##..#
             ..#..
             #...#
             .###.",
        );
        let reference = Algorithm::FloodFill.run(&img).canonicalized();
        let mut algos: Vec<Algorithm> = Algorithm::all_sequential().to_vec();
        algos.push(Algorithm::Paremsp(1));
        algos.push(Algorithm::Paremsp(3));
        for algo in algos {
            assert_eq!(algo.run(&img).canonicalized(), reference, "{}", algo.name());
        }
    }

    #[test]
    fn numbering_groups_are_internally_bit_identical() {
        let img = BinaryImage::parse(
            "..#..#
             #.....
             ..##.#
             #.....",
        );
        let raster = Algorithm::FloodFill.run(&img);
        let pair = Algorithm::Aremsp.run(&img);
        for algo in Algorithm::all_sequential() {
            let out = algo.run(&img);
            match algo.numbering() {
                Numbering::Raster => assert_eq!(out, raster, "{}", algo.name()),
                Numbering::PairScan => assert_eq!(out, pair, "{}", algo.name()),
            }
        }
        assert_eq!(Algorithm::Paremsp(2).run(&img), pair);
        // the two groups really do differ on this fixture…
        assert_ne!(raster, pair);
        // …but only in numbering
        assert_eq!(raster.canonicalized(), pair.canonicalized());
    }

    #[test]
    fn table2_column_order() {
        let names: Vec<String> = Algorithm::table2().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["CCLLRPC", "CCLRemSP", "ARun", "ARemSP"]);
    }
}
