//! # ccl-core
//!
//! Connected component labeling algorithms — the primary contribution of
//! *"A New Parallel Algorithm for Two-Pass Connected Component Labeling"*
//! (Gupta et al., IPPS 2014).
//!
//! ## Sequential two-pass algorithms (§III)
//!
//! Every two-pass algorithm is a combination of a **scan strategy** and a
//! **label-equivalence structure**:
//!
//! | Algorithm | Scan (first pass) | Equivalence structure |
//! |-----------|-------------------|-----------------------|
//! | [`seq::ccllrpc`]  | decision tree (Alg. 4, Fig. 2) | link-by-rank + path compression |
//! | [`seq::cclremsp`] | decision tree | **RemSP** (Rem + splicing, Alg. 2) |
//! | [`seq::arun`]     | two-line scan (Alg. 6, Fig. 1b) | He's `rtable`/`next`/`tail` |
//! | [`seq::aremsp`]   | two-line scan | **RemSP** — the paper's best |
//!
//! The scan phases are generic over the structure (see [`scan`]), so every
//! combination can be benchmarked (ablation A2 in DESIGN.md). Reference
//! labelers — BFS flood fill ([`seq::flood_fill_label`]), the run-based
//! two-scan of He et al. ([`seq::run_based()`]) and the repeated-pass
//! baseline ([`seq::multipass()`]) — provide oracles and additional
//! baselines.
//!
//! ## PAREMSP (§IV)
//!
//! [`par::paremsp()`] parallelizes AREMSP: the image rows are split into
//! even-height chunks, each thread scans its chunk with a disjoint
//! provisional-label range (Alg. 7), chunk-boundary rows are merged with
//! the parallel Rem's MERGER (Alg. 8, or its CAS variant), and a sparse
//! FLATTEN plus a parallel relabeling pass produce the final labels. All
//! phases are timed individually so Figures 5a/5b can be reproduced.
//!
//! Outputs are [`label::LabelImage`]s with consecutive final labels
//! `1..=k`. Algorithms sharing a scan order produce bit-identical
//! buffers (which the tests assert); the one-line and two-line scan
//! families number components in different orders
//! ([`algorithm::Numbering`]), so cross-family comparisons go through
//! [`label::LabelImage::canonicalized`] or
//! [`verify::labelings_equivalent`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod analysis;
pub mod label;
pub mod par;
pub mod scan;
pub mod seq;
pub mod verify;

pub use algorithm::Algorithm;
pub use label::LabelImage;
