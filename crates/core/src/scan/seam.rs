//! Seam merging — reconnecting two adjacent label buffers.
//!
//! This is the paper's Algorithm 7 lines 13–20, factored out of PAREMSP so
//! that any consumer holding the labels of two adjacent lines can restore
//! 8-connectivity across them: the parallel chunk-boundary MERGER phase
//! (every boundary row in parallel), the `ccl-stream` strip labeler (one
//! seam per band, split into column segments in parallel mode), and the
//! `ccl-tiles` grid labeler (vertical seams between horizontally adjacent
//! tiles, walked as strided columns).
//!
//! The lines may come from *different* label buffers — all that matters is
//! that both lines' labels live in one equivalence store. The same logic
//! serves rows and columns: a vertical seam between a left and a right
//! buffer is a row seam on the transposed image, which is exactly what the
//! strided form walks without materializing the transpose.

use std::ops::Range;

use ccl_unionfind::{EquivalenceStore, UnionFind};

/// A per-label payload that can be folded into another when two
/// provisional labels turn out to name the same component — the hook that
/// lets a seam merge combine *partial accumulators* (areas, bounding
/// boxes, centroid sums…) at the instant it unions the labels, so no
/// later pass over the pixels is needed.
///
/// Laws the fused-accumulation machinery relies on (property-tested by
/// the consumers): `fold` must be **commutative** and **associative**
/// with [`Foldable::EMPTY`] as identity, because seam order — and hence
/// fold order — is unspecified.
pub trait Foldable: Copy {
    /// The identity payload of an unused label slot.
    const EMPTY: Self;

    /// Folds `other` into `self`. Called with the payloads of two label
    /// sets that were just discovered to be one component.
    fn fold(&mut self, other: &Self);
}

/// An [`EquivalenceStore`] adapter that folds per-label payloads as it
/// unions: every merge that joins two distinct sets also folds the
/// absorbed root's payload into the surviving root's slot (and resets the
/// absorbed slot to [`Foldable::EMPTY`]). Passing a `FoldingStore` to
/// [`merge_seam`] / [`merge_seam_span`] / [`merge_seam_strided`] is the
/// *optional fold hook* of the fused-accumulation path: after the seam,
/// the surviving roots' slots already hold the complete component
/// payloads — no per-pixel pass remains.
///
/// The payload slice is indexed by label and must be kept **root-keyed**
/// by the caller: every label's payload folded onto its set root before
/// the first merge through this store (freshly scanned labels satisfy
/// this trivially once a label→root fold pass has run). Sequential
/// stores only — concurrent mergers fold nothing, by construction.
pub struct FoldingStore<'a, S, P> {
    inner: &'a mut S,
    payloads: &'a mut [P],
}

impl<'a, S: UnionFind, P: Foldable> FoldingStore<'a, S, P> {
    /// Wraps `inner`, folding `payloads` (indexed by label, root-keyed)
    /// on every uniting merge.
    pub fn new(inner: &'a mut S, payloads: &'a mut [P]) -> Self {
        FoldingStore { inner, payloads }
    }
}

impl<S: UnionFind, P: Foldable> EquivalenceStore for FoldingStore<'_, S, P> {
    fn new_label(&mut self, label: u32) {
        self.inner.new_label(label);
    }

    fn merge(&mut self, x: u32, y: u32) -> u32 {
        let rx = self.inner.find(x);
        let ry = self.inner.find(y);
        if rx == ry {
            return rx;
        }
        self.inner.merge(rx, ry);
        // Which root survived is the store's choice (Rem-family keeps the
        // minimum); ask rather than assume.
        let keep = self.inner.find(rx);
        let gone = if keep == rx { ry } else { rx };
        let absorbed = std::mem::replace(&mut self.payloads[gone as usize], P::EMPTY);
        self.payloads[keep as usize].fold(&absorbed);
        keep
    }
}

/// The seam body shared by every entry point: merges element `i` of `cur`
/// with elements `i-1`, `i`, `i+1` of `up` under 8-connectivity, for `i`
/// in `span` (neighbour probes reach outside `span` but stay in
/// `0..len`). The direct neighbour `up(i)` subsumes both diagonals when
/// present; otherwise the two diagonals are merged individually
/// (Algorithm 7 lines 13–20).
#[inline]
fn seam_core<S: EquivalenceStore>(
    up: impl Fn(usize) -> u32,
    cur: impl Fn(usize) -> u32,
    len: usize,
    span: Range<usize>,
    store: &mut S,
) {
    debug_assert!(span.end <= len);
    for c in span {
        let le = cur(c);
        if le == 0 {
            continue;
        }
        let lb = up(c);
        if lb != 0 {
            store.merge(le, lb);
        } else {
            if c > 0 {
                let la = up(c - 1);
                if la != 0 {
                    store.merge(le, la);
                }
            }
            if c + 1 < len {
                let lc = up(c + 1);
                if lc != 0 {
                    store.merge(le, lc);
                }
            }
        }
    }
}

/// Merges the labels of a row (`cur`) with the row directly above it
/// (`up`) under 8-connectivity: for each foreground pixel of `cur`, the
/// vertical neighbour `b` subsumes both diagonals when present; otherwise
/// the two diagonals are merged individually (Algorithm 7 lines 13–20).
///
/// Background pixels hold label 0 and are skipped. The slices may be
/// drawn from different label buffers as long as both label spaces are
/// registered in `store`.
///
/// # Panics
/// Panics when the two rows differ in length.
pub fn merge_seam<S: EquivalenceStore>(up: &[u32], cur: &[u32], store: &mut S) {
    assert_eq!(up.len(), cur.len(), "seam rows differ in width");
    let w = cur.len();
    seam_core(|i| up[i], |i| cur[i], w, 0..w, store);
}

/// [`merge_seam`] restricted to the columns in `span`: only `cur[span]`
/// pixels are merged, but their diagonal probes read the *full* `up` row,
/// so a seam partitioned into disjoint spans merges exactly the same
/// pairs as one whole-row call — the building block for parallelizing a
/// single wide seam across threads (`ccl-stream`'s inter-band seam).
///
/// # Panics
/// Panics when the rows differ in length or `span` exceeds it.
pub fn merge_seam_span<S: EquivalenceStore>(
    up: &[u32],
    cur: &[u32],
    span: Range<usize>,
    store: &mut S,
) {
    assert_eq!(up.len(), cur.len(), "seam rows differ in width");
    assert!(span.end <= cur.len(), "span exceeds seam width");
    seam_core(|i| up[i], |i| cur[i], cur.len(), span, store);
}

/// Splits `0..len` into at most `parts` contiguous, non-empty,
/// near-equal spans (the first spans one element longer) — the standard
/// partition for fanning a seam ([`merge_seam_span`]), a compaction pass
/// or a tile run out across workers. Returns no spans when `len` is 0.
pub fn split_spans(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let n = base + usize::from(i < extra);
        out.push(start..start + n);
        start += n;
    }
    out
}

/// The column-capable (strided) seam: element `i` of each line is
/// `line[i * stride]`, so two *vertically adjacent columns* of row-major
/// label buffers — e.g. the right edge of one tile and the left edge of
/// the next — merge without materializing a transpose. Equivalent to
/// transposing both buffers and calling [`merge_seam`] on the resulting
/// rows (property-tested in `tests/proptest_seam.rs`).
///
/// `up` is the earlier line (left column for a vertical seam), `cur` the
/// later one; `len` elements are walked from each. The strides may differ
/// (tiles of different widths).
///
/// # Panics
/// Panics when either slice is too short for `len` elements at its
/// stride, or a stride is 0.
pub fn merge_seam_strided<S: EquivalenceStore>(
    up: &[u32],
    up_stride: usize,
    cur: &[u32],
    cur_stride: usize,
    len: usize,
    store: &mut S,
) {
    assert!(up_stride > 0 && cur_stride > 0, "strides must be positive");
    if len == 0 {
        return;
    }
    assert!(
        up.len() > (len - 1) * up_stride && cur.len() > (len - 1) * cur_stride,
        "strided seam out of bounds"
    );
    seam_core(
        |i| up[i * up_stride],
        |i| cur[i * cur_stride],
        len,
        0..len,
        store,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_unionfind::{RemSP, UnionFind};

    fn store_with(n: u32) -> RemSP {
        let mut s = RemSP::new();
        for l in 0..=n {
            s.new_label(l);
        }
        s
    }

    #[test]
    fn vertical_neighbour_merges() {
        let mut s = store_with(2);
        merge_seam(&[1, 0, 0], &[2, 0, 0], &mut s);
        assert!(s.same(1, 2));
    }

    #[test]
    fn b_subsumes_diagonals() {
        // up = a b c all present: only the vertical merge is issued, the
        // diagonals being already equivalent to b within the up buffer's
        // own scan. Here they are distinct stores' labels, so only (2, b)
        // is merged.
        let mut s = store_with(4);
        merge_seam(&[1, 2, 3], &[0, 4, 0], &mut s);
        assert!(s.same(4, 2));
        assert!(!s.same(4, 1));
        assert!(!s.same(4, 3));
    }

    #[test]
    fn diagonals_merge_when_b_absent() {
        let mut s = store_with(3);
        merge_seam(&[1, 0, 2], &[0, 3, 0], &mut s);
        assert!(s.same(3, 1));
        assert!(s.same(3, 2));
    }

    #[test]
    fn edges_do_not_probe_out_of_bounds() {
        let mut s = store_with(2);
        merge_seam(&[0, 1], &[2, 0], &mut s);
        assert!(s.same(1, 2));
        let mut s = store_with(2);
        merge_seam(&[1, 0], &[0, 2], &mut s);
        assert!(s.same(1, 2));
    }

    #[test]
    fn background_rows_are_noop() {
        let mut s = store_with(2);
        merge_seam(&[0, 0, 0], &[1, 0, 2], &mut s);
        assert!(!s.same(1, 2));
    }

    #[test]
    #[should_panic(expected = "seam rows differ")]
    fn mismatched_widths_panic() {
        let mut s = store_with(1);
        merge_seam(&[0, 0], &[0], &mut s);
    }

    #[test]
    fn span_merges_only_its_columns_but_probes_full_row() {
        // cur[2] sits in the span; its left diagonal up[1] lies outside it.
        let mut s = store_with(2);
        merge_seam_span(&[0, 1, 0, 0], &[0, 0, 2, 0], 2..4, &mut s);
        assert!(s.same(1, 2));
        // cur[1] outside the span: untouched even though up[1] is live
        let mut s = store_with(2);
        merge_seam_span(&[0, 1, 0, 0], &[0, 2, 0, 0], 2..4, &mut s);
        assert!(!s.same(1, 2));
    }

    #[test]
    fn partitioned_spans_equal_whole_row() {
        let up = [1, 0, 2, 0, 3, 3, 0, 4];
        let cur = [0, 5, 0, 6, 0, 7, 8, 0];
        let mut whole = store_with(8);
        merge_seam(&up, &cur, &mut whole);
        let mut split = store_with(8);
        for span in [0..3, 3..5, 5..8] {
            merge_seam_span(&up, &cur, span, &mut split);
        }
        for x in 1..=8 {
            for y in 1..=8 {
                assert_eq!(whole.same(x, y), split.same(x, y), "({x}, {y})");
            }
        }
    }

    #[test]
    fn strided_column_seam_connects_across_buffers() {
        // Left buffer 2 wide, right buffer 3 wide, 3 elements tall. The
        // left tile's right column [1, 0, 2] meets the right tile's left
        // column [0, 3, 0]: 3 takes both diagonals.
        let left = [0, 1, 0, 0, 0, 2];
        let right = [0, 9, 9, 3, 9, 9, 0, 9, 9];
        let mut s = store_with(9);
        merge_seam_strided(&left[1..], 2, &right, 3, 3, &mut s);
        assert!(s.same(3, 1));
        assert!(s.same(3, 2));
        assert!(!s.same(3, 9));
    }

    #[test]
    fn strided_direct_neighbour_subsumes_diagonals() {
        // column form of `b_subsumes_diagonals`
        let left = [1, 2, 3];
        let right = [0, 4, 0];
        let mut s = store_with(4);
        merge_seam_strided(&left, 1, &right, 1, 3, &mut s);
        assert!(s.same(4, 2));
        assert!(!s.same(4, 1));
        assert!(!s.same(4, 3));
    }

    #[test]
    fn split_spans_cover_exactly_without_empties() {
        assert!(split_spans(0, 4).is_empty());
        assert_eq!(split_spans(3, 8), vec![0..1, 1..2, 2..3]);
        assert_eq!(split_spans(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(split_spans(5, 1), vec![0..5]);
        for len in 0..40 {
            for parts in [1, 2, 3, 7, 64] {
                let spans = split_spans(len, parts);
                assert!(spans.iter().all(|s| !s.is_empty()));
                assert_eq!(spans.iter().map(ExactSizeIterator::len).sum::<usize>(), len);
                for pair in spans.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
            }
        }
    }

    /// Toy payload: a sum + an element count, folding by addition.
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Part {
        sum: u64,
        n: u64,
    }

    impl Foldable for Part {
        const EMPTY: Part = Part { sum: 0, n: 0 };

        fn fold(&mut self, other: &Part) {
            self.sum += other.sum;
            self.n += other.n;
        }
    }

    #[test]
    fn folding_store_combines_payloads_on_union() {
        let mut s = store_with(3);
        let mut parts = [
            Part::EMPTY,
            Part { sum: 10, n: 1 },
            Part { sum: 20, n: 2 },
            Part { sum: 3, n: 1 },
        ];
        {
            let mut fs = FoldingStore::new(&mut s, &mut parts);
            merge_seam(&[1, 0, 2], &[0, 3, 0], &mut fs);
        }
        let root = s.find(3);
        assert_eq!(root, 1, "Rem keeps the set minimum");
        assert_eq!(parts[1], Part { sum: 33, n: 4 });
        assert_eq!(parts[2], Part::EMPTY);
        assert_eq!(parts[3], Part::EMPTY);
    }

    #[test]
    fn folding_store_ignores_already_equivalent_merges() {
        let mut s = store_with(2);
        s.merge(1, 2);
        let mut parts = [Part::EMPTY, Part { sum: 5, n: 2 }, Part::EMPTY];
        let mut fs = FoldingStore::new(&mut s, &mut parts);
        // repeated merges of the same pair fold exactly once (nothing on
        // the second call: the sets are already one)
        fs.merge(1, 2);
        fs.merge(2, 1);
        assert_eq!(parts[1], Part { sum: 5, n: 2 });
    }

    #[test]
    fn folding_store_handles_non_root_arguments() {
        // payloads are root-keyed: merging via non-root members must fold
        // the roots' slots, not the members'.
        let mut s = store_with(4);
        s.merge(1, 2); // root 1
        s.merge(3, 4); // root 3
        let mut parts = [
            Part::EMPTY,
            Part { sum: 7, n: 3 },
            Part::EMPTY,
            Part { sum: 8, n: 1 },
            Part::EMPTY,
        ];
        let mut fs = FoldingStore::new(&mut s, &mut parts);
        fs.merge(2, 4);
        assert_eq!(parts[1], Part { sum: 15, n: 4 });
        assert_eq!(parts[3], Part::EMPTY);
    }

    #[test]
    fn strided_zero_len_is_noop() {
        let mut s = store_with(1);
        merge_seam_strided(&[], 3, &[], 2, 0, &mut s);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn strided_bounds_are_checked() {
        let mut s = store_with(1);
        merge_seam_strided(&[0, 0], 2, &[0, 0, 0], 2, 2, &mut s);
    }
}
