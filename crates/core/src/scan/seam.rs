//! Seam merging — reconnecting two row-adjacent label buffers.
//!
//! This is the paper's Algorithm 7 lines 13–20, factored out of PAREMSP so
//! that any consumer holding the labels of two vertically adjacent rows can
//! restore 8-connectivity across them: the parallel chunk-boundary MERGER
//! phase (every boundary row in parallel) and the `ccl-stream` strip
//! labeler (one seam per band, applied sequentially as bands arrive).
//!
//! The rows may come from *different* label buffers — all that matters is
//! that both rows' labels live in one equivalence store.

use ccl_unionfind::EquivalenceStore;

/// Merges the labels of a row (`cur`) with the row directly above it
/// (`up`) under 8-connectivity: for each foreground pixel of `cur`, the
/// vertical neighbour `b` subsumes both diagonals when present; otherwise
/// the two diagonals are merged individually (Algorithm 7 lines 13–20).
///
/// Background pixels hold label 0 and are skipped. The slices may be
/// drawn from different label buffers as long as both label spaces are
/// registered in `store`.
///
/// # Panics
/// Panics when the two rows differ in length.
pub fn merge_seam<S: EquivalenceStore>(up: &[u32], cur: &[u32], store: &mut S) {
    assert_eq!(up.len(), cur.len(), "seam rows differ in width");
    let w = cur.len();
    for c in 0..w {
        let le = cur[c];
        if le == 0 {
            continue;
        }
        let lb = up[c];
        if lb != 0 {
            store.merge(le, lb);
        } else {
            if c > 0 {
                let la = up[c - 1];
                if la != 0 {
                    store.merge(le, la);
                }
            }
            if c + 1 < w {
                let lc = up[c + 1];
                if lc != 0 {
                    store.merge(le, lc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_unionfind::{RemSP, UnionFind};

    fn store_with(n: u32) -> RemSP {
        let mut s = RemSP::new();
        for l in 0..=n {
            s.new_label(l);
        }
        s
    }

    #[test]
    fn vertical_neighbour_merges() {
        let mut s = store_with(2);
        merge_seam(&[1, 0, 0], &[2, 0, 0], &mut s);
        assert!(s.same(1, 2));
    }

    #[test]
    fn b_subsumes_diagonals() {
        // up = a b c all present: only the vertical merge is issued, the
        // diagonals being already equivalent to b within the up buffer's
        // own scan. Here they are distinct stores' labels, so only (2, b)
        // is merged.
        let mut s = store_with(4);
        merge_seam(&[1, 2, 3], &[0, 4, 0], &mut s);
        assert!(s.same(4, 2));
        assert!(!s.same(4, 1));
        assert!(!s.same(4, 3));
    }

    #[test]
    fn diagonals_merge_when_b_absent() {
        let mut s = store_with(3);
        merge_seam(&[1, 0, 2], &[0, 3, 0], &mut s);
        assert!(s.same(3, 1));
        assert!(s.same(3, 2));
    }

    #[test]
    fn edges_do_not_probe_out_of_bounds() {
        let mut s = store_with(2);
        merge_seam(&[0, 1], &[2, 0], &mut s);
        assert!(s.same(1, 2));
        let mut s = store_with(2);
        merge_seam(&[1, 0], &[0, 2], &mut s);
        assert!(s.same(1, 2));
    }

    #[test]
    fn background_rows_are_noop() {
        let mut s = store_with(2);
        merge_seam(&[0, 0, 0], &[1, 0, 2], &mut s);
        assert!(!s.same(1, 2));
    }

    #[test]
    #[should_panic(expected = "seam rows differ")]
    fn mismatched_widths_panic() {
        let mut s = store_with(1);
        merge_seam(&[0, 0], &[0], &mut s);
    }
}
