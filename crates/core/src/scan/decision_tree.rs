//! Decision-tree scan — the paper's Algorithm 4 (from Wu, Otoo & Suzuki).
//!
//! Processes the chunk one line at a time with the Fig. 1a forward mask
//! (`a b c` above, `d` left). The decision tree of Fig. 2 orders the
//! neighbour tests so that, on average, half the neighbours are never
//! inspected: `b` subsumes everything when present; otherwise `c` decides
//! whether one merge is needed and with whom.

use std::ops::Range;

use ccl_image::BinaryImage;
use ccl_unionfind::EquivalenceStore;

use super::scan_row;

/// Runs the decision-tree scan over `rows` of `image`.
///
/// * `labels` — chunk-local label buffer, `rows.len() * image.width()`
///   entries, pre-zeroed; row `rows.start + i` maps to buffer row `i`.
/// * `store` — label-equivalence backend; `first_label` — the first
///   provisional label this chunk may use (1 for sequential use).
///
/// Rows above `rows.start` are treated as background (chunk semantics).
/// Returns the next unused label, i.e. the chunk created labels
/// `first_label..returned`.
///
/// # Panics
/// Panics when the buffer size does not match the chunk.
pub fn scan_decision_tree<S: EquivalenceStore>(
    image: &BinaryImage,
    rows: Range<usize>,
    labels: &mut [u32],
    store: &mut S,
    first_label: u32,
) -> u32 {
    let w = image.width();
    assert_eq!(labels.len(), rows.len() * w, "label buffer size mismatch");
    let mut next = first_label;
    for (lr, r) in rows.enumerate() {
        next = scan_row(image.row(r), labels, w, lr, store, next);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_unionfind::{RemSP, UnionFind};

    /// Scan the whole image sequentially; return (labels, created, store).
    fn scan(img: &BinaryImage) -> (Vec<u32>, u32, RemSP) {
        let mut labels = vec![0u32; img.len()];
        let mut store = RemSP::new();
        store.new_label(0);
        let next = scan_decision_tree(img, 0..img.height(), &mut labels, &mut store, 1);
        (labels, next - 1, store)
    }

    #[test]
    fn empty_image_creates_no_labels() {
        let (labels, created, _) = scan(&BinaryImage::zeros(5, 4));
        assert_eq!(created, 0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn solid_image_creates_one_label() {
        let (labels, created, _) = scan(&BinaryImage::ones(6, 3));
        assert_eq!(created, 1);
        assert!(labels.iter().all(|&l| l == 1));
    }

    #[test]
    fn two_separate_blobs_two_labels() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 2);
        assert_eq!(labels[0], 1);
        assert_eq!(labels[11], 2);
    }

    #[test]
    fn u_shape_merges_via_equivalence() {
        // Left and right arms get different provisional labels; the bottom
        // bar forces a merge.
        let img = BinaryImage::parse(
            "#.#
             #.#
             ###",
        );
        let (_, created, mut store) = scan(&img);
        assert_eq!(created, 2);
        assert!(store.same(1, 2));
    }

    #[test]
    fn diagonal_connectivity_is_eight() {
        let img = BinaryImage::parse(
            "#.
             .#",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels, vec![1, 0, 0, 1]);
    }

    #[test]
    fn anti_diagonal_connectivity() {
        let img = BinaryImage::parse(
            ".#
             #.",
        );
        let (labels, created, _) = scan(&img);
        // c-neighbour path: pixel (1,0) sees (0,1) as its c mask position
        assert_eq!(created, 1);
        assert_eq!(labels, vec![0, 1, 1, 0]);
    }

    #[test]
    fn chunk_semantics_ignore_rows_above() {
        let img = BinaryImage::parse(
            "###
             ###",
        );
        // scanning only row 1 must not see row 0
        let mut labels = vec![0u32; 3];
        let mut store = RemSP::new();
        store.new_label(0);
        let next = scan_decision_tree(&img, 1..2, &mut labels, &mut store, 1);
        assert_eq!(next, 2);
        assert_eq!(labels, vec![1, 1, 1]);
    }

    #[test]
    fn first_label_offset_respected() {
        let img = BinaryImage::parse("#.#");
        let mut labels = vec![0u32; 3];
        // Sparse store: the parallel chunk view accepts arbitrary offsets.
        let parents = ccl_unionfind::par::ConcurrentParents::new(16);
        let mut store = parents.chunk_store();
        let next = scan_decision_tree(&img, 0..1, &mut labels, &mut store, 10);
        assert_eq!(next, 12);
        assert_eq!(labels, vec![10, 0, 11]);
    }

    #[test]
    fn w_pattern_merges_all() {
        // staircase requiring several merges
        let img = BinaryImage::parse(
            "#.#.#
             #####",
        );
        let (_, created, mut store) = scan(&img);
        assert_eq!(created, 3);
        assert!(store.same(1, 2));
        assert!(store.same(2, 3));
    }
}
