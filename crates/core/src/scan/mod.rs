//! The scan phases (first pass) of the two-pass algorithms.
//!
//! Both scan strategies are generic over the label-equivalence backend
//! ([`ccl_unionfind::EquivalenceStore`]), mirroring the paper's structure
//! where the same scan is paired with different union-find structures:
//!
//! * [`scan_decision_tree`] — one image line at a time with the
//!   Wu–Otoo–Suzuki decision tree (the paper's Algorithm 4 / Figure 2),
//! * [`scan_two_line`] — two lines and two pixels at a time with the
//!   He–Chao–Suzuki mask (the paper's Algorithm 6 / Figure 1b).
//!
//! Both operate on a *chunk* of image rows with a caller-provided local
//! label buffer and starting label, which is exactly what PAREMSP's
//! phase 1 needs; the sequential algorithms simply pass the whole image
//! as one chunk. Rows above the chunk are treated as background — the
//! paper's phase 2 (boundary merge) restores cross-chunk connectivity.
//!
//! ## Neighbour tests via labels
//!
//! The pseudocode tests `image(x) = 1` for mask neighbours; we test
//! `label(x) ≠ 0` instead. The two are equivalent for already-scanned
//! pixels (every scanned foreground pixel holds a non-zero label) and the
//! label test additionally gives chunk-local semantics for free: pixels
//! above the chunk read as 0 whatever the image holds there.
//!
//! ## Label-count bounds
//!
//! No two horizontally adjacent columns can both create a fresh label
//! (the earlier column's pixel would be a live mask neighbour of the
//! later one), so a single row creates at most ⌈w/2⌉ labels and a
//! two-row pair at most ⌈w/2⌉ as well — the bounds behind
//! [`max_labels_decision_tree`] and [`max_labels_two_line`], which
//! PAREMSP uses to give each thread a disjoint label range.

pub mod decision_tree;
pub mod seam;
pub mod two_line;

pub use decision_tree::scan_decision_tree;
pub use seam::{
    merge_seam, merge_seam_span, merge_seam_strided, split_spans, Foldable, FoldingStore,
};
pub use two_line::scan_two_line;

use ccl_unionfind::EquivalenceStore;

/// Upper bound on provisional labels created by the decision-tree scan
/// over `rows × cols` pixels (excludes the background label 0).
pub fn max_labels_decision_tree(rows: usize, cols: usize) -> usize {
    rows * cols.div_ceil(2)
}

/// Upper bound on provisional labels created by the two-line scan over
/// `rows × cols` pixels (excludes the background label 0).
pub fn max_labels_two_line(rows: usize, cols: usize) -> usize {
    rows.div_ceil(2) * cols.div_ceil(2)
}

/// Scans one image row with the decision-tree logic (Algorithm 4 body).
/// Shared by [`scan_decision_tree`] (every row) and [`scan_two_line`]
/// (odd trailing row of a chunk).
///
/// `lr` is the row's index within the local `labels` buffer; the row
/// above (`lr - 1`) is read for the a/b/c mask positions when present.
/// Returns the updated next-label counter.
#[inline]
pub(crate) fn scan_row<S: EquivalenceStore>(
    img_row: &[u8],
    labels: &mut [u32],
    w: usize,
    lr: usize,
    store: &mut S,
    mut next_label: u32,
) -> u32 {
    let base = lr * w;
    let up = lr.checked_sub(1).map(|u| u * w);
    for c in 0..w {
        if img_row[c] == 0 {
            continue;
        }
        // Mask of Fig. 1a: a=(up,c-1) b=(up,c) c=(up,c+1) d=(base,c-1).
        let lb = up.map_or(0, |u| labels[u + c]);
        let lab = if lb != 0 {
            lb // copy(b)
        } else {
            let lc = if c + 1 < w {
                up.map_or(0, |u| labels[u + c + 1])
            } else {
                0
            };
            if lc != 0 {
                let la = if c > 0 {
                    up.map_or(0, |u| labels[u + c - 1])
                } else {
                    0
                };
                if la != 0 {
                    store.merge(lc, la) // copy(c, a)
                } else {
                    let ld = if c > 0 { labels[base + c - 1] } else { 0 };
                    if ld != 0 {
                        store.merge(lc, ld) // copy(c, d)
                    } else {
                        lc // copy(c)
                    }
                }
            } else {
                let la = if c > 0 {
                    up.map_or(0, |u| labels[u + c - 1])
                } else {
                    0
                };
                if la != 0 {
                    la // copy(a)
                } else {
                    let ld = if c > 0 { labels[base + c - 1] } else { 0 };
                    if ld != 0 {
                        ld // copy(d)
                    } else {
                        store.new_label(next_label); // new label
                        next_label += 1;
                        next_label - 1
                    }
                }
            }
        };
        labels[base + c] = lab;
    }
    next_label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_and_tight_for_small_sizes() {
        assert_eq!(max_labels_decision_tree(1, 1), 1);
        assert_eq!(max_labels_decision_tree(3, 5), 9);
        assert_eq!(max_labels_two_line(1, 1), 1);
        assert_eq!(max_labels_two_line(2, 5), 3);
        assert_eq!(max_labels_two_line(3, 5), 6);
        assert_eq!(max_labels_two_line(4, 4), 4);
        // two-line never exceeds decision-tree bound
        for r in 0..6 {
            for c in 0..6 {
                assert!(max_labels_two_line(r, c) <= max_labels_decision_tree(r, c));
            }
        }
    }

    #[test]
    fn isolated_pixel_grid_attains_decision_tree_bound() {
        use ccl_unionfind::{RemSP, UnionFind};
        // pixels at even (r, c): rows*ceil(cols/2) would overcount; the
        // true max for isolated pixels is ceil(r/2)*ceil(c/2), comfortably
        // under the bound. Check the bound is not violated.
        let w = 9;
        let h = 7;
        let img = ccl_image::BinaryImage::from_fn(w, h, |r, c| r % 2 == 0 && c % 2 == 0);
        let mut labels = vec![0u32; w * h];
        let mut store = RemSP::new();
        store.new_label(0);
        let mut next = 1;
        for lr in 0..h {
            next = scan_row(img.row(lr), &mut labels, w, lr, &mut store, next);
        }
        let created = (next - 1) as usize;
        assert_eq!(created, 20); // 4 rows x 5 cols of isolated pixels
        assert!(created <= max_labels_decision_tree(h, w));
    }

    #[test]
    fn alternating_row_attains_per_row_bound() {
        use ccl_unionfind::{RemSP, UnionFind};
        let w = 8;
        let img_row: Vec<u8> = (0..w).map(|c| (c % 2 == 0) as u8).collect();
        let mut labels = vec![0u32; w];
        let mut store = RemSP::new();
        store.new_label(0);
        let next = scan_row(&img_row, &mut labels, w, 0, &mut store, 1);
        assert_eq!(next - 1, 4); // exactly ceil(8/2) = 4 labels
        assert_eq!(max_labels_decision_tree(1, w), 4);
    }
}
