//! Two-line scan — the paper's Algorithm 6 (scan strategy of He, Chao &
//! Suzuki's ARUN).
//!
//! Processes two image rows at a time with the Fig. 1b mask: for the pixel
//! pair `e` (top) / `g` (bottom) at column `c`, the already-labeled
//! neighbours are `a b c` on the row above the pair and `d` / `f`
//! immediately left of `e` / `g`. Labeling both rows of a pair in one
//! sweep halves the number of line traversals — the source of ARUN's (and
//! AREMSP's) advantage over the one-line decision tree in Table II.
//!
//! Two corrections to the printed pseudocode (see DESIGN.md §6, verified
//! by the exhaustive oracle tests):
//!
//! 1. Algorithm 6 line 14 drops an argument; the intended call is
//!    `merge(p, label(e), label(a))`.
//! 2. The copy `label(g) ← label(e)` appears only under the `d = 1`
//!    branch; `g` is 8-adjacent to `e`, so the copy must happen in every
//!    branch where both are foreground.

use std::ops::Range;

use ccl_image::BinaryImage;
use ccl_unionfind::EquivalenceStore;

use super::scan_row;

/// Runs the two-line scan over `rows` of `image`. Same contract as
/// [`super::scan_decision_tree`]: chunk-local `labels` buffer, label
/// numbering starts at `first_label`, rows above the chunk read as
/// background, returns the next unused label.
///
/// A trailing odd row (chunk of odd height) is scanned with the one-line
/// decision tree, which shares the same mask for the top row of a pair.
///
/// # Panics
/// Panics when the buffer size does not match the chunk.
pub fn scan_two_line<S: EquivalenceStore>(
    image: &BinaryImage,
    rows: Range<usize>,
    labels: &mut [u32],
    store: &mut S,
    first_label: u32,
) -> u32 {
    let w = image.width();
    assert_eq!(labels.len(), rows.len() * w, "label buffer size mismatch");
    let nrows = rows.len();
    let mut next = first_label;
    let mut lr = 0usize;
    while lr + 1 < nrows {
        let r = rows.start + lr;
        next = scan_pair(image.row(r), image.row(r + 1), labels, w, lr, store, next);
        lr += 2;
    }
    if lr < nrows {
        next = scan_row(image.row(rows.start + lr), labels, w, lr, store, next);
    }
    next
}

/// Scans one row pair (Algorithm 6 body, with the two fixes).
#[inline]
fn scan_pair<S: EquivalenceStore>(
    top: &[u8],
    bot: &[u8],
    labels: &mut [u32],
    w: usize,
    lr: usize,
    store: &mut S,
    mut next_label: u32,
) -> u32 {
    let e_base = lr * w;
    let g_base = (lr + 1) * w;
    let up = lr.checked_sub(1).map(|u| u * w);
    for c in 0..w {
        let e_fg = top[c] == 1;
        let g_fg = bot[c] == 1;
        if e_fg {
            // d = (e-row, c-1)
            let ld = if c > 0 { labels[e_base + c - 1] } else { 0 };
            let lab;
            if ld != 0 {
                // e continues the run from d; b (if present) is already
                // equivalent to d via d's own scan step. Only c needs a
                // merge, and only when b is absent.
                lab = ld;
                let lb = up.map_or(0, |u| labels[u + c]);
                if lb == 0 {
                    let lc = if c + 1 < w {
                        up.map_or(0, |u| labels[u + c + 1])
                    } else {
                        0
                    };
                    if lc != 0 {
                        store.merge(lab, lc);
                    }
                }
            } else {
                let lb = up.map_or(0, |u| labels[u + c]);
                if lb != 0 {
                    // b subsumes a and c (same-row adjacency above); f is
                    // not adjacent to b and needs an explicit merge.
                    lab = lb;
                    let lf = if c > 0 { labels[g_base + c - 1] } else { 0 };
                    if lf != 0 {
                        store.merge(lab, lf);
                    }
                } else {
                    let lf = if c > 0 { labels[g_base + c - 1] } else { 0 };
                    if lf != 0 {
                        lab = lf;
                        // fix 1: merge with a (diagonal, unconnected to f)
                        let la = if c > 0 {
                            up.map_or(0, |u| labels[u + c - 1])
                        } else {
                            0
                        };
                        if la != 0 {
                            store.merge(lab, la);
                        }
                        let lc = if c + 1 < w {
                            up.map_or(0, |u| labels[u + c + 1])
                        } else {
                            0
                        };
                        if lc != 0 {
                            store.merge(lab, lc);
                        }
                    } else {
                        let la = if c > 0 {
                            up.map_or(0, |u| labels[u + c - 1])
                        } else {
                            0
                        };
                        if la != 0 {
                            lab = la;
                            let lc = if c + 1 < w {
                                up.map_or(0, |u| labels[u + c + 1])
                            } else {
                                0
                            };
                            if lc != 0 {
                                store.merge(lab, lc);
                            }
                        } else {
                            let lc = if c + 1 < w {
                                up.map_or(0, |u| labels[u + c + 1])
                            } else {
                                0
                            };
                            if lc != 0 {
                                lab = lc;
                            } else {
                                store.new_label(next_label);
                                lab = next_label;
                                next_label += 1;
                            }
                        }
                    }
                }
            }
            labels[e_base + c] = lab;
            if g_fg {
                // fix 2: g is 8-adjacent to e in every branch.
                labels[g_base + c] = lab;
            }
        } else if g_fg {
            // e background: g's already-scanned neighbours are d (diagonal
            // above-left, on the e-row) and f (left).
            let ld = if c > 0 { labels[e_base + c - 1] } else { 0 };
            let lab = if ld != 0 {
                // f (if present) is already equivalent to d: the pair
                // (d, f) was labeled together at column c-1.
                ld
            } else {
                let lf = if c > 0 { labels[g_base + c - 1] } else { 0 };
                if lf != 0 {
                    lf
                } else {
                    store.new_label(next_label);
                    next_label += 1;
                    next_label - 1
                }
            };
            labels[g_base + c] = lab;
        }
    }
    next_label
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_unionfind::{RemSP, UnionFind};

    fn scan(img: &BinaryImage) -> (Vec<u32>, u32, RemSP) {
        let mut labels = vec![0u32; img.len()];
        let mut store = RemSP::new();
        store.new_label(0);
        let next = scan_two_line(img, 0..img.height(), &mut labels, &mut store, 1);
        (labels, next - 1, store)
    }

    /// Resolve provisional labels to set minima for comparison.
    fn resolved(img: &BinaryImage) -> Vec<u32> {
        let (labels, _, mut store) = scan(img);
        labels.iter().map(|&l| store.find(l)).collect()
    }

    #[test]
    fn empty_and_solid() {
        let (l0, c0, _) = scan(&BinaryImage::zeros(4, 4));
        assert_eq!(c0, 0);
        assert!(l0.iter().all(|&l| l == 0));
        let (l1, c1, _) = scan(&BinaryImage::ones(4, 4));
        assert_eq!(c1, 1);
        assert!(l1.iter().all(|&l| l == 1));
    }

    #[test]
    fn vertical_pair_copies_e_to_g() {
        let img = BinaryImage::parse(
            "#
             #",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels, vec![1, 1]);
    }

    #[test]
    fn g_row_new_label_when_e_background() {
        let img = BinaryImage::parse(
            "..
             .#",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels, vec![0, 0, 0, 1]);
    }

    #[test]
    fn g_connects_to_d_diagonally() {
        let img = BinaryImage::parse(
            "#.
             .#",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels, vec![1, 0, 0, 1]);
    }

    #[test]
    fn g_connects_to_f_horizontally() {
        let img = BinaryImage::parse(
            "..
             ##",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fix1_a_merge_is_applied() {
        // e at (2,1) takes f's label; a at (1,0) must be merged in.
        // Rows: pair 0 = rows 0-1, pair 1 = rows 2-3.
        let img = BinaryImage::parse(
            "...
             #..
             .#.
             #..",
        );
        let res = resolved(&img);
        // pixels (1,0), (2,1), (3,0) all one component
        assert_eq!(res[3], res[7]);
        assert_eq!(res[7], res[9]);
    }

    #[test]
    fn fix2_g_copied_in_every_branch() {
        // e labeled via b (not d); g below must still copy e.
        let img = BinaryImage::parse(
            ".#.
             .#.
             .#.
             ...",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[4], 1);
        assert_eq!(labels[7], 1);
    }

    #[test]
    fn u_shape_merges() {
        let img = BinaryImage::parse(
            "#.#
             #.#
             ###
             ...",
        );
        let res = resolved(&img);
        let left = res[0];
        assert_ne!(left, 0);
        assert_eq!(res[2], left);
        assert_eq!(res[8], left);
    }

    #[test]
    fn odd_height_trailing_row_connects() {
        let img = BinaryImage::parse(
            "#..
             #..
             ##.",
        );
        let (labels, created, _) = scan(&img);
        assert_eq!(created, 1);
        assert_eq!(labels[6], 1);
        assert_eq!(labels[7], 1);
    }

    #[test]
    fn pair_bound_respected_on_adversarial_pattern() {
        // e-row all background, g-row alternating: creates exactly ceil(w/2).
        let img = BinaryImage::parse(
            "........
             #.#.#.#.",
        );
        let (_, created, _) = scan(&img);
        assert_eq!(created as usize, 4);
        assert_eq!(super::super::max_labels_two_line(2, 8), 4);
    }

    #[test]
    fn chunk_offset_and_row_range() {
        let img = BinaryImage::parse(
            "###
             ###
             ###
             ###",
        );
        // scan only rows 2..4 with label offset 5
        let mut labels = vec![0u32; 6];
        let parents = ccl_unionfind::par::ConcurrentParents::new(32);
        let mut store = parents.chunk_store();
        let next = scan_two_line(&img, 2..4, &mut labels, &mut store, 5);
        assert_eq!(next, 6);
        assert!(labels.iter().all(|&l| l == 5));
    }

    #[test]
    fn matches_decision_tree_after_resolution() {
        use crate::scan::scan_decision_tree;
        // deterministic pseudo-random images
        let mut state = 99u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as u8 & 1
        };
        for trial in 0..30 {
            let w = 3 + (trial % 7);
            let h = 2 + (trial % 5);
            let img = BinaryImage::from_fn(w, h, |_, _| rnd() == 1);
            // two-line + RemSP, fully resolved
            let a = resolved(&img);
            // decision tree + RemSP, fully resolved
            let mut labels = vec![0u32; img.len()];
            let mut store = RemSP::new();
            store.new_label(0);
            scan_decision_tree(&img, 0..h, &mut labels, &mut store, 1);
            let b: Vec<u32> = labels.iter().map(|&l| store.find(l)).collect();
            // same partition: compare zero-patterns and co-labeling
            assert_eq!(
                a.iter().map(|&x| x == 0).collect::<Vec<_>>(),
                b.iter().map(|&x| x == 0).collect::<Vec<_>>(),
                "trial {trial}"
            );
            let mut map = std::collections::HashMap::new();
            for (&x, &y) in a.iter().zip(&b) {
                if x != 0 {
                    assert_eq!(*map.entry(x).or_insert(y), y, "trial {trial}");
                }
            }
        }
    }
}
