//! Component analysis built on top of labeling — the operations the
//! paper's motivating applications (inspection, character recognition,
//! medical imaging) run after CCL.
//!
//! Hole counting labels the *background* under the complementary
//! connectivity (4-connected background for 8-connected foreground, the
//! standard duality that keeps the Euler number consistent).

use ccl_image::{BinaryImage, Connectivity};

use crate::label::LabelImage;
use crate::seq::flood::flood_fill_label_with;
use crate::seq::flood_fill_label;

/// Removes foreground components smaller than `min_size` pixels
/// (area opening).
pub fn remove_small_components(image: &BinaryImage, min_size: usize) -> BinaryImage {
    let labels = flood_fill_label(image);
    let sizes = labels.component_sizes();
    BinaryImage::from_fn(image.width(), image.height(), |r, c| {
        let l = labels.get(r, c);
        l != 0 && sizes[l as usize] >= min_size
    })
}

/// Keeps only the largest component (ties: smallest label). An empty
/// image stays empty.
pub fn keep_largest_component(image: &BinaryImage) -> BinaryImage {
    let labels = flood_fill_label(image);
    match labels.largest_component() {
        Some(l) => labels.component_mask(l),
        None => BinaryImage::zeros(image.width(), image.height()),
    }
}

/// Number of holes: background components (under the connectivity dual
/// to `conn`) that do not touch the image border.
pub fn count_holes(image: &BinaryImage, conn: Connectivity) -> u32 {
    let dual = match conn {
        Connectivity::Eight => Connectivity::Four,
        Connectivity::Four => Connectivity::Eight,
    };
    let bg = image.inverted();
    let labels = flood_fill_label_with(&bg, dual);
    let (w, h) = (image.width(), image.height());
    if w == 0 || h == 0 {
        return 0;
    }
    let mut touches_border = vec![false; labels.num_components() as usize + 1];
    for c in 0..w {
        touches_border[labels.get(0, c) as usize] = true;
        touches_border[labels.get(h - 1, c) as usize] = true;
    }
    for r in 0..h {
        touches_border[labels.get(r, 0) as usize] = true;
        touches_border[labels.get(r, w - 1) as usize] = true;
    }
    (1..=labels.num_components() as usize)
        .filter(|&l| !touches_border[l])
        .count() as u32
}

/// Euler number: components minus holes (under `conn` for the foreground
/// and its dual for the background).
pub fn euler_number(image: &BinaryImage, conn: Connectivity) -> i64 {
    let components = flood_fill_label_with(image, conn).num_components() as i64;
    components - count_holes(image, conn) as i64
}

/// Per-component summary produced by [`region_properties`].
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// The component's label.
    pub label: u32,
    /// Pixel count.
    pub area: usize,
    /// Inclusive bounding box `(min_row, min_col, max_row, max_col)`.
    pub bbox: (usize, usize, usize, usize),
    /// Centroid `(mean_row, mean_col)`.
    pub centroid: (f64, f64),
    /// Area divided by bounding-box area, in `(0, 1]` (1 = solid box).
    pub extent: f64,
}

/// Computes per-component properties from a labeling.
pub fn region_properties(labels: &LabelImage) -> Vec<Region> {
    let sizes = labels.component_sizes();
    let boxes = labels.bounding_boxes();
    let centroids = labels.centroids();
    (1..=labels.num_components() as usize)
        .map(|l| {
            let bbox = boxes[l - 1];
            let bbox_area = (bbox.2 - bbox.0 + 1) * (bbox.3 - bbox.1 + 1);
            Region {
                label: l as u32,
                area: sizes[l],
                bbox,
                centroid: centroids[l - 1],
                extent: sizes[l] as f64 / bbox_area as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_small_keeps_big() {
        let img = BinaryImage::parse(
            "##...#
             ##....
             ......
             ....#.",
        );
        let cleaned = remove_small_components(&img, 3);
        assert_eq!(cleaned.count_foreground(), 4); // only the 2x2 block
        assert_eq!(cleaned.get(0, 0), 1);
        assert_eq!(cleaned.get(0, 5), 0);
        assert_eq!(cleaned.get(3, 4), 0);
    }

    #[test]
    fn keep_largest_selects_biggest() {
        let img = BinaryImage::parse(
            "###..#
             ###...
             ......",
        );
        let largest = keep_largest_component(&img);
        assert_eq!(largest.count_foreground(), 6);
        assert_eq!(
            keep_largest_component(&BinaryImage::zeros(3, 3)).count_foreground(),
            0
        );
    }

    #[test]
    fn holes_in_ring() {
        let ring = BinaryImage::parse(
            "#####
             #...#
             #####",
        );
        assert_eq!(count_holes(&ring, Connectivity::Eight), 1);
        assert_eq!(euler_number(&ring, Connectivity::Eight), 0);
        let solid = BinaryImage::ones(4, 4);
        assert_eq!(count_holes(&solid, Connectivity::Eight), 0);
        assert_eq!(euler_number(&solid, Connectivity::Eight), 1);
    }

    #[test]
    fn diagonal_gap_is_not_a_hole_under_8conn() {
        // 8-connected foreground ring with a diagonal "leak": under the
        // 4-connected background dual, the inside still cannot escape.
        let img = BinaryImage::parse(
            "##.
             #.#
             .##",
        );
        // foreground is one 8-connected component; center is enclosed by
        // 4-connectivity rules
        assert_eq!(count_holes(&img, Connectivity::Eight), 1);
    }

    #[test]
    fn double_hole_euler() {
        let img = BinaryImage::parse(
            "#########
             #..###..#
             #########",
        );
        assert_eq!(count_holes(&img, Connectivity::Eight), 2);
        assert_eq!(euler_number(&img, Connectivity::Eight), -1);
    }

    #[test]
    fn region_properties_basics() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let labels = flood_fill_label(&img);
        let regions = region_properties(&labels);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].area, 4);
        assert_eq!(regions[0].bbox, (0, 0, 1, 1));
        assert!((regions[0].extent - 1.0).abs() < 1e-12);
        assert!((regions[0].centroid.0 - 0.5).abs() < 1e-12);
        assert_eq!(regions[1].area, 1);
        assert_eq!(regions[1].bbox, (2, 3, 2, 3));
    }

    #[test]
    fn empty_image_edge_cases() {
        let empty = BinaryImage::zeros(0, 0);
        assert_eq!(count_holes(&empty, Connectivity::Eight), 0);
        assert_eq!(euler_number(&empty, Connectivity::Eight), 0);
        assert!(region_properties(&flood_fill_label(&empty)).is_empty());
    }
}
