//! Component analysis built on top of labeling — the operations the
//! paper's motivating applications (inspection, character recognition,
//! medical imaging) run after CCL.
//!
//! Hole counting labels the *background* under the complementary
//! connectivity (4-connected background for 8-connected foreground, the
//! standard duality that keeps the Euler number consistent).

use ccl_image::{BinaryImage, Connectivity};

use crate::label::LabelImage;
use crate::seq::flood::flood_fill_label_with;
use crate::seq::flood_fill_label;

/// Removes foreground components smaller than `min_size` pixels
/// (area opening).
pub fn remove_small_components(image: &BinaryImage, min_size: usize) -> BinaryImage {
    let labels = flood_fill_label(image);
    let sizes = labels.component_sizes();
    BinaryImage::from_fn(image.width(), image.height(), |r, c| {
        let l = labels.get(r, c);
        l != 0 && sizes[l as usize] >= min_size
    })
}

/// Keeps only the largest component (ties: smallest label). An empty
/// image stays empty.
pub fn keep_largest_component(image: &BinaryImage) -> BinaryImage {
    let labels = flood_fill_label(image);
    match labels.largest_component() {
        Some(l) => labels.component_mask(l),
        None => BinaryImage::zeros(image.width(), image.height()),
    }
}

/// Number of holes: background components (under the connectivity dual
/// to `conn`) that do not touch the image border.
pub fn count_holes(image: &BinaryImage, conn: Connectivity) -> u32 {
    let dual = match conn {
        Connectivity::Eight => Connectivity::Four,
        Connectivity::Four => Connectivity::Eight,
    };
    let bg = image.inverted();
    let labels = flood_fill_label_with(&bg, dual);
    let (w, h) = (image.width(), image.height());
    if w == 0 || h == 0 {
        return 0;
    }
    let mut touches_border = vec![false; labels.num_components() as usize + 1];
    for c in 0..w {
        touches_border[labels.get(0, c) as usize] = true;
        touches_border[labels.get(h - 1, c) as usize] = true;
    }
    for r in 0..h {
        touches_border[labels.get(r, 0) as usize] = true;
        touches_border[labels.get(r, w - 1) as usize] = true;
    }
    (1..=labels.num_components() as usize)
        .filter(|&l| !touches_border[l])
        .count() as u32
}

/// Euler number: components minus holes (under `conn` for the foreground
/// and its dual for the background).
pub fn euler_number(image: &BinaryImage, conn: Connectivity) -> i64 {
    let components = flood_fill_label_with(image, conn).num_components() as i64;
    components - count_holes(image, conn) as i64
}

/// Per-component hole counts (8-connected foreground / 4-connected
/// background) from a labeling, via a direct `χ = V − E + F` census of
/// every component's closed pixel complex in one O(pixels) pass:
/// `holes = 1 − χ` for a connected component. Any two pixels sharing a
/// vertex or an edge of the complex are 8-adjacent — hence in the same
/// component — so every cell belongs to exactly one label and per-label
/// counting is well-defined. Index `l - 1` holds label `l`'s count.
///
/// This is the whole-image oracle for the streamed Euler fold in
/// `ccl-stream` (`ComponentRecord::holes`).
pub fn count_holes_per_label(labels: &LabelImage) -> Vec<u64> {
    let (w, h) = (labels.width() as isize, labels.height() as isize);
    let get = |r: isize, c: isize| -> u32 {
        if r < 0 || c < 0 || r >= h || c >= w {
            0
        } else {
            labels.get(r as usize, c as usize)
        }
    };
    let mut chi = vec![0i64; labels.num_components() as usize + 1];
    // faces (pixels)
    for r in 0..h {
        for c in 0..w {
            let l = get(r, c);
            if l != 0 {
                chi[l as usize] += 1;
            }
        }
    }
    // vertices (grid points), owned by any incident pixel's label
    for r in 0..=h {
        for c in 0..=w {
            let owner = [get(r - 1, c - 1), get(r - 1, c), get(r, c - 1), get(r, c)]
                .into_iter()
                .find(|&l| l != 0);
            if let Some(l) = owner {
                chi[l as usize] += 1;
            }
        }
    }
    // horizontal edges between squares (r-1, c) and (r, c)
    for r in 0..=h {
        for c in 0..w {
            if let Some(l) = [get(r - 1, c), get(r, c)].into_iter().find(|&l| l != 0) {
                chi[l as usize] -= 1;
            }
        }
    }
    // vertical edges between squares (r, c-1) and (r, c)
    for r in 0..h {
        for c in 0..=w {
            if let Some(l) = [get(r, c - 1), get(r, c)].into_iter().find(|&l| l != 0) {
                chi[l as usize] -= 1;
            }
        }
    }
    chi.iter().skip(1).map(|&x| (1 - x).max(0) as u64).collect()
}

/// Per-component summary produced by [`region_properties`].
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// The component's label.
    pub label: u32,
    /// Pixel count.
    pub area: usize,
    /// Inclusive bounding box `(min_row, min_col, max_row, max_col)`.
    pub bbox: (usize, usize, usize, usize),
    /// Centroid `(mean_row, mean_col)`.
    pub centroid: (f64, f64),
    /// Area divided by bounding-box area, in `(0, 1]` (1 = solid box).
    pub extent: f64,
}

/// Computes per-component properties from a labeling.
pub fn region_properties(labels: &LabelImage) -> Vec<Region> {
    let sizes = labels.component_sizes();
    let boxes = labels.bounding_boxes();
    let centroids = labels.centroids();
    (1..=labels.num_components() as usize)
        .map(|l| {
            let bbox = boxes[l - 1];
            let bbox_area = (bbox.2 - bbox.0 + 1) * (bbox.3 - bbox.1 + 1);
            Region {
                label: l as u32,
                area: sizes[l],
                bbox,
                centroid: centroids[l - 1],
                extent: sizes[l] as f64 / bbox_area as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_small_keeps_big() {
        let img = BinaryImage::parse(
            "##...#
             ##....
             ......
             ....#.",
        );
        let cleaned = remove_small_components(&img, 3);
        assert_eq!(cleaned.count_foreground(), 4); // only the 2x2 block
        assert_eq!(cleaned.get(0, 0), 1);
        assert_eq!(cleaned.get(0, 5), 0);
        assert_eq!(cleaned.get(3, 4), 0);
    }

    #[test]
    fn keep_largest_selects_biggest() {
        let img = BinaryImage::parse(
            "###..#
             ###...
             ......",
        );
        let largest = keep_largest_component(&img);
        assert_eq!(largest.count_foreground(), 6);
        assert_eq!(
            keep_largest_component(&BinaryImage::zeros(3, 3)).count_foreground(),
            0
        );
    }

    #[test]
    fn holes_in_ring() {
        let ring = BinaryImage::parse(
            "#####
             #...#
             #####",
        );
        assert_eq!(count_holes(&ring, Connectivity::Eight), 1);
        assert_eq!(euler_number(&ring, Connectivity::Eight), 0);
        let solid = BinaryImage::ones(4, 4);
        assert_eq!(count_holes(&solid, Connectivity::Eight), 0);
        assert_eq!(euler_number(&solid, Connectivity::Eight), 1);
    }

    #[test]
    fn per_label_holes_census() {
        // figure-eight (2 holes), a lone pixel (0), and a diagonal-gap
        // ring (1 hole) — per component, attributed by label
        let img = BinaryImage::parse(
            "#####..##
             #.#.#.#.#
             #####.##.",
        );
        let labels = flood_fill_label(&img);
        let per_label = count_holes_per_label(&labels);
        assert_eq!(per_label.len(), labels.num_components() as usize);
        let mut sorted = per_label.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        let total: u64 = per_label.iter().sum();
        assert_eq!(total, count_holes(&img, Connectivity::Eight) as u64);

        let empty = count_holes_per_label(&flood_fill_label(&BinaryImage::zeros(3, 3)));
        assert!(empty.is_empty());
    }

    #[test]
    fn diagonal_gap_is_not_a_hole_under_8conn() {
        // 8-connected foreground ring with a diagonal "leak": under the
        // 4-connected background dual, the inside still cannot escape.
        let img = BinaryImage::parse(
            "##.
             #.#
             .##",
        );
        // foreground is one 8-connected component; center is enclosed by
        // 4-connectivity rules
        assert_eq!(count_holes(&img, Connectivity::Eight), 1);
    }

    #[test]
    fn double_hole_euler() {
        let img = BinaryImage::parse(
            "#########
             #..###..#
             #########",
        );
        assert_eq!(count_holes(&img, Connectivity::Eight), 2);
        assert_eq!(euler_number(&img, Connectivity::Eight), -1);
    }

    #[test]
    fn region_properties_basics() {
        let img = BinaryImage::parse(
            "##..
             ##..
             ...#",
        );
        let labels = flood_fill_label(&img);
        let regions = region_properties(&labels);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].area, 4);
        assert_eq!(regions[0].bbox, (0, 0, 1, 1));
        assert!((regions[0].extent - 1.0).abs() < 1e-12);
        assert!((regions[0].centroid.0 - 0.5).abs() < 1e-12);
        assert_eq!(regions[1].area, 1);
        assert_eq!(regions[1].bbox, (2, 3, 2, 3));
    }

    #[test]
    fn empty_image_edge_cases() {
        let empty = BinaryImage::zeros(0, 0);
        assert_eq!(count_holes(&empty, Connectivity::Eight), 0);
        assert_eq!(euler_number(&empty, Connectivity::Eight), 0);
        assert!(region_properties(&flood_fill_label(&empty)).is_empty());
    }
}
