//! Labeling verification utilities.
//!
//! Used throughout the test suite and available to library users who want
//! to validate outputs (e.g. after porting to a new platform).

use std::collections::HashMap;

use ccl_image::{BinaryImage, Connectivity};

use crate::label::LabelImage;
use crate::seq::flood_fill_label_with;

/// Whether two labelings denote the same partition: identical dimensions,
/// identical background, and a label bijection between foregrounds.
pub fn labelings_equivalent(a: &LabelImage, b: &LabelImage) -> bool {
    if a.width() != b.width() || a.height() != b.height() {
        return false;
    }
    if a.num_components() != b.num_components() {
        return false;
    }
    let mut fwd: HashMap<u32, u32> = HashMap::new();
    let mut bwd: HashMap<u32, u32> = HashMap::new();
    for (&la, &lb) in a.as_slice().iter().zip(b.as_slice()) {
        if (la == 0) != (lb == 0) {
            return false;
        }
        if la == 0 {
            continue;
        }
        if *fwd.entry(la).or_insert(lb) != lb {
            return false;
        }
        if *bwd.entry(lb).or_insert(la) != la {
            return false;
        }
    }
    true
}

/// Fully validates `labels` as a connected-component labeling of `image`
/// under `conn`:
///
/// 1. background/foreground agreement,
/// 2. labels are consecutive `1..=num_components`,
/// 3. adjacent foreground pixels share a label,
/// 4. equal-labeled pixels are actually connected (bijection against a
///    flood-fill reference).
///
/// Returns a description of the first violation found.
pub fn verify_labeling(
    image: &BinaryImage,
    labels: &LabelImage,
    conn: Connectivity,
) -> Result<(), String> {
    if image.width() != labels.width() || image.height() != labels.height() {
        return Err(format!(
            "dimension mismatch: image {}x{}, labels {}x{}",
            image.width(),
            image.height(),
            labels.width(),
            labels.height()
        ));
    }
    let (w, h) = (image.width(), image.height());
    // 1. background agreement + 2. label range
    let mut seen = vec![false; labels.num_components() as usize + 1];
    for r in 0..h {
        for c in 0..w {
            let l = labels.get(r, c);
            if (image.get(r, c) == 0) != (l == 0) {
                return Err(format!("background mismatch at ({r}, {c})"));
            }
            if l > labels.num_components() {
                return Err(format!("label {l} out of range at ({r}, {c})"));
            }
            seen[l as usize] = true;
        }
    }
    for (l, &s) in seen.iter().enumerate().skip(1) {
        if !s {
            return Err(format!("label {l} unused (labels not consecutive)"));
        }
    }
    // 3. adjacency consistency
    for r in 0..h {
        for c in 0..w {
            if image.get(r, c) == 0 {
                continue;
            }
            let l = labels.get(r, c);
            for &(dr, dc) in conn.offsets() {
                let nr = r as isize + dr;
                let nc = c as isize + dc;
                if nr < 0 || nc < 0 || nr as usize >= h || nc as usize >= w {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                if image.get(nr, nc) == 1 && labels.get(nr, nc) != l {
                    return Err(format!(
                        "adjacent pixels ({r},{c}) and ({nr},{nc}) have labels {l} vs {}",
                        labels.get(nr, nc)
                    ));
                }
            }
        }
    }
    // 4. connectivity (no label spans two components)
    let reference = flood_fill_label_with(image, conn);
    if !labelings_equivalent(&reference, labels) {
        return Err(format!(
            "partition differs from flood fill: {} vs {} components",
            labels.num_components(),
            reference.num_components()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{aremsp, flood_fill_label};

    #[test]
    fn equivalent_to_itself_and_permutations() {
        let img = BinaryImage::parse("#.# .#. #.#");
        let a = flood_fill_label(&img);
        assert!(labelings_equivalent(&a, &a));
        // permute labels 1<->5 keeping a valid bijection
        let permuted: Vec<u32> = a
            .as_slice()
            .iter()
            .map(|&l| match l {
                0 => 0,
                l => a.num_components() + 1 - l,
            })
            .collect();
        let b = LabelImage::from_raw(a.width(), a.height(), permuted, a.num_components());
        assert!(labelings_equivalent(&a, &b));
    }

    #[test]
    fn detects_split_component() {
        let img = BinaryImage::parse("##");
        let good = flood_fill_label(&img);
        let bad = LabelImage::from_raw(2, 1, vec![1, 2], 2);
        assert!(!labelings_equivalent(&good, &bad));
        assert!(verify_labeling(&img, &bad, Connectivity::Eight).is_err());
    }

    #[test]
    fn detects_merged_components() {
        let img = BinaryImage::parse("#.#");
        let bad = LabelImage::from_raw(3, 1, vec![1, 0, 1], 1);
        let good = flood_fill_label(&img);
        assert!(!labelings_equivalent(&good, &bad));
        let err = verify_labeling(&img, &bad, Connectivity::Eight).unwrap_err();
        assert!(err.contains("flood fill"), "{err}");
    }

    #[test]
    fn detects_background_mismatch() {
        let img = BinaryImage::parse("#.");
        let bad = LabelImage::from_raw(2, 1, vec![1, 1], 1);
        let err = verify_labeling(&img, &bad, Connectivity::Eight).unwrap_err();
        assert!(err.contains("background"), "{err}");
    }

    #[test]
    fn detects_non_consecutive_labels() {
        let img = BinaryImage::parse("#.#");
        let bad = LabelImage::from_raw(3, 1, vec![1, 0, 3], 3);
        let err = verify_labeling(&img, &bad, Connectivity::Eight).unwrap_err();
        assert!(err.contains("unused"), "{err}");
    }

    #[test]
    fn accepts_correct_labeling() {
        let img = BinaryImage::parse("##.. ..## #..#");
        let li = aremsp(&img);
        assert!(verify_labeling(&img, &li, Connectivity::Eight).is_ok());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = flood_fill_label(&BinaryImage::zeros(2, 2));
        let b = flood_fill_label(&BinaryImage::zeros(3, 2));
        assert!(!labelings_equivalent(&a, &b));
    }
}
