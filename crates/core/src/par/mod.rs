//! PAREMSP — the paper's parallel algorithm (§IV, Algorithm 7) and its
//! supporting machinery.

pub mod multipass_par;
pub mod paremsp;
pub mod partition;
pub mod rayon_impl;

pub use multipass_par::multipass_parallel;
pub use paremsp::{paremsp, paremsp_with, MergerKind, MergerStore, ParemspConfig, PhaseTimings};
pub use partition::{partition_rows, Chunk};
pub use rayon_impl::paremsp_rayon;
