//! PAREMSP — the paper's Algorithm 7.
//!
//! Parallel phases run as tasks on rayon's persistent global pool, with
//! concurrency bounded by the number of chunk tasks — the same execution
//! model as the paper's OpenMP runtime (a worker pool that outlives each
//! parallel region). Spawning OS threads per call instead costs ~0.5 ms
//! per thread, which would swamp the ≤ 1 Mpixel images of Table IV.
//!
//! Four phases, each timed separately so Figures 5a ("local") and 5b
//! ("local + merge") can be reproduced:
//!
//! 1. **Local scan** — every thread runs the AREMSP scan (Algorithm 6 +
//!    Rem's algorithm) on its own row chunk with a disjoint provisional
//!    label range. Labels live in per-chunk `&mut` slices split out of one
//!    buffer; equivalences live in the shared [`ConcurrentParents`] array,
//!    which is contention-free in this phase because ranges are disjoint.
//! 2. **Boundary merge** — for every chunk boundary row `r`, the labels of
//!    row `r` are merged with their neighbours in row `r-1` (Algorithm 7
//!    lines 10–20) using a parallel merger: the lock-guarded MERGER of
//!    Algorithm 8 or its CAS variant.
//! 3. **Flatten** — sparse FLATTEN over the shared label space
//!    (sequential per the paper — it is O(label slots) and, as Figure 5
//!    shows, negligible next to the scan; a parallel extension is
//!    available via [`ParemspConfig::parallel_flatten`]).
//! 4. **Relabel** — every pixel's provisional label is replaced by its
//!    final label, in parallel over the same chunks.

use std::time::{Duration, Instant};

use ccl_image::BinaryImage;
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents, LockedMerger};
use ccl_unionfind::EquivalenceStore;

use crate::label::LabelImage;
use crate::scan::{merge_seam, scan_two_line};

use super::partition::{partition_rows, total_label_slots};

/// Which boundary-merge implementation PAREMSP uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergerKind {
    /// The paper's Algorithm 8: per-node (striped) locks on root links.
    #[default]
    Locked,
    /// Lock-free variant: every write validated with `compare_exchange`.
    Cas,
}

impl MergerKind {
    /// All variants, in declaration order (for sweeps and CLI help).
    pub const ALL: [MergerKind; 2] = [MergerKind::Locked, MergerKind::Cas];
}

impl std::fmt::Display for MergerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MergerKind::Locked => "locked",
            MergerKind::Cas => "cas",
        })
    }
}

impl std::str::FromStr for MergerKind {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) names (case-insensitive).
    /// The error message enumerates every valid variant, generated from
    /// [`MergerKind::ALL`] so it can never drift from the enum.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "locked" | "lock" => Ok(MergerKind::Locked),
            "cas" => Ok(MergerKind::Cas),
            other => {
                let valid: Vec<String> = MergerKind::ALL.iter().map(ToString::to_string).collect();
                Err(format!(
                    "unknown merger {other:?} (valid values: {})",
                    valid.join(", ")
                ))
            }
        }
    }
}

/// Configuration for [`paremsp_with`].
#[derive(Debug, Clone)]
pub struct ParemspConfig {
    /// Worker thread count (≥ 1). The actual chunk count may be lower for
    /// very short images.
    pub threads: usize,
    /// Boundary-merge implementation.
    pub merger: MergerKind,
    /// Lock stripes for [`MergerKind::Locked`]; `None` = default (2^16).
    pub lock_stripes: Option<usize>,
    /// Run the FLATTEN phase in parallel too (extension beyond the paper,
    /// which flattens sequentially; see the `ablation_flatten` bench for
    /// when it pays off). Final labels are unchanged either way.
    pub parallel_flatten: bool,
}

impl ParemspConfig {
    /// Config with the given thread count and default merger.
    pub fn with_threads(threads: usize) -> Self {
        ParemspConfig {
            threads,
            merger: MergerKind::default(),
            lock_stripes: None,
            parallel_flatten: false,
        }
    }

    /// Builder: replaces the boundary-merge implementation.
    pub fn with_merger(mut self, merger: MergerKind) -> Self {
        self.merger = merger;
        self
    }
}

impl Default for ParemspConfig {
    fn default() -> Self {
        Self::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

/// Wall-clock duration of each PAREMSP phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: per-chunk AREMSP scans (the paper's "local" time, Fig. 5a).
    pub scan: Duration,
    /// Phase 2: boundary merging (Fig. 5b measures scan + merge).
    pub merge: Duration,
    /// Phase 3: sparse FLATTEN.
    pub flatten: Duration,
    /// Phase 4: final labeling pass.
    pub relabel: Duration,
}

impl PhaseTimings {
    /// Scan + merge — the quantity Figure 5b calls "local + merge".
    pub fn local_plus_merge(&self) -> Duration {
        self.scan + self.merge
    }

    /// Total across all four phases.
    pub fn total(&self) -> Duration {
        self.scan + self.merge + self.flatten + self.relabel
    }
}

/// PAREMSP with default configuration at the given thread count.
///
/// ```
/// use ccl_core::par::paremsp;
/// use ccl_image::BinaryImage;
///
/// let img = BinaryImage::parse("##.. ..## #..#");
/// let labels = paremsp(&img, 4);
/// assert_eq!(labels.num_components(), 2); // diagonals connect under 8-conn
/// ```
pub fn paremsp(image: &BinaryImage, threads: usize) -> LabelImage {
    paremsp_with(image, &ParemspConfig::with_threads(threads)).0
}

/// PAREMSP with full configuration; returns the labeling and per-phase
/// timings.
pub fn paremsp_with(image: &BinaryImage, cfg: &ParemspConfig) -> (LabelImage, PhaseTimings) {
    match cfg.merger {
        MergerKind::Locked => {
            let merger = match cfg.lock_stripes {
                Some(s) => LockedMerger::with_stripes(s),
                None => LockedMerger::new(),
            };
            run(image, cfg.threads, &merger, cfg.parallel_flatten)
        }
        MergerKind::Cas => run(image, cfg.threads, &CasMerger::new(), cfg.parallel_flatten),
    }
}

fn run<M: ConcurrentMerger>(
    image: &BinaryImage,
    threads: usize,
    merger: &M,
    parallel_flatten: bool,
) -> (LabelImage, PhaseTimings) {
    let (w, h) = (image.width(), image.height());
    let mut timings = PhaseTimings::default();
    let chunks = partition_rows(h, w, threads.max(1));
    let mut labels = vec![0u32; w * h];
    if chunks.is_empty() || w == 0 {
        return (LabelImage::from_raw(w, h, labels, 0), timings);
    }
    let mut parents = ConcurrentParents::new(total_label_slots(&chunks));

    // Phase 1: local scans over disjoint row chunks and label ranges.
    // Each task reports its used label range end so the flatten phase can
    // skip the unused gaps.
    let t0 = Instant::now();
    let mut used_ends: Vec<u32> = chunks.iter().map(|c| c.label_offset).collect();
    rayon::scope(|s| {
        let mut rest: &mut [u32] = &mut labels;
        for (chunk, used_end) in chunks.iter().zip(used_ends.iter_mut()) {
            let (mine, tail) = rest.split_at_mut(chunk.num_rows() * w);
            rest = tail;
            let parents = &parents;
            s.spawn(move |_| {
                let mut store = parents.chunk_store();
                let next = scan_two_line(
                    image,
                    chunk.rows.clone(),
                    mine,
                    &mut store,
                    chunk.label_offset,
                );
                debug_assert!(
                    next <= chunk.label_offset + chunk.label_capacity,
                    "chunk exceeded its label range"
                );
                *used_end = next;
            });
        }
    });
    timings.scan = t0.elapsed();
    let used_ranges: Vec<(u32, u32)> = chunks
        .iter()
        .zip(&used_ends)
        .map(|(c, &end)| (c.label_offset, end))
        .collect();

    // Phase 2: merge chunk-boundary rows (Algorithm 7 lines 10–20).
    let t0 = Instant::now();
    if chunks.len() > 1 {
        let labels_ref = &labels;
        rayon::scope(|s| {
            for chunk in &chunks[1..] {
                let parents = &parents;
                let r = chunk.rows.start;
                s.spawn(move |_| {
                    merge_boundary_row(labels_ref, w, r, parents, merger);
                });
            }
        });
    }
    timings.merge = t0.elapsed();

    // Phase 3: FLATTEN over the used label ranges (sequential per the
    // paper, or the parallel extension when configured).
    let t0 = Instant::now();
    let num_components = if parallel_flatten {
        parents.flatten_ranges_parallel(&used_ranges)
    } else {
        parents.flatten_ranges(&used_ranges)
    };
    timings.flatten = t0.elapsed();

    // Phase 4: final labeling, parallel over the same chunks.
    let t0 = Instant::now();
    rayon::scope(|s| {
        let mut rest: &mut [u32] = &mut labels;
        for chunk in &chunks {
            let (mine, tail) = rest.split_at_mut(chunk.num_rows() * w);
            rest = tail;
            let parents = &parents;
            s.spawn(move |_| {
                for l in mine {
                    // background slot 0 resolves to 0, no branch needed
                    *l = parents.resolve(*l);
                }
            });
        }
    });
    timings.relabel = t0.elapsed();

    (LabelImage::from_raw(w, h, labels, num_components), timings)
}

/// Adapts a [`ConcurrentMerger`] over a [`ConcurrentParents`] array to the
/// sequential [`EquivalenceStore`] interface, so the shared seam logic
/// ([`merge_seam`]) drives both PAREMSP's parallel boundary phase and any
/// sequential consumer (the `ccl-stream` strip labeler).
///
/// Only `merge` is supported; labels must already be registered by the
/// scan phase.
pub struct MergerStore<'a, M: ConcurrentMerger> {
    parents: &'a ConcurrentParents,
    merger: &'a M,
}

impl<'a, M: ConcurrentMerger> MergerStore<'a, M> {
    /// Wraps the shared parent array and a merger implementation.
    pub fn new(parents: &'a ConcurrentParents, merger: &'a M) -> Self {
        MergerStore { parents, merger }
    }
}

impl<M: ConcurrentMerger> EquivalenceStore for MergerStore<'_, M> {
    fn new_label(&mut self, _label: u32) {
        unreachable!("MergerStore only merges; labels are registered by the scan phase");
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        self.merger.merge(self.parents, x, y);
        // A common representative (not necessarily the root): x's set now
        // contains y. Callers of the merge phase ignore the return value.
        x
    }
}

/// Merges the labels of boundary row `r` with row `r-1` (the last row of
/// the previous chunk) — Algorithm 7 lines 13–20, shared with the
/// sequential consumers through [`merge_seam`].
fn merge_boundary_row<M: ConcurrentMerger>(
    labels: &[u32],
    w: usize,
    r: usize,
    parents: &ConcurrentParents,
    merger: &M,
) {
    debug_assert!(r > 0);
    let cur = r * w;
    let up = (r - 1) * w;
    let mut store = MergerStore::new(parents, merger);
    merge_seam(&labels[up..up + w], &labels[cur..cur + w], &mut store);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::aremsp;

    fn pseudo_random_image(w: usize, h: usize, density_pct: u64, seed: u64) -> BinaryImage {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        BinaryImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < density_pct
        })
    }

    #[test]
    fn matches_sequential_on_fixtures() {
        for pic in [
            "####
             ####
             ####
             ####",
            "#.#.
             .#.#
             #.#.
             .#.#",
            "#..#
             ....
             #..#
             ....",
        ] {
            let img = BinaryImage::parse(pic);
            let seq = aremsp(&img);
            for threads in 1..=4 {
                assert_eq!(paremsp(&img, threads), seq, "{pic} with {threads} threads");
            }
        }
    }

    #[test]
    fn matches_sequential_across_thread_counts_and_densities() {
        for &density in &[5u64, 30, 50, 70, 95] {
            let img = pseudo_random_image(64, 48, density, density);
            let seq = aremsp(&img);
            for threads in [1, 2, 3, 5, 8, 16] {
                let par = paremsp(&img, threads);
                assert_eq!(par, seq, "density {density}%, {threads} threads");
            }
        }
    }

    #[test]
    fn cas_and_locked_mergers_agree() {
        let img = pseudo_random_image(80, 60, 60, 42);
        let seq = aremsp(&img);
        for merger in [MergerKind::Locked, MergerKind::Cas] {
            let cfg = ParemspConfig {
                threads: 6,
                merger,
                lock_stripes: Some(8), // tiny stripe count: force contention
                parallel_flatten: false,
            };
            let (li, timings) = paremsp_with(&img, &cfg);
            assert_eq!(li, seq, "{merger:?}");
            assert!(timings.total() >= timings.local_plus_merge());
        }
    }

    #[test]
    fn component_spanning_all_chunks() {
        // a single vertical line crosses every chunk boundary
        let img = BinaryImage::from_fn(9, 64, |_, c| c == 4);
        for threads in [1, 2, 4, 8] {
            let li = paremsp(&img, threads);
            assert_eq!(li.num_components(), 1, "{threads} threads");
        }
    }

    #[test]
    fn boundary_diagonals_merge_without_b() {
        // zig-zag crossing the boundary only diagonally
        let img = BinaryImage::from_fn(8, 8, |r, c| (r + c) % 2 == 0);
        let seq = aremsp(&img);
        assert_eq!(seq.num_components(), 1);
        for threads in [2, 4] {
            assert_eq!(paremsp(&img, threads), seq);
        }
    }

    #[test]
    fn empty_and_tiny_images() {
        for (w, h) in [(0, 0), (0, 5), (5, 0), (1, 1), (3, 1), (1, 3)] {
            let img = pseudo_random_image(w, h, 50, 7);
            let seq = aremsp(&img);
            for threads in [1, 2, 4] {
                assert_eq!(paremsp(&img, threads), seq, "{w}x{h}, {threads} threads");
            }
        }
    }

    #[test]
    fn odd_heights_with_many_threads() {
        for h in [5, 7, 9, 11, 13] {
            let img = pseudo_random_image(17, h, 45, h as u64);
            let seq = aremsp(&img);
            for threads in [2, 3, 7, 24] {
                assert_eq!(paremsp(&img, threads), seq, "h={h} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_flatten_extension_matches() {
        let img = pseudo_random_image(120, 90, 55, 17);
        let seq = aremsp(&img);
        for threads in [2, 6, 24] {
            let cfg = ParemspConfig {
                parallel_flatten: true,
                ..ParemspConfig::with_threads(threads)
            };
            let (out, _) = paremsp_with(&img, &cfg);
            assert_eq!(out, seq, "{threads} threads");
        }
    }

    #[test]
    fn timings_are_populated() {
        let img = pseudo_random_image(128, 128, 50, 3);
        let (_, t) = paremsp_with(&img, &ParemspConfig::with_threads(4));
        assert!(t.total() > Duration::ZERO);
        assert!(t.scan > Duration::ZERO);
    }

    #[test]
    fn merger_kind_display_from_str_round_trip() {
        for kind in MergerKind::ALL {
            let parsed: MergerKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("LOCKED".parse::<MergerKind>().unwrap(), MergerKind::Locked);
        assert_eq!("Cas".parse::<MergerKind>().unwrap(), MergerKind::Cas);
        let err = "spinlock".parse::<MergerKind>().unwrap_err();
        for kind in MergerKind::ALL {
            assert!(
                err.contains(&kind.to_string()),
                "error must list {kind}: {err}"
            );
        }
    }

    #[test]
    fn with_merger_builder_sets_only_merger() {
        let cfg = ParemspConfig::with_threads(3).with_merger(MergerKind::Cas);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.merger, MergerKind::Cas);
        assert!(cfg.lock_stripes.is_none());
        assert!(!cfg.parallel_flatten);
    }

    #[test]
    fn stress_repeated_runs_are_deterministic() {
        let img = pseudo_random_image(96, 96, 55, 11);
        let reference = paremsp(&img, 8);
        for _ in 0..10 {
            assert_eq!(paremsp(&img, 8), reference);
        }
    }
}
