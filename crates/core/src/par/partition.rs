//! Row partitioning for PAREMSP (Algorithm 7 lines 2–7).
//!
//! The image is divided row-wise into per-thread chunks. Because the scan
//! processes two rows at a time, chunk boundaries fall on even row indices
//! (the paper: `numiter ← row/2`, `size ← 2 · chunk`). Each chunk also
//! receives a disjoint provisional-label range, sized with the tight
//! per-pair bound ⌈w/2⌉ (see `ccl-core::scan`), replacing the paper's
//! looser `count ← start × col` offsets; DESIGN.md §6 discusses the
//! difference.

use std::ops::Range;

/// One thread's share of the image and of the provisional label space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Image rows owned by this chunk (half-open).
    pub rows: Range<usize>,
    /// First provisional label this chunk may assign.
    pub label_offset: u32,
    /// Number of labels reserved for this chunk.
    pub label_capacity: u32,
}

impl Chunk {
    /// Number of rows in the chunk.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Splits `height` rows into at most `threads` chunks of even height
/// (except possibly the last), assigning disjoint label ranges based on
/// the two-line scan bound for a `width`-column image.
///
/// Returns an empty vector for an empty image. The number of chunks may be
/// smaller than `threads` when there are fewer row pairs than threads.
pub fn partition_rows(height: usize, width: usize, threads: usize) -> Vec<Chunk> {
    assert!(threads >= 1, "at least one thread required");
    if height == 0 {
        return Vec::new();
    }
    let pairs = height.div_ceil(2); // numiter, counting a trailing odd row
    let nchunks = threads.min(pairs);
    let per_label_pair = width.div_ceil(2) as u32; // ⌈w/2⌉ labels per pair
    let base = pairs / nchunks;
    let extra = pairs % nchunks; // first `extra` chunks take one more pair
    let mut chunks = Vec::with_capacity(nchunks);
    let mut pair_start = 0usize;
    let mut label_offset = 1u32; // label 0 = background
    for t in 0..nchunks {
        let npairs = base + usize::from(t < extra);
        let row_start = pair_start * 2;
        let row_end = ((pair_start + npairs) * 2).min(height);
        let capacity = npairs as u32 * per_label_pair;
        chunks.push(Chunk {
            rows: row_start..row_end,
            label_offset,
            label_capacity: capacity,
        });
        pair_start += npairs;
        label_offset += capacity;
    }
    chunks
}

/// Total provisional-label slots needed (including background slot 0) for
/// the given partition.
pub fn total_label_slots(chunks: &[Chunk]) -> usize {
    chunks
        .last()
        .map_or(1, |c| (c.label_offset + c.label_capacity) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(height: usize, width: usize, threads: usize) {
        let chunks = partition_rows(height, width, threads);
        if height == 0 {
            assert!(chunks.is_empty());
            return;
        }
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= threads);
        // rows cover the image exactly, in order
        assert_eq!(chunks[0].rows.start, 0);
        assert_eq!(chunks.last().unwrap().rows.end, height);
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].rows.end, pair[1].rows.start);
            // boundaries on even rows
            assert_eq!(pair[1].rows.start % 2, 0);
            // label ranges contiguous and disjoint
            assert_eq!(
                pair[0].label_offset + pair[0].label_capacity,
                pair[1].label_offset
            );
        }
        for c in &chunks {
            assert!(c.num_rows() > 0);
            // capacity covers the scan bound for the chunk
            let bound = crate::scan::max_labels_two_line(c.num_rows(), width);
            assert!(
                c.label_capacity as usize >= bound,
                "chunk {c:?} capacity below bound {bound}"
            );
        }
        assert_eq!(chunks[0].label_offset, 1);
    }

    #[test]
    fn covers_exhaustive_small_space() {
        for height in 0..20 {
            for width in [0, 1, 5, 8] {
                for threads in 1..8 {
                    check_partition(height, width, threads);
                }
            }
        }
    }

    #[test]
    fn one_thread_single_chunk() {
        let chunks = partition_rows(11, 7, 1);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].rows, 0..11);
        assert_eq!(chunks[0].label_offset, 1);
    }

    #[test]
    fn more_threads_than_pairs() {
        let chunks = partition_rows(4, 10, 16);
        assert_eq!(chunks.len(), 2); // only 2 pairs available
        assert_eq!(chunks[0].rows, 0..2);
        assert_eq!(chunks[1].rows, 2..4);
    }

    #[test]
    fn odd_height_last_chunk_odd() {
        let chunks = partition_rows(9, 6, 2);
        assert_eq!(chunks.last().unwrap().rows.end, 9);
        let total: usize = chunks.iter().map(Chunk::num_rows).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn label_slots_account_for_background() {
        let chunks = partition_rows(8, 8, 4);
        let slots = total_label_slots(&chunks);
        // 4 pairs x ceil(8/2)=4 labels + background
        assert_eq!(slots, 17);
        assert_eq!(total_label_slots(&[]), 1);
    }

    #[test]
    fn balanced_distribution() {
        let chunks = partition_rows(100, 10, 3);
        // 50 pairs over 3 chunks: 17/17/16 pairs = 34/34/32 rows
        let rows: Vec<usize> = chunks.iter().map(Chunk::num_rows).collect();
        assert_eq!(rows, vec![34, 34, 32]);
    }
}
