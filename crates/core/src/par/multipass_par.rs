//! Strip-parallel repeated-pass labeling — the *prior art* parallel CCL
//! baseline the paper positions PAREMSP against (§II cites Niknam,
//! Thulasiraman & Camorlinga's OpenMP parallelization of Suzuki's
//! repeated-pass algorithm, which peaked at a 2.5× speedup on 4 threads).
//!
//! Each global iteration runs a forward and a backward min-propagation
//! sweep, parallelized over row strips. Strip-boundary reads may race
//! with neighbour-strip writes, but min-propagation over atomics is
//! monotone (labels only decrease) and idempotent, so races can only
//! delay convergence, never corrupt it; iteration continues until a full
//! sweep changes nothing. The expected (and measured — see the
//! `ablation_prior_art` bench) behaviour is poor scaling: every iteration
//! touches the whole image, and the iteration count grows with component
//! "snakiness", which is exactly the weakness two-pass algorithms remove.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use ccl_image::BinaryImage;

use crate::label::LabelImage;

/// Strip-parallel multipass labeling (8-connectivity) on `threads`
/// threads. Produces canonical raster numbering (like
/// [`crate::seq::multipass()`]).
pub fn multipass_parallel(image: &BinaryImage, threads: usize) -> LabelImage {
    let (w, h) = (image.width(), image.height());
    if w == 0 || h == 0 {
        return LabelImage::from_raw(w, h, vec![0; w * h], 0);
    }
    // initial labels: raster index + 1 for foreground, 0 background
    let labels: Vec<AtomicU32> = (0..w * h)
        .map(|i| {
            AtomicU32::new(if image.as_slice()[i] == 1 {
                (i + 1) as u32
            } else {
                0
            })
        })
        .collect();
    let threads = threads.max(1).min(h);
    let rows_per_strip = h.div_ceil(threads);
    let strips: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * rows_per_strip, ((t + 1) * rows_per_strip).min(h)))
        .filter(|(a, b)| a < b)
        .collect();

    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // forward sweep over all strips in parallel (rayon pool tasks,
        // like the OpenMP regions of the prior-art implementation)
        rayon::scope(|s| {
            for &(r0, r1) in &strips {
                let labels = &labels;
                let changed = &changed;
                s.spawn(move |_| {
                    if sweep(labels, w, h, r0, r1, false) {
                        changed.store(true, Ordering::Relaxed);
                    }
                });
            }
        });
        // backward sweep
        rayon::scope(|s| {
            for &(r0, r1) in &strips {
                let labels = &labels;
                let changed = &changed;
                s.spawn(move |_| {
                    if sweep(labels, w, h, r0, r1, true) {
                        changed.store(true, Ordering::Relaxed);
                    }
                });
            }
        });
    }

    // consecutive renumbering by raster order of first occurrence
    let mut raw: Vec<u32> = labels.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut remap = std::collections::HashMap::new();
    let mut next = 0u32;
    for l in &mut raw {
        if *l != 0 {
            *l = *remap.entry(*l).or_insert_with(|| {
                next += 1;
                next
            });
        }
    }
    LabelImage::from_raw(w, h, raw, next)
}

/// One min-propagation sweep over rows `r0..r1`; returns whether any
/// label changed. Forward sweeps read the prior mask (and self); backward
/// sweeps the subsequent mask. Neighbour loads may observe concurrent
/// strips mid-update; `fetch_min` keeps every update monotone.
fn sweep(labels: &[AtomicU32], w: usize, h: usize, r0: usize, r1: usize, backward: bool) -> bool {
    let mut changed = false;
    let get = |r: isize, c: isize| -> u32 {
        if r < 0 || c < 0 || r as usize >= h || c as usize >= w {
            0
        } else {
            labels[r as usize * w + c as usize].load(Ordering::Relaxed)
        }
    };
    let rows: Box<dyn Iterator<Item = usize>> = if backward {
        Box::new((r0..r1).rev())
    } else {
        Box::new(r0..r1)
    };
    for r in rows {
        let cols: Box<dyn Iterator<Item = usize>> = if backward {
            Box::new((0..w).rev())
        } else {
            Box::new(0..w)
        };
        for c in cols {
            let i = r * w + c;
            let cur = labels[i].load(Ordering::Relaxed);
            if cur == 0 {
                continue;
            }
            let (ri, ci) = (r as isize, c as isize);
            let neigh = if backward {
                [
                    get(ri, ci + 1),
                    get(ri + 1, ci - 1),
                    get(ri + 1, ci),
                    get(ri + 1, ci + 1),
                ]
            } else {
                [
                    get(ri - 1, ci - 1),
                    get(ri - 1, ci),
                    get(ri - 1, ci + 1),
                    get(ri, ci - 1),
                ]
            };
            let mut m = cur;
            for n in neigh {
                if n != 0 && n < m {
                    m = n;
                }
            }
            if m < cur {
                labels[i].fetch_min(m, Ordering::Relaxed);
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{flood_fill_label, multipass};

    fn pseudo_random_image(w: usize, h: usize, density_pct: u64, seed: u64) -> BinaryImage {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        BinaryImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < density_pct
        })
    }

    #[test]
    fn matches_flood_fill_on_random_images() {
        for seed in 0..8 {
            let img = pseudo_random_image(60, 44, 50, seed);
            for threads in [1, 2, 4, 8] {
                assert_eq!(
                    multipass_parallel(&img, threads),
                    flood_fill_label(&img),
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_multipass() {
        let img = pseudo_random_image(80, 60, 40, 99);
        assert_eq!(multipass_parallel(&img, 4), multipass(&img));
    }

    #[test]
    fn serpentine_worst_case_converges() {
        use ccl_image::BinaryImage;
        let w = 33;
        let img = BinaryImage::from_fn(w, 25, |r, c| {
            if r % 2 == 0 {
                true
            } else if (r / 2) % 2 == 0 {
                c == w - 1
            } else {
                c == 0
            }
        });
        let li = multipass_parallel(&img, 6);
        assert_eq!(li.num_components(), 1);
        assert_eq!(li, flood_fill_label(&img));
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(
            multipass_parallel(&BinaryImage::zeros(0, 0), 4).num_components(),
            0
        );
        assert_eq!(
            multipass_parallel(&BinaryImage::ones(1, 1), 4).num_components(),
            1
        );
        assert_eq!(
            multipass_parallel(&BinaryImage::zeros(10, 3), 24).num_components(),
            0
        );
    }

    #[test]
    fn repeated_runs_deterministic() {
        let img = pseudo_random_image(70, 50, 55, 7);
        let first = multipass_parallel(&img, 8);
        for _ in 0..5 {
            assert_eq!(multipass_parallel(&img, 8), first);
        }
    }
}
