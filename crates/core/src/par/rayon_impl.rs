//! Rayon back end for PAREMSP.
//!
//! Demonstrates the paper's portability claim on a second scheduler: the
//! same four phases as [`super::paremsp()`], expressed as rayon parallel
//! iterators over the same chunk structure. Chunk count follows the
//! current rayon pool (global by default; wrap in a custom
//! `ThreadPool::install` to pin it).

use ccl_image::BinaryImage;
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents};
use rayon::prelude::*;

use crate::label::LabelImage;
use crate::scan::scan_two_line;

use super::partition::{partition_rows, total_label_slots, Chunk};

/// PAREMSP on the current rayon thread pool (CAS merger).
pub fn paremsp_rayon(image: &BinaryImage) -> LabelImage {
    let threads = rayon::current_num_threads();
    let (w, h) = (image.width(), image.height());
    let chunks = partition_rows(h, w, threads.max(1));
    let mut labels = vec![0u32; w * h];
    if chunks.is_empty() || w == 0 {
        return LabelImage::from_raw(w, h, labels, 0);
    }
    let mut parents = ConcurrentParents::new(total_label_slots(&chunks));
    let merger = CasMerger::new();

    // Phase 1: split the label buffer into per-chunk slices, scan in
    // parallel.
    let mut slices: Vec<(&Chunk, &mut [u32])> = Vec::with_capacity(chunks.len());
    {
        let mut rest: &mut [u32] = &mut labels;
        for chunk in &chunks {
            let (mine, tail) = rest.split_at_mut(chunk.num_rows() * w);
            rest = tail;
            slices.push((chunk, mine));
        }
    }
    slices.par_iter_mut().for_each(|(chunk, slice)| {
        let mut store = parents.chunk_store();
        scan_two_line(
            image,
            chunk.rows.clone(),
            slice,
            &mut store,
            chunk.label_offset,
        );
    });
    drop(slices);

    // Phase 2: boundary rows in parallel.
    let labels_ref = &labels;
    chunks[1..].par_iter().for_each(|chunk| {
        let r = chunk.rows.start;
        let cur = r * w;
        let up = (r - 1) * w;
        for c in 0..w {
            let le = labels_ref[cur + c];
            if le == 0 {
                continue;
            }
            let lb = labels_ref[up + c];
            if lb != 0 {
                merger.merge(&parents, le, lb);
            } else {
                if c > 0 && labels_ref[up + c - 1] != 0 {
                    merger.merge(&parents, le, labels_ref[up + c - 1]);
                }
                if c + 1 < w && labels_ref[up + c + 1] != 0 {
                    merger.merge(&parents, le, labels_ref[up + c + 1]);
                }
            }
        }
    });

    // Phase 3: flatten.
    let num_components = parents.flatten_sparse();

    // Phase 4: relabel.
    let parents_ref = &parents;
    labels.par_chunks_mut(64 * 1024.max(w)).for_each(|chunk| {
        for l in chunk {
            *l = parents_ref.resolve(*l);
        }
    });

    LabelImage::from_raw(w, h, labels, num_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::aremsp;

    fn pseudo_random_image(w: usize, h: usize, density_pct: u64, seed: u64) -> BinaryImage {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        BinaryImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < density_pct
        })
    }

    #[test]
    fn matches_sequential() {
        for &(w, h, d) in &[(32usize, 32usize, 50u64), (100, 64, 20), (64, 100, 80)] {
            let img = pseudo_random_image(w, h, d, (w + h) as u64);
            assert_eq!(paremsp_rayon(&img), aremsp(&img), "{w}x{h} d={d}");
        }
    }

    #[test]
    fn custom_pool_size() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let img = pseudo_random_image(60, 60, 40, 9);
        let li = pool.install(|| paremsp_rayon(&img));
        assert_eq!(li, aremsp(&img));
    }

    #[test]
    fn empty_image() {
        let img = BinaryImage::zeros(0, 0);
        assert_eq!(paremsp_rayon(&img).num_components(), 0);
    }
}
