//! Integration tests: prefetched and pipelined execution is equivalent to
//! the synchronous paths — labels and analysis bit-identical — across all
//! 15 synthetic generator families, band heights and tile shapes; and a
//! failing or panicking source behind a prefetcher surfaces a typed error
//! to the caller, never a hang.

use proptest::prelude::*;

use ccl_core::seq::aremsp;
use ccl_core::verify::labelings_equivalent;
use ccl_datasets::synth::adversarial::{
    comb, fine_checkerboard, hstripes, serpentine, spiral, vstripes,
};
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_datasets::synth::shapes::{shape_scene, text_page};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_datasets::synth::texture::{checkerboard, grating, rings, stripes};
use ccl_image::BinaryImage;
use ccl_pipeline::{PrefetchRows, PrefetchTiles};
use ccl_stream::{
    analyze_stream, stream_to_label_image, OwnedMemorySource, RowSource, StreamError, StripConfig,
};
use ccl_tiles::{
    analyze_tiles, analyze_tiles_pipelined, tiles_to_label_image_pipelined, GridSource,
    TileGridConfig, TileSource, TilesError,
};

/// One image per synthetic generator family (mirrors the `ccl-stream` and
/// `ccl-tiles` equivalence suites).
fn generator_image(idx: usize, w: usize, h: usize, seed: u64) -> BinaryImage {
    let params = BlobParams {
        coverage: 0.35,
        min_radius: 1,
        max_radius: 4,
    };
    let lc = LandcoverParams {
        base_scale: 6.0,
        octaves: 3,
        persistence: 0.5,
    };
    match idx {
        0 => bernoulli(w, h, 0.45, seed),
        1 => landcover(w, h, lc, seed),
        2 => blob_field(w, h, params, seed),
        3 => shape_scene(w, h, 1 + (seed % 7) as usize, seed),
        4 => text_page(w, h, 1, seed),
        5 => checkerboard(w, h, 1 + (seed % 3) as usize),
        6 => stripes(w, h, 5, 2, (1, 1)),
        7 => grating(w, h, 0.31, 0.17, 0.4),
        8 => rings(w, h, 4.0),
        9 => serpentine(w, h),
        10 => comb(w, h, h / 2),
        11 => fine_checkerboard(w, h),
        12 => hstripes(w, h),
        13 => vstripes(w, h),
        _ => spiral(w.max(3)),
    }
}

const NUM_GENERATORS: usize = 15;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole acceptance, rows: a prefetched source (any depth) feeding
    /// `analyze_stream` produces bit-identical records *and* stats to the
    /// synchronous path, across band heights and all generators.
    #[test]
    fn prefetched_rows_bit_identical(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=18,
        h in 1usize..=18,
        band in 1usize..=19,
        depth in 1usize..=3,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut sync_src = OwnedMemorySource::new(img.clone());
        let (sync_records, sync_stats) =
            analyze_stream(&mut sync_src, band, StripConfig::default()).unwrap();
        let mut pf = PrefetchRows::with_depth(OwnedMemorySource::new(img), band, depth);
        let (records, stats) = analyze_stream(&mut pf, band, StripConfig::default()).unwrap();
        prop_assert_eq!(records, sync_records, "generator {} band {}", gen, band);
        prop_assert_eq!(stats, sync_stats);
    }

    /// A prefetch band height different from the consumer's: the adapter
    /// splits bands (still never exceeding `max_rows`), and the analysis
    /// stays identical by band-height invariance.
    #[test]
    fn prefetched_rows_with_mismatched_band_heights(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        band in 1usize..=17,
        pf_band in 1usize..=17,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut sync_src = OwnedMemorySource::new(img.clone());
        let (sync_records, _) =
            analyze_stream(&mut sync_src, band, StripConfig::default()).unwrap();
        let mut pf = PrefetchRows::new(OwnedMemorySource::new(img), pf_band);
        let (records, stats) = analyze_stream(&mut pf, band, StripConfig::default()).unwrap();
        prop_assert_eq!(stats.components as usize, records.len());
        // splitting changes the effective band boundaries: emission order
        // and id numbering shift (open components that merge consume
        // ids), but every per-component feature is band-invariant
        let features = |records: &[ccl_stream::ComponentRecord]| {
            let mut f: Vec<_> = records
                .iter()
                .map(|r| (r.anchor, r.area, r.bbox, r.centroid, r.perimeter, r.holes))
                .collect();
            f.sort_unstable_by_key(|x| x.0);
            f
        };
        prop_assert_eq!(
            features(&records),
            features(&sync_records),
            "band {} pf_band {}",
            band,
            pf_band
        );
    }

    /// Tentpole acceptance, tiles: prefetched tile rows + the pipelined
    /// executor (decode ∥ scan ∥ merge) produce bit-identical records to
    /// the synchronous grid across tile shapes, thread counts and all
    /// generators; only the residency stat differs, and it stays within
    /// two tile rows + the carry row.
    #[test]
    fn prefetched_pipelined_tiles_bit_identical(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        tw in 1usize..=9,
        th in 1usize..=9,
        threads in 1usize..=4,
        prefetch in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let cfg = TileGridConfig::parallel(threads);
        let mut sync_src = GridSource::from_image(&img, tw, th);
        let (sync_records, sync_stats) = analyze_tiles(&mut sync_src, cfg.clone()).unwrap();

        let grid = GridSource::new(OwnedMemorySource::new(img), tw, th);
        let (records, stats) = if prefetch {
            let mut staged = PrefetchTiles::new(grid);
            analyze_tiles_pipelined(&mut staged, cfg).unwrap()
        } else {
            let mut grid = grid;
            analyze_tiles_pipelined(&mut grid, cfg).unwrap()
        };
        prop_assert_eq!(records, sync_records, "generator {} tiles {}x{}", gen, tw, th);
        prop_assert_eq!(stats.components, sync_stats.components);
        prop_assert_eq!(stats.rows, sync_stats.rows);
        prop_assert_eq!(stats.tile_rows, sync_stats.tile_rows);
        prop_assert_eq!(stats.tiles, sync_stats.tiles);
        prop_assert!(stats.peak_resident_rows <= 2 * th + 1);
    }

    /// The composed rows stack — `PrefetchRows` decode worker feeding the
    /// pipelined strip labeler (decode ∥ scan ∥ merge) — is bit-identical
    /// to the synchronous path for both fold modes, and its residency
    /// stays within two bands + the carry row.
    #[test]
    fn prefetched_pipelined_rows_bit_identical(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=16,
        h in 1usize..=16,
        band in 1usize..=17,
        threads in 1usize..=4,
        prefetch in proptest::bool::ANY,
        fused in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        use ccl_stream::{analyze_stream_pipelined, FoldMode};
        let img = generator_image(gen, w, h, seed);
        let cfg = StripConfig::parallel(threads)
            .with_fold(if fused { FoldMode::Fused } else { FoldMode::Sequential });
        let mut sync_src = OwnedMemorySource::new(img.clone());
        let (sync_records, sync_stats) =
            analyze_stream(&mut sync_src, band, cfg.clone()).unwrap();

        let (records, stats) = if prefetch {
            let mut staged = PrefetchRows::new(OwnedMemorySource::new(img), band);
            analyze_stream_pipelined(&mut staged, band, cfg).unwrap()
        } else {
            let mut src = OwnedMemorySource::new(img);
            analyze_stream_pipelined(&mut src, band, cfg).unwrap()
        };
        prop_assert_eq!(records, sync_records, "generator {} band {}", gen, band);
        prop_assert_eq!(stats.components, sync_stats.components);
        prop_assert_eq!(stats.rows, sync_stats.rows);
        prop_assert_eq!(stats.bands, sync_stats.bands);
        prop_assert!(stats.peak_resident_rows <= 2 * band + 1);
    }

    /// Labeled output through the pipeline reconciles into the exact
    /// whole-image partition.
    #[test]
    fn pipelined_labels_reconcile_to_aremsp_partition(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=14,
        h in 1usize..=14,
        tw in 1usize..=8,
        th in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut grid = GridSource::new(OwnedMemorySource::new(img.clone()), tw, th);
        let (li, stats) =
            tiles_to_label_image_pipelined(&mut grid, TileGridConfig::default()).unwrap();
        let reference = aremsp(&img);
        prop_assert_eq!(stats.components, reference.num_components() as u64);
        prop_assert!(labelings_equivalent(&li, &reference));
    }

    /// Prefetched strips reconcile into the exact whole-image partition
    /// (the labeled-output path composes with prefetching too).
    #[test]
    fn prefetched_strip_labels_reconcile(
        gen in 0usize..NUM_GENERATORS,
        w in 1usize..=14,
        h in 1usize..=14,
        band in 1usize..=15,
        seed in 0u64..1000,
    ) {
        let img = generator_image(gen, w, h, seed);
        let mut pf = PrefetchRows::new(OwnedMemorySource::new(img.clone()), band);
        let (li, stats) =
            stream_to_label_image(&mut pf, band, StripConfig::default()).unwrap();
        let reference = aremsp(&img);
        prop_assert_eq!(stats.components, reference.num_components() as u64);
        prop_assert!(labelings_equivalent(&li, &reference));
    }
}

/// A row source that delivers `good` bands, then fails with a decode
/// error — the mid-stream failure regression shape.
struct FailingRows {
    good: usize,
}

impl RowSource for FailingRows {
    fn width(&self) -> usize {
        6
    }
    fn rows_remaining(&self) -> Option<usize> {
        None
    }
    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        if self.good == 0 {
            return Err(StreamError::Image(ccl_image::ImageError::Parse(
                "corrupt band 3".into(),
            )));
        }
        self.good -= 1;
        Ok(Some(BinaryImage::ones(6, max_rows.min(2))))
    }
}

/// Regression: a `RowSource` failing mid-stream behind a prefetcher
/// surfaces the *typed* source error through the whole driver stack (the
/// error used to be indistinguishable from end-of-stream in naive
/// channel-based designs — and a blocked worker could hang the caller).
#[test]
fn midstream_row_failure_surfaces_through_driver() {
    let mut pf = PrefetchRows::new(FailingRows { good: 3 }, 2);
    let err = analyze_stream(&mut pf, 2, StripConfig::default()).unwrap_err();
    match err {
        StreamError::Image(e) => assert!(e.to_string().contains("corrupt band 3")),
        other => panic!("expected the source's Image error, got {other}"),
    }
}

/// Regression: the same mid-stream failure through the tile stack — the
/// error crosses *two* workers (prefetcher + pipelined scan stage) and
/// still arrives typed.
#[test]
fn midstream_tile_failure_surfaces_through_pipelined_driver() {
    let grid = GridSource::new(FailingRows { good: 4 }, 3, 2);
    let mut staged = PrefetchTiles::new(grid);
    let err = analyze_tiles_pipelined(&mut staged, TileGridConfig::default()).unwrap_err();
    match err {
        TilesError::Stream(StreamError::Image(e)) => {
            assert!(e.to_string().contains("corrupt band 3"))
        }
        other => panic!("expected the source's Image error, got {other}"),
    }
}

/// Regression: a *panicking* source behind a prefetcher becomes a typed
/// `Worker` error, not a deadlock and not a silent end-of-stream.
#[test]
fn panicking_tile_source_surfaces_through_pipelined_driver() {
    struct PanicsMidStream {
        good: usize,
    }
    impl TileSource for PanicsMidStream {
        fn width(&self) -> usize {
            4
        }
        fn tile_width(&self) -> usize {
            4
        }
        fn tile_height(&self) -> usize {
            2
        }
        fn rows_remaining(&self) -> Option<usize> {
            None
        }
        fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
            assert!(self.good > 0, "generator state corrupted");
            self.good -= 1;
            Ok(Some(vec![BinaryImage::ones(4, 2)]))
        }
    }
    let mut staged = PrefetchTiles::new(PanicsMidStream { good: 2 });
    let err = analyze_tiles_pipelined(&mut staged, TileGridConfig::default()).unwrap_err();
    match err {
        TilesError::Worker(msg) => assert!(msg.contains("corrupted"), "{msg}"),
        other => panic!("expected Worker error, got {other:?}"),
    }
}

/// Acceptance-criteria shape at CI-friendly scale: a generator-fed stream
/// behind the full decode ∥ scan ∥ merge pipeline matches whole-image
/// AREMSP with the pipelined residency bound intact.
#[test]
fn staged_pipeline_matches_whole_image_at_scale() {
    let (w, h, tile) = (256usize, 2048usize, 64usize);
    let source = bernoulli_stream(w, h, 0.5, 123);
    let grid = GridSource::new(source, tile, tile);
    let mut staged = PrefetchTiles::new(grid);
    let (records, stats) = analyze_tiles_pipelined(&mut staged, TileGridConfig::default()).unwrap();
    assert_eq!(stats.rows, h);
    assert!(stats.peak_resident_rows <= 2 * tile + 1);

    let reference = aremsp(&bernoulli(w, h, 0.5, 123));
    assert_eq!(stats.components, reference.num_components() as u64);
    assert_eq!(records.len() as u64, stats.components);
}

/// The full-scale stress run: 67 Mpixel through the composed
/// decode ∥ scan ∥ merge pipeline in 512×512 tiles, analysis identical to
/// whole-image AREMSP, ≤ 2 tile rows + carry resident. Ignored by
/// default; run with `just pipeline-stress`.
#[test]
#[ignore = "67-Mpixel stress run; use cargo test --release -- --ignored"]
fn gigascale_staged_pipeline_bounded_memory() {
    let (w, h, tile) = (4096usize, 16_384usize, 512usize);
    let source = bernoulli_stream(w, h, 0.5, 9001);
    let grid = GridSource::new(source, tile, tile);
    let mut staged = PrefetchTiles::new(grid);
    let (_, stats) = analyze_tiles_pipelined(&mut staged, TileGridConfig::default()).unwrap();
    assert_eq!(stats.rows, h);
    assert_eq!(stats.peak_resident_rows, 2 * tile + 1);

    let reference = aremsp(&bernoulli(w, h, 0.5, 9001));
    assert_eq!(stats.components, reference.num_components() as u64);
}
