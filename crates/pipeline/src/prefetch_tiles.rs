//! [`PrefetchTiles`] — decode tile rows one thread ahead of the consumer.

use ccl_image::BinaryImage;
use ccl_tiles::{TileSource, TilesError};

use crate::error::PipelineError;
use crate::worker::PrefetchWorker;

/// Moves a [`TileSource`] onto a worker thread and hands its tile rows to
/// the consumer through a bounded channel — the tile-grid counterpart of
/// [`PrefetchRows`](crate::PrefetchRows), with the same backpressure,
/// shutdown and error semantics. Implements [`TileSource`] itself, so the
/// grid drivers (`analyze_tiles`, `spill_tiles`, the `*_pipelined`
/// variants) compose unchanged; stacked under a pipelined driver it
/// yields a three-stage pipeline: decode ∥ scan ∥ merge/spill.
pub struct PrefetchTiles<S> {
    width: usize,
    tile_width: usize,
    tile_height: usize,
    rows_remaining: Option<usize>,
    worker: PrefetchWorker<Result<Vec<BinaryImage>, TilesError>, S>,
    poisoned: bool,
}

impl<S: TileSource + Send + 'static> PrefetchTiles<S> {
    /// Double-buffered prefetcher (`depth` 2).
    pub fn new(source: S) -> Self {
        Self::with_depth(source, 2)
    }

    /// Prefetcher with an explicit queue depth (≥ 1): the worker runs at
    /// most `depth` tile rows ahead of the consumer.
    ///
    /// # Panics
    /// Panics when `depth` is 0.
    pub fn with_depth(mut source: S, depth: usize) -> Self {
        let width = source.width();
        let tile_width = source.tile_width();
        let tile_height = source.tile_height();
        let rows_remaining = source.rows_remaining();
        let worker = PrefetchWorker::spawn("ccl-prefetch-tiles", depth, move |tx| {
            loop {
                match source.next_tile_row() {
                    Ok(Some(row)) => {
                        if tx.send(Ok(row)).is_err() {
                            break; // consumer dropped: clean shutdown
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
            source
        });
        PrefetchTiles {
            width,
            tile_width,
            tile_height,
            rows_remaining,
            worker,
            poisoned: false,
        }
    }

    /// Stops the worker and returns the wrapped source (its position is
    /// wherever the *worker* got to, up to `depth` tile rows ahead of
    /// what was consumed). Errors if the worker panicked — even one
    /// already reported through [`TileSource::next_tile_row`].
    pub fn into_inner(self) -> Result<S, PipelineError> {
        self.worker.into_inner()
    }
}

impl<S: TileSource + Send + 'static> TileSource for PrefetchTiles<S> {
    fn width(&self) -> usize {
        self.width
    }

    fn tile_width(&self) -> usize {
        self.tile_width
    }

    fn tile_height(&self) -> usize {
        self.tile_height
    }

    fn rows_remaining(&self) -> Option<usize> {
        self.rows_remaining
    }

    fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
        if self.poisoned {
            return Ok(None);
        }
        match self.worker.recv() {
            Some(Ok(row)) => {
                if let Some(r) = self.rows_remaining.as_mut() {
                    let th = row.first().map_or(0, BinaryImage::height);
                    *r = r.saturating_sub(th);
                }
                Ok(Some(row))
            }
            Some(Err(e)) => {
                self.poisoned = true;
                Err(e)
            }
            None => {
                self.worker.join()?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_stream::OwnedMemorySource;
    use ccl_tiles::GridSource;

    fn grid(img: &BinaryImage, tw: usize, th: usize) -> GridSource<OwnedMemorySource> {
        GridSource::new(OwnedMemorySource::new(img.clone()), tw, th)
    }

    #[test]
    fn delivers_the_same_tile_rows_as_the_wrapped_source() {
        let img = BinaryImage::from_fn(11, 13, |r, c| (r * c) % 3 == 0);
        let mut sync = grid(&img, 4, 3);
        let mut pf = PrefetchTiles::new(grid(&img, 4, 3));
        assert_eq!((pf.width(), pf.tile_width(), pf.tile_height()), (11, 4, 3));
        assert_eq!(pf.rows_remaining(), Some(13));
        loop {
            let a = sync.next_tile_row().unwrap();
            let b = pf.next_tile_row().unwrap();
            assert_eq!(a, b);
            assert_eq!(sync.rows_remaining(), pf.rows_remaining());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn drop_without_draining_does_not_hang() {
        let img = BinaryImage::ones(8, 64);
        for depth in [1, 3] {
            let mut pf = PrefetchTiles::with_depth(grid(&img, 4, 2), depth);
            let _ = pf.next_tile_row().unwrap();
            drop(pf);
        }
    }

    #[test]
    fn into_inner_recovers_the_source() {
        let img = BinaryImage::ones(6, 10);
        let pf = PrefetchTiles::new(grid(&img, 3, 2));
        let src = pf.into_inner().unwrap();
        assert!(src.rows_remaining().unwrap() <= 10);
    }

    #[test]
    fn panicking_source_surfaces_as_worker_error() {
        struct Panics;
        impl TileSource for Panics {
            fn width(&self) -> usize {
                2
            }
            fn tile_width(&self) -> usize {
                2
            }
            fn tile_height(&self) -> usize {
                1
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
                panic!("tile source blew up");
            }
        }
        let mut pf = PrefetchTiles::new(Panics);
        let err = loop {
            match pf.next_tile_row() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("panic was dropped"),
                Err(e) => break e,
            }
        };
        match err {
            TilesError::Worker(msg) => assert!(msg.contains("blew up"), "{msg}"),
            other => panic!("expected Worker error, got {other}"),
        }
        assert!(pf.next_tile_row().unwrap().is_none());
        match pf.into_inner() {
            Err(PipelineError::WorkerPanicked(msg)) => {
                assert!(msg.contains("blew up"), "{msg}")
            }
            Err(other) => panic!("expected WorkerPanicked, got {other}"),
            Ok(_) => panic!("expected WorkerPanicked, got a source"),
        }
    }
}
