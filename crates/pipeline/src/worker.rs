//! Shared worker-thread plumbing behind the prefetch adapters.

use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::error::PipelineError;

/// The state every prefetcher shares: a bounded queue of prefetched
/// items, the producer thread's join handle, and the bookkeeping that
/// turns join outcomes into typed errors exactly once. The adapters add
/// only their source-trait surface (dimensions, row accounting, band
/// splitting) on top.
///
/// Dropping the worker disconnects the channel first — the producer's
/// next send fails and the thread exits — then joins, so a partially
/// consumed stream never leaks a thread and a blocked producer never
/// hangs the drop.
pub(crate) struct PrefetchWorker<T, S> {
    rx: Option<mpsc::Receiver<T>>,
    handle: Option<JoinHandle<S>>,
    /// Source recovered from a clean producer exit (for `into_inner`).
    recovered: Option<S>,
    /// Panic message captured at the join, kept so `into_inner` can
    /// still report it after the adapter surfaced the error.
    panicked: Option<String>,
}

impl<T: Send + 'static, S: Send + 'static> PrefetchWorker<T, S> {
    /// Spawns `run` — the producer loop: pull from the source, send into
    /// the queue (a failed send means the consumer hung up), return the
    /// source when done — behind a `depth`-bounded channel.
    ///
    /// # Panics
    /// Panics when `depth` is 0.
    pub(crate) fn spawn(
        name: &str,
        depth: usize,
        run: impl FnOnce(mpsc::SyncSender<T>) -> S + Send + 'static,
    ) -> Self {
        assert!(depth > 0, "prefetch depth must be positive");
        let (tx, rx) = mpsc::sync_channel(depth);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || run(tx))
            .expect("spawn prefetch worker");
        PrefetchWorker {
            rx: Some(rx),
            handle: Some(handle),
            recovered: None,
            panicked: None,
        }
    }

    /// Next prefetched item; `None` once the producer hung up (cleanly
    /// or by panicking — [`Self::join`] tells which).
    pub(crate) fn recv(&mut self) -> Option<T> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Joins a finished producer, distinguishing clean exit from panic.
    pub(crate) fn join(&mut self) -> Result<(), PipelineError> {
        if let Some(h) = self.handle.take() {
            match h.join() {
                Ok(source) => self.recovered = Some(source),
                Err(p) => {
                    let e = PipelineError::worker_panic(p.as_ref());
                    if let PipelineError::WorkerPanicked(msg) = &e {
                        self.panicked = Some(msg.clone());
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Stops the producer (disconnect, then join) and returns the
    /// source. Errors if the producer panicked — including a panic that
    /// was already surfaced through the adapter earlier.
    pub(crate) fn into_inner(mut self) -> Result<S, PipelineError> {
        self.rx = None; // disconnect: the producer's next send fails
        let handle = self.handle.take();
        let recovered = self.recovered.take();
        let panicked = self.panicked.take();
        match (handle, recovered) {
            (Some(h), _) => h
                .join()
                .map_err(|p| PipelineError::worker_panic(p.as_ref())),
            (None, Some(source)) => Ok(source),
            // already joined, source lost to a panic
            (None, None) => Err(PipelineError::WorkerPanicked(
                panicked.unwrap_or_else(|| "worker panicked".to_string()),
            )),
        }
    }
}

impl<T, S> Drop for PrefetchWorker<T, S> {
    fn drop(&mut self) {
        self.rx = None; // disconnect first so the producer cannot block
        if let Some(h) = self.handle.take() {
            // A panic not yet surfaced through the adapter is swallowed
            // here — propagating from Drop would abort the process.
            let _ = h.join();
        }
    }
}
