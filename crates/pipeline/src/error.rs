//! [`PipelineError`] — the typed failure of a prefetch worker.

use std::fmt;

use ccl_stream::StreamError;
use ccl_tiles::TilesError;

/// What went wrong behind a prefetcher. Every failure mode of the worker
/// thread is represented — a source error is forwarded as-is, a panic is
/// caught at the join and carried as its message — so a failing source
/// always surfaces to the consumer as a typed error, never a hang.
#[derive(Debug)]
pub enum PipelineError {
    /// The wrapped [`RowSource`](ccl_stream::RowSource) failed.
    Stream(StreamError),
    /// The wrapped [`TileSource`](ccl_tiles::TileSource) failed.
    Tiles(TilesError),
    /// The worker thread panicked; the payload is the panic message.
    WorkerPanicked(String),
}

impl PipelineError {
    /// Builds [`PipelineError::WorkerPanicked`] from a caught panic
    /// payload (`&str`/`String` payloads pass through as the message,
    /// anything else becomes a generic one).
    pub fn worker_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked".to_string()
        };
        PipelineError::WorkerPanicked(msg)
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Stream(e) => write!(f, "prefetched row source failed: {e}"),
            PipelineError::Tiles(e) => write!(f, "prefetched tile source failed: {e}"),
            PipelineError::WorkerPanicked(msg) => write!(f, "prefetch worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Stream(e) => Some(e),
            PipelineError::Tiles(e) => Some(e),
            PipelineError::WorkerPanicked(_) => None,
        }
    }
}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> Self {
        PipelineError::Stream(e)
    }
}

impl From<TilesError> for PipelineError {
    fn from(e: TilesError) -> Self {
        PipelineError::Tiles(e)
    }
}

/// Surfacing through the [`RowSource`](ccl_stream::RowSource) trait: the
/// source's own error passes through unchanged; a worker panic becomes
/// [`StreamError::Worker`].
impl From<PipelineError> for StreamError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Stream(e) => e,
            PipelineError::Tiles(e) => StreamError::Worker(e.to_string()),
            PipelineError::WorkerPanicked(msg) => StreamError::Worker(msg),
        }
    }
}

/// Surfacing through the [`TileSource`](ccl_tiles::TileSource) trait: the
/// source's own error passes through unchanged; a worker panic becomes
/// [`TilesError::Worker`].
impl From<PipelineError> for TilesError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Tiles(e) => e,
            PipelineError::Stream(e) => TilesError::Stream(e),
            PipelineError::WorkerPanicked(msg) => TilesError::Worker(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_image::ImageError;

    #[test]
    fn display_source_and_conversions() {
        use std::error::Error as _;
        let e: PipelineError = StreamError::Image(ImageError::Parse("bad header".into())).into();
        assert!(e.to_string().contains("bad header"));
        assert!(e.source().is_some());

        let e = PipelineError::WorkerPanicked("index out of bounds".into());
        assert!(e.to_string().contains("index out of bounds"));
        assert!(e.source().is_none());
        let s: StreamError = e.into();
        assert!(matches!(s, StreamError::Worker(_)));

        let e: PipelineError = TilesError::Manifest("truncated".into()).into();
        let t: TilesError = e.into();
        assert!(matches!(t, TilesError::Manifest(_)));

        let t: TilesError = PipelineError::WorkerPanicked("boom".into()).into();
        assert!(matches!(t, TilesError::Worker(_)));
    }
}
