//! # ccl-pipeline
//!
//! Prefetching + pipelined execution layer for the out-of-core labelers —
//! overlap band/tile **decode**, per-tile **scan** and seam **merge** so
//! no stage ever waits on another (the Gupta et al. speedup recipe —
//! keep every worker busy between phases — applied *across* phases).
//!
//! `stream_demo`/`tiles_demo` show that band and tile-row *generation*
//! dominates end-to-end throughput: the labeler sits idle while the next
//! band decodes, then the source sits idle while the band labels. This
//! crate closes that gap with two composable pieces:
//!
//! * [`PrefetchRows`] / [`PrefetchTiles`] — source adapters that move the
//!   wrapped [`RowSource`](ccl_stream::RowSource) /
//!   [`TileSource`](ccl_tiles::TileSource) onto a worker thread and hand
//!   bands/tile rows through a bounded double buffer (configurable depth,
//!   backpressure, clean shutdown on drop). Both implement the original
//!   source traits, so every existing driver composes unchanged.
//! * the **pipelined tile-row executors** in `ccl-tiles`
//!   ([`ccl_tiles::pipeline`], driven by
//!   [`analyze_tiles_pipelined`](ccl_tiles::analyze_tiles_pipelined) and
//!   friends) — row *k + 1*'s per-tile scans overlap row *k*'s seam
//!   merge / accumulation / spill, the carry row being the only
//!   dependency handed across a rendezvous.
//!
//! Stacked, they form a three-stage pipeline — decode ∥ scan ∥
//! merge/spill — with bit-identical output to the synchronous paths.
//! [`PacedRows`]/[`PacedTiles`] complete the toolkit: device-paced
//! wrappers that impose a configurable per-pull latency, modelling the
//! disk/network/sensor stalls that make real decode generation-bound
//! (and making the overlap win measurable on any machine — hiding
//! *latency* needs no spare core).
//!
//! Failures are typed, never hangs: a source error behind a prefetcher
//! surfaces as itself; a *panicking* source surfaces as
//! [`PipelineError::WorkerPanicked`] (mapped to the
//! `Worker` variants of the source-trait error types).
//!
//! ## Example
//!
//! ```
//! use ccl_datasets::synth::stream::landcover_stream;
//! use ccl_datasets::synth::landcover::LandcoverParams;
//! use ccl_pipeline::PrefetchRows;
//! use ccl_stream::{analyze_stream, StripConfig};
//!
//! // fBm land cover is expensive to *generate*: prefetching decodes the
//! // next band while the labeler works on the current one.
//! let params = LandcoverParams { base_scale: 6.0, octaves: 3, persistence: 0.5 };
//! let source = landcover_stream(64, 512, params, 42);
//! let mut prefetched = PrefetchRows::new(source, 64);
//! let (components, stats) =
//!     analyze_stream(&mut prefetched, 64, StripConfig::default()).unwrap();
//! assert_eq!(stats.components as usize, components.len());
//! assert_eq!(stats.rows, 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod paced;
pub mod prefetch_rows;
pub mod prefetch_tiles;
mod worker;

pub use error::PipelineError;
pub use paced::{PacedRows, PacedTiles};
pub use prefetch_rows::PrefetchRows;
pub use prefetch_tiles::PrefetchTiles;
