//! [`PacedRows`] / [`PacedTiles`] — device-paced source wrappers.
//!
//! Real out-of-core inputs are rarely CPU-bound: the next band waits on
//! a disk seek, an object-store GET or a sensor readout, and the wall
//! time lost there is *latency*, not compute. These wrappers impose that
//! latency explicitly — each pull blocks the configured duration before
//! delivering — which makes two things possible:
//!
//! * **honest demos/benches** of the prefetch win: hiding device latency
//!   behind labeling needs no spare core, so `pipeline_demo` shows the
//!   overlap on any machine, single-core containers included;
//! * **deterministic tests** of overlap behaviour, with the stall
//!   injected exactly where a slow decoder would stall.

use std::time::Duration;

use ccl_image::BinaryImage;
use ccl_stream::{RowSource, StreamError};
use ccl_tiles::{TileSource, TilesError};

/// A [`RowSource`] that blocks `latency` before every delivered band —
/// the band is "fetched from a device" rather than computed. Once the
/// stream has ended or failed, subsequent pulls pass through unpaced
/// (the stall on the failing pull itself is unavoidable — the "device"
/// must be waited on to learn it failed).
pub struct PacedRows<S> {
    inner: S,
    latency: Duration,
    done: bool,
}

impl<S: RowSource> PacedRows<S> {
    /// Paces `inner` at one `latency` stall per band.
    pub fn new(inner: S, latency: Duration) -> Self {
        PacedRows {
            inner,
            latency,
            done: false,
        }
    }

    /// Consumes the wrapper, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSource> RowSource for PacedRows<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn rows_remaining(&self) -> Option<usize> {
        self.inner.rows_remaining()
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        if self.done {
            return self.inner.next_band(max_rows);
        }
        if self.inner.rows_remaining() != Some(0) {
            std::thread::sleep(self.latency);
        }
        let out = self.inner.next_band(max_rows);
        if matches!(out, Ok(None) | Err(_)) {
            self.done = true;
        }
        out
    }
}

/// A [`TileSource`] that blocks `latency` before every delivered tile
/// row — the tile-grid counterpart of [`PacedRows`], with the same
/// end-of-stream behaviour.
pub struct PacedTiles<S> {
    inner: S,
    latency: Duration,
    done: bool,
}

impl<S: TileSource> PacedTiles<S> {
    /// Paces `inner` at one `latency` stall per tile row.
    pub fn new(inner: S, latency: Duration) -> Self {
        PacedTiles {
            inner,
            latency,
            done: false,
        }
    }

    /// Consumes the wrapper, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TileSource> TileSource for PacedTiles<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn tile_width(&self) -> usize {
        self.inner.tile_width()
    }

    fn tile_height(&self) -> usize {
        self.inner.tile_height()
    }

    fn rows_remaining(&self) -> Option<usize> {
        self.inner.rows_remaining()
    }

    fn next_tile_row(&mut self) -> Result<Option<Vec<BinaryImage>>, TilesError> {
        if self.done {
            return self.inner.next_tile_row();
        }
        if self.inner.rows_remaining() != Some(0) {
            std::thread::sleep(self.latency);
        }
        let out = self.inner.next_tile_row();
        if matches!(out, Ok(None) | Err(_)) {
            self.done = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_stream::OwnedMemorySource;
    use ccl_tiles::GridSource;
    use std::time::Instant;

    #[test]
    fn pacing_is_transparent_to_the_data() {
        let img = BinaryImage::from_fn(6, 9, |r, c| (r + c) % 2 == 0);
        let mut plain = OwnedMemorySource::new(img.clone());
        let mut paced = PacedRows::new(
            OwnedMemorySource::new(img.clone()),
            Duration::from_micros(100),
        );
        loop {
            let a = plain.next_band(4).unwrap();
            let b = paced.next_band(4).unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        let mut paced_tiles = PacedTiles::new(
            GridSource::new(OwnedMemorySource::new(img.clone()), 3, 4),
            Duration::from_micros(100),
        );
        let mut plain_tiles = GridSource::from_image(&img, 3, 4);
        loop {
            let a = plain_tiles.next_tile_row().unwrap();
            let b = paced_tiles.next_tile_row().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pacing_actually_stalls() {
        let img = BinaryImage::ones(4, 8);
        let mut paced = PacedRows::new(OwnedMemorySource::new(img), Duration::from_millis(2));
        let t = Instant::now();
        let mut bands = 0;
        while paced.next_band(2).unwrap().is_some() {
            bands += 1;
        }
        assert_eq!(bands, 4);
        assert!(t.elapsed() >= Duration::from_millis(8), "4 stalls of 2 ms");
    }

    #[test]
    fn exhausted_stream_polls_unpaced() {
        // an unknown-length source: rows_remaining() is None, so the
        // wrapper must learn exhaustion from the pull itself
        struct TwoBands(usize);
        impl RowSource for TwoBands {
            fn width(&self) -> usize {
                2
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_band(
                &mut self,
                _: usize,
            ) -> Result<Option<BinaryImage>, ccl_stream::StreamError> {
                if self.0 == 0 {
                    return Ok(None);
                }
                self.0 -= 1;
                Ok(Some(BinaryImage::ones(2, 1)))
            }
        }
        let mut paced = PacedRows::new(TwoBands(2), Duration::from_millis(20));
        while paced.next_band(1).unwrap().is_some() {}
        let t = Instant::now();
        for _ in 0..50 {
            assert!(paced.next_band(1).unwrap().is_none());
        }
        assert!(
            t.elapsed() < Duration::from_millis(20),
            "post-exhaustion polls must not stall"
        );
    }
}
