//! [`PrefetchRows`] — decode row bands one thread ahead of the consumer.

use ccl_image::BinaryImage;
use ccl_stream::{RowSource, StreamError};

use crate::error::PipelineError;
use crate::worker::PrefetchWorker;

/// Moves a [`RowSource`] onto a worker thread and hands its bands to the
/// consumer through a bounded channel, so band *generation/decode*
/// overlaps band *labeling*. Implements [`RowSource`] itself, so every
/// existing driver (`label_stream`, `analyze_stream`,
/// `stream_to_label_image`, `GridSource` windowing) composes unchanged.
///
/// * **Backpressure**: the worker pulls at most `depth` bands ahead
///   (default 2 — a double buffer), then blocks until the consumer
///   catches up, so residency grows by at most `depth` bands.
/// * **Shutdown**: dropping the adapter disconnects the channel; the
///   worker's next send fails and the thread exits (joined in `Drop`) —
///   a partially consumed stream never leaks a thread.
/// * **Errors**: a band the source fails to produce surfaces to the
///   consumer as the source's own [`StreamError`]; a *panicking* source
///   is caught at the join and surfaces as [`StreamError::Worker`]
///   (typed via [`PipelineError`]) — never a hang, never a lost error.
pub struct PrefetchRows<S> {
    width: usize,
    rows_remaining: Option<usize>,
    worker: PrefetchWorker<Result<BinaryImage, StreamError>, S>,
    /// Remainder of a delivered band when the consumer asked for fewer
    /// rows than the prefetch band height.
    pending: Option<BinaryImage>,
    /// Set once an error was delivered: the stream then reads as ended.
    poisoned: bool,
}

impl<S: RowSource + Send + 'static> PrefetchRows<S> {
    /// Double-buffered prefetcher (`depth` 2) pulling `band_rows`-row
    /// bands.
    ///
    /// # Panics
    /// Panics when `band_rows` is 0.
    pub fn new(source: S, band_rows: usize) -> Self {
        Self::with_depth(source, band_rows, 2)
    }

    /// Prefetcher with an explicit queue depth (≥ 1): the worker runs at
    /// most `depth` bands ahead of the consumer.
    ///
    /// # Panics
    /// Panics when `band_rows` or `depth` is 0.
    pub fn with_depth(mut source: S, band_rows: usize, depth: usize) -> Self {
        assert!(band_rows > 0, "band height must be positive");
        let width = source.width();
        let rows_remaining = source.rows_remaining();
        let worker = PrefetchWorker::spawn("ccl-prefetch-rows", depth, move |tx| {
            loop {
                match source.next_band(band_rows) {
                    Ok(Some(band)) => {
                        if tx.send(Ok(band)).is_err() {
                            break; // consumer dropped: clean shutdown
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
            source
        });
        PrefetchRows {
            width,
            rows_remaining,
            worker,
            pending: None,
            poisoned: false,
        }
    }

    /// Stops the worker and returns the wrapped source (its position is
    /// wherever the *worker* got to, up to `depth` bands ahead of what
    /// was consumed). Errors if the worker panicked — even one already
    /// reported through [`RowSource::next_band`].
    pub fn into_inner(self) -> Result<S, PipelineError> {
        self.worker.into_inner()
    }
}

impl<S: RowSource + Send + 'static> RowSource for PrefetchRows<S> {
    fn width(&self) -> usize {
        self.width
    }

    fn rows_remaining(&self) -> Option<usize> {
        self.rows_remaining
    }

    fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, StreamError> {
        assert!(max_rows > 0, "band height must be positive");
        if self.poisoned {
            return Ok(None);
        }
        let band = match self.pending.take() {
            Some(band) => band,
            None => match self.worker.recv() {
                Some(Ok(band)) => band,
                Some(Err(e)) => {
                    self.poisoned = true;
                    return Err(e);
                }
                // Disconnected: the worker finished (cleanly or by
                // panicking) — the join tells which.
                None => {
                    self.worker.join()?;
                    return Ok(None);
                }
            },
        };
        let band = if band.height() > max_rows {
            let head = band.crop(0, 0, band.width(), max_rows);
            self.pending = Some(band.crop(max_rows, 0, band.width(), band.height() - max_rows));
            head
        } else {
            band
        };
        if let Some(r) = self.rows_remaining.as_mut() {
            *r = r.saturating_sub(band.height());
        }
        Ok(Some(band))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_stream::OwnedMemorySource;

    fn test_image() -> BinaryImage {
        BinaryImage::from_fn(7, 19, |r, c| (3 * r + c) % 4 == 0)
    }

    #[test]
    fn delivers_the_same_bands_as_the_wrapped_source() {
        let img = test_image();
        let mut sync = OwnedMemorySource::new(img.clone());
        let mut pf = PrefetchRows::new(OwnedMemorySource::new(img), 4);
        assert_eq!(pf.width(), 7);
        assert_eq!(pf.rows_remaining(), Some(19));
        loop {
            let a = sync.next_band(4).unwrap();
            let b = pf.next_band(4).unwrap();
            assert_eq!(a, b);
            assert_eq!(sync.rows_remaining(), pf.rows_remaining());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn splits_bands_when_the_consumer_asks_for_fewer_rows() {
        let img = test_image();
        let mut pf = PrefetchRows::new(OwnedMemorySource::new(img.clone()), 8);
        let mut r0 = 0;
        while let Some(band) = pf.next_band(3).unwrap() {
            assert!(band.height() <= 3);
            for r in 0..band.height() {
                assert_eq!(band.row(r), img.row(r0 + r), "row {}", r0 + r);
            }
            r0 += band.height();
        }
        assert_eq!(r0, 19);
    }

    #[test]
    fn drop_without_draining_does_not_hang() {
        let img = test_image();
        for depth in [1, 2, 5] {
            let mut pf = PrefetchRows::with_depth(OwnedMemorySource::new(img.clone()), 2, depth);
            let _ = pf.next_band(2).unwrap();
            drop(pf); // worker may be blocked mid-send; must still exit
        }
    }

    #[test]
    fn into_inner_recovers_the_source() {
        let img = test_image();
        let pf = PrefetchRows::new(OwnedMemorySource::new(img), 32);
        let src = pf.into_inner().unwrap();
        // worker ran ahead; the source is somewhere in [0, 19] rows left
        assert!(src.rows_remaining().unwrap() <= 19);
    }

    #[test]
    fn source_error_surfaces_once_then_stream_ends() {
        struct FailsAfter(usize);
        impl RowSource for FailsAfter {
            fn width(&self) -> usize {
                3
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_band(&mut self, _: usize) -> Result<Option<BinaryImage>, StreamError> {
                if self.0 == 0 {
                    return Err(StreamError::Image(ccl_image::ImageError::Parse(
                        "truncated band".into(),
                    )));
                }
                self.0 -= 1;
                Ok(Some(BinaryImage::ones(3, 2)))
            }
        }
        let mut pf = PrefetchRows::new(FailsAfter(2), 2);
        assert!(pf.next_band(2).unwrap().is_some());
        assert!(pf.next_band(2).unwrap().is_some());
        let err = loop {
            match pf.next_band(2) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("error was dropped"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("truncated band"));
        assert!(pf.next_band(2).unwrap().is_none(), "poisoned after error");
        // after a source *error* the worker exited cleanly: the source
        // itself is still recoverable
        assert!(pf.into_inner().is_ok());
    }

    #[test]
    fn panicking_source_surfaces_as_worker_error() {
        struct Panics;
        impl RowSource for Panics {
            fn width(&self) -> usize {
                2
            }
            fn rows_remaining(&self) -> Option<usize> {
                None
            }
            fn next_band(&mut self, _: usize) -> Result<Option<BinaryImage>, StreamError> {
                panic!("source blew up");
            }
        }
        let mut pf = PrefetchRows::new(Panics, 1);
        let err = loop {
            match pf.next_band(1) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("panic was dropped"),
                Err(e) => break e,
            }
        };
        match err {
            StreamError::Worker(msg) => assert!(msg.contains("blew up"), "{msg}"),
            other => panic!("expected Worker error, got {other}"),
        }
        assert!(pf.next_band(1).unwrap().is_none(), "poisoned after panic");
        // into_inner after a surfaced panic reports the panic as an
        // error instead of panicking the caller
        match pf.into_inner() {
            Err(PipelineError::WorkerPanicked(msg)) => {
                assert!(msg.contains("blew up"), "{msg}")
            }
            Err(other) => panic!("expected WorkerPanicked, got {other}"),
            Ok(_) => panic!("expected WorkerPanicked, got a source"),
        }
    }
}
