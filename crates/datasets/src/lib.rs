//! # ccl-datasets
//!
//! Synthetic dataset suite and measurement harness for the PAREMSP
//! reproduction (Gupta et al., IPPS 2014).
//!
//! The paper evaluates on four image families — **Aerial**, **Texture**
//! and **Miscellaneous** from the USC-SIPI database (≤ 1 Mpixel) and
//! **NLCD** land-cover rasters from 12 MB up to 465.20 MB — all binarized
//! with MATLAB's `im2bw(level = 0.5)`. Those exact images are proprietary
//! /external data; per DESIGN.md §3 this crate generates synthetic
//! stand-ins that match the *structural* properties CCL cost depends on
//! (density, component count and shape, run statistics):
//!
//! * [`synth::blobs`] — random disk/ellipse fields (aerial object scenes),
//! * [`synth::texture`] — periodic and quasi-periodic textures,
//! * [`synth::shapes`] — mixed shape/document scenes (miscellaneous),
//! * [`synth::landcover`] — multi-octave value noise (NLCD-like regions),
//! * [`synth::noise`] — Bernoulli noise at controlled density,
//! * [`synth::adversarial`] — spiral/comb/checkerboard stress patterns.
//!
//! [`suite`] assembles them into the paper's four families with matched
//! sizes (Table III for NLCD, scalable via a `scale` factor), and
//! [`harness`] / [`stats`] / [`speedup`] / [`report`] provide the
//! measurement pipeline behind every table and figure in `ccl-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod speedup;
pub mod stats;
pub mod suite;
pub mod synth;
