//! Speedup computation for Figures 4 and 5.

use serde::Serialize;

/// Speedup of a parallel time over the sequential baseline.
/// Returns 0 for non-positive parallel times (defensive).
pub fn speedup(seq_ms: f64, par_ms: f64) -> f64 {
    if par_ms <= 0.0 {
        0.0
    } else {
        seq_ms / par_ms
    }
}

/// One speedup-vs-threads curve (one line of Figure 4 or 5).
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupSeries {
    /// Curve label (dataset or image name).
    pub label: String,
    /// Thread counts (x axis).
    pub threads: Vec<usize>,
    /// Speedups (y axis), same length as `threads`.
    pub speedups: Vec<f64>,
}

impl SpeedupSeries {
    /// Builds a series from a sequential baseline and per-thread times.
    pub fn from_times(label: impl Into<String>, seq_ms: f64, per_thread: &[(usize, f64)]) -> Self {
        SpeedupSeries {
            label: label.into(),
            threads: per_thread.iter().map(|&(t, _)| t).collect(),
            speedups: per_thread
                .iter()
                .map(|&(_, ms)| speedup(seq_ms, ms))
                .collect(),
        }
    }

    /// Maximum speedup in the series (0 when empty).
    pub fn peak(&self) -> f64 {
        self.speedups.iter().copied().fold(0.0, f64::max)
    }

    /// Parallel efficiency (speedup / threads) at each point.
    pub fn efficiencies(&self) -> Vec<f64> {
        self.threads
            .iter()
            .zip(&self.speedups)
            .map(|(&t, &s)| if t == 0 { 0.0 } else { s / t as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_speedup() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
        assert_eq!(speedup(100.0, 0.0), 0.0);
        assert_eq!(speedup(100.0, -1.0), 0.0);
    }

    #[test]
    fn series_from_times() {
        let s = SpeedupSeries::from_times("img", 120.0, &[(2, 60.0), (4, 30.0), (8, 20.0)]);
        assert_eq!(s.threads, vec![2, 4, 8]);
        assert_eq!(s.speedups, vec![2.0, 4.0, 6.0]);
        assert_eq!(s.peak(), 6.0);
    }

    #[test]
    fn efficiencies() {
        let s = SpeedupSeries::from_times("img", 100.0, &[(2, 50.0), (4, 50.0)]);
        let e = s.efficiencies();
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_peak_is_zero() {
        let s = SpeedupSeries::from_times("x", 1.0, &[]);
        assert_eq!(s.peak(), 0.0);
    }
}
