//! Streamed variants of the synthetic generators — row bands on demand.
//!
//! The whole-image generators materialize `width × height` pixels before a
//! labeler sees the first row. For the out-of-core pipeline (`ccl-stream`)
//! the interesting images are *taller than memory*, so these variants
//! produce the identical pixel stream a band of rows at a time: every
//! stream here is tested to match its whole-image counterpart bit for bit.
//!
//! Generators whose pixels are pure functions of `(row, col, seed)`
//! (land-cover fBm, textures, adversarial patterns) stream trivially; the
//! Bernoulli noise carries its RNG across bands, drawing samples in the
//! same row-major order as [`super::noise::bernoulli`]. Placement-based
//! generators (blob fields, shape scenes) are intentionally absent — their
//! shape lists are global state; stream them by materializing once and
//! replaying (`ccl-stream`'s in-memory source).

use ccl_image::threshold::im2bw;
use ccl_image::{BinaryImage, GrayImage};
use rand::{Rng, SeedableRng};

use super::landcover::{fbm, LandcoverParams};

/// Boxed row filler: writes the 0/1 pixels of global row `r` into the
/// provided buffer.
type RowFill = Box<dyn FnMut(usize, &mut [u8]) + Send>;

/// A pull-based row-band generator: a binary image of known dimensions
/// delivered top-to-bottom in bands of caller-chosen height, holding only
/// the band being built.
pub struct RowStream {
    width: usize,
    height: usize,
    produced: usize,
    /// Fills one row buffer for global row index `r`. Called with strictly
    /// increasing `r` — stateful generators rely on that.
    fill: RowFill,
}

impl RowStream {
    /// Wraps a row-filling closure. `fill(r, row)` must write the 0/1
    /// pixels of global row `r`; it is invoked with strictly increasing
    /// row indices.
    pub fn new(
        width: usize,
        height: usize,
        fill: impl FnMut(usize, &mut [u8]) + Send + 'static,
    ) -> Self {
        RowStream {
            width,
            height,
            produced: 0,
            fill: Box::new(fill),
        }
    }

    /// Image width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total image height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Rows not yet delivered.
    pub fn rows_remaining(&self) -> usize {
        self.height - self.produced
    }

    /// Generates the next band of at most `max_rows` rows; `None` once the
    /// image is exhausted.
    ///
    /// # Panics
    /// Panics when `max_rows` is 0.
    pub fn next_band(&mut self, max_rows: usize) -> Option<BinaryImage> {
        assert!(max_rows > 0, "band height must be positive");
        let rows = max_rows.min(self.rows_remaining());
        if rows == 0 {
            return None;
        }
        let mut pixels = vec![0u8; rows * self.width];
        for (i, row) in pixels.chunks_mut(self.width.max(1)).enumerate() {
            if self.width > 0 {
                (self.fill)(self.produced + i, row);
            }
        }
        self.produced += rows;
        Some(
            BinaryImage::from_raw(self.width, rows, pixels)
                .expect("row fillers produce 0/1 pixels"),
        )
    }

    /// Materializes the remaining rows into one image (testing aid).
    pub fn collect(mut self) -> BinaryImage {
        let width = self.width;
        let rows = self.rows_remaining();
        let mut data = Vec::with_capacity(width * rows);
        while let Some(band) = self.next_band(64) {
            data.extend_from_slice(band.as_slice());
        }
        BinaryImage::from_raw(width, rows, data).expect("collected rows are 0/1")
    }
}

impl std::fmt::Debug for RowStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RowStream({}x{}, {} rows produced)",
            self.width, self.height, self.produced
        )
    }
}

/// Streamed [`BinaryImage::from_fn`]: pixels from a pure
/// `f(row, col) -> bool`.
pub fn fn_stream(
    width: usize,
    height: usize,
    mut f: impl FnMut(usize, usize) -> bool + Send + 'static,
) -> RowStream {
    RowStream::new(width, height, move |r, row| {
        for (c, px) in row.iter_mut().enumerate() {
            *px = u8::from(f(r, c));
        }
    })
}

/// Streamed [`super::noise::bernoulli`]: identical pixel stream, RNG state
/// carried across bands.
pub fn bernoulli_stream(width: usize, height: usize, density: f64, seed: u64) -> RowStream {
    let density = density.clamp(0.0, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RowStream::new(width, height, move |_, row| {
        for px in row.iter_mut() {
            *px = u8::from(rng.random::<f64>() < density);
        }
    })
}

/// Streamed [`super::landcover::landcover`]: the same fBm → `im2bw(0.5)`
/// pipeline, one row of grayscale at a time.
pub fn landcover_stream(
    width: usize,
    height: usize,
    params: LandcoverParams,
    seed: u64,
) -> RowStream {
    RowStream::new(width, height, move |r, row| {
        let gray = GrayImage::from_fn(width, 1, |_, c| (fbm(r, c, &params, seed) * 255.0) as u8);
        row.copy_from_slice(im2bw(&gray, 0.5).as_slice());
    })
}

/// Streamed [`super::texture::checkerboard`].
pub fn checkerboard_stream(width: usize, height: usize, cell: usize) -> RowStream {
    let cell = cell.max(1);
    fn_stream(width, height, move |r, c| {
        (r / cell + c / cell).is_multiple_of(2)
    })
}

/// Streamed [`super::adversarial::serpentine`].
pub fn serpentine_stream(width: usize, height: usize) -> RowStream {
    fn_stream(width, height, move |r, c| {
        if r % 2 == 0 {
            true
        } else if (r / 2) % 2 == 0 {
            c == width - 1
        } else {
            c == 0
        }
    })
}

/// Streamed [`super::adversarial::fine_checkerboard`].
pub fn fine_checkerboard_stream(width: usize, height: usize) -> RowStream {
    fn_stream(width, height, |r, c| (r + c) % 2 == 0)
}

/// Streamed [`super::adversarial::hstripes`].
pub fn hstripes_stream(width: usize, height: usize) -> RowStream {
    fn_stream(width, height, |r, _| r % 2 == 0)
}

/// Streamed [`super::adversarial::vstripes`].
pub fn vstripes_stream(width: usize, height: usize) -> RowStream {
    fn_stream(width, height, |_, c| c % 2 == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::adversarial::{fine_checkerboard, hstripes, serpentine, vstripes};
    use crate::synth::landcover::landcover;
    use crate::synth::noise::bernoulli;
    use crate::synth::texture::checkerboard;

    fn assert_stream_matches(mut stream: RowStream, full: &BinaryImage, band: usize) {
        assert_eq!(stream.width(), full.width());
        assert_eq!(stream.height(), full.height());
        let mut r0 = 0;
        while let Some(b) = stream.next_band(band) {
            for r in 0..b.height() {
                assert_eq!(b.row(r), full.row(r0 + r), "row {} (band {band})", r0 + r);
            }
            r0 += b.height();
        }
        assert_eq!(r0, full.height());
    }

    #[test]
    fn bernoulli_stream_matches_full_generator_across_band_heights() {
        let full = bernoulli(17, 23, 0.4, 99);
        for band in [1, 2, 3, 7, 23, 100] {
            assert_stream_matches(bernoulli_stream(17, 23, 0.4, 99), &full, band);
        }
    }

    #[test]
    fn landcover_stream_matches_full_generator() {
        let params = LandcoverParams {
            base_scale: 8.0,
            octaves: 3,
            persistence: 0.5,
        };
        let full = landcover(24, 18, params, 7);
        for band in [1, 5, 18] {
            assert_stream_matches(landcover_stream(24, 18, params, 7), &full, band);
        }
    }

    #[test]
    fn pure_pattern_streams_match_full_generators() {
        let w = 13;
        let h = 11;
        assert_stream_matches(checkerboard_stream(w, h, 3), &checkerboard(w, h, 3), 2);
        assert_stream_matches(serpentine_stream(w, h), &serpentine(w, h), 3);
        assert_stream_matches(fine_checkerboard_stream(w, h), &fine_checkerboard(w, h), 1);
        assert_stream_matches(hstripes_stream(w, h), &hstripes(w, h), 4);
        assert_stream_matches(vstripes_stream(w, h), &vstripes(w, h), 5);
    }

    #[test]
    fn collect_equals_banded_delivery() {
        let full = bernoulli(9, 14, 0.5, 3);
        assert_eq!(bernoulli_stream(9, 14, 0.5, 3).collect(), full);
    }

    #[test]
    fn exhausted_stream_returns_none() {
        let mut s = fn_stream(4, 2, |_, _| true);
        assert!(s.next_band(10).is_some());
        assert!(s.next_band(10).is_none());
        assert_eq!(s.rows_remaining(), 0);
    }

    #[test]
    fn zero_height_stream_is_immediately_empty() {
        let mut s = fn_stream(5, 0, |_, _| true);
        assert!(s.next_band(1).is_none());
    }

    #[test]
    fn debug_renders_progress() {
        let mut s = fn_stream(3, 4, |_, _| false);
        s.next_band(2);
        assert_eq!(format!("{s:?}"), "RowStream(3x4, 2 rows produced)");
    }
}
