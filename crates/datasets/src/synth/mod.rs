//! Synthetic binary-image generators.
//!
//! All generators are deterministic in their seed, so every benchmark and
//! test is reproducible. Generators that model grayscale acquisition
//! (landcover, some textures) produce a [`ccl_image::GrayImage`] first and
//! binarize it through [`ccl_image::threshold::im2bw`] — the same pipeline
//! the paper applies to its datasets.

pub mod adversarial;
pub mod blobs;
pub mod landcover;
pub mod noise;
pub mod shapes;
pub mod stream;
pub mod texture;

/// A deterministic 64-bit mix used by the hash-based generators
/// (SplitMix64 finalizer).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash of a lattice coordinate to a uniform `[0, 1)` value.
#[inline]
pub(crate) fn lattice_value(x: i64, y: i64, seed: u64) -> f64 {
    let h = mix64(seed ^ (x as u64).wrapping_mul(0x8DA6B343) ^ (y as u64).wrapping_mul(0xD8163841));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // avalanche sanity: flipping one input bit flips many output bits
        let a = mix64(0x1234);
        let b = mix64(0x1235);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn lattice_values_in_unit_interval() {
        for x in -5..5 {
            for y in -5..5 {
                let v = lattice_value(x, y, 7);
                assert!((0.0..1.0).contains(&v), "({x},{y}) -> {v}");
            }
        }
    }

    #[test]
    fn lattice_depends_on_seed_and_coords() {
        assert_ne!(lattice_value(1, 2, 3), lattice_value(2, 1, 3));
        assert_ne!(lattice_value(1, 2, 3), lattice_value(1, 2, 4));
        assert_eq!(lattice_value(1, 2, 3), lattice_value(1, 2, 3));
    }
}
