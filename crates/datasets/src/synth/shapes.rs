//! Mixed shape/document scenes — the "Miscellaneous" stand-in.
//!
//! USC-SIPI's miscellaneous set binarizes into scenes with a handful of
//! large structures plus scattered detail. [`shape_scene`] mixes filled
//! rectangles, rings and line segments; [`text_page`] lays out random
//! 5×7 dot-matrix glyphs in lines, modeling the character-recognition
//! workload the paper's introduction motivates (many small components of
//! similar size).

use ccl_image::BinaryImage;
use rand::{Rng, SeedableRng};

/// A scene of `n_shapes` random rectangles, rings and lines.
pub fn shape_scene(width: usize, height: usize, n_shapes: usize, seed: u64) -> BinaryImage {
    let mut img = BinaryImage::zeros(width, height);
    if width < 4 || height < 4 {
        return img;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..n_shapes {
        match rng.random_range(0..3u32) {
            0 => {
                // filled rectangle
                let r0 = rng.random_range(0..height - 1);
                let c0 = rng.random_range(0..width - 1);
                let rh = rng.random_range(1..=(height / 6).max(2));
                let rw = rng.random_range(1..=(width / 6).max(2));
                for r in r0..(r0 + rh).min(height) {
                    for c in c0..(c0 + rw).min(width) {
                        img.set(r, c, true);
                    }
                }
            }
            1 => {
                // ring (rectangle outline)
                let r0 = rng.random_range(0..height - 3);
                let c0 = rng.random_range(0..width - 3);
                let rh = rng.random_range(3..=(height / 4).max(4));
                let rw = rng.random_range(3..=(width / 4).max(4));
                let r1 = (r0 + rh).min(height - 1);
                let c1 = (c0 + rw).min(width - 1);
                for c in c0..=c1 {
                    img.set(r0, c, true);
                    img.set(r1, c, true);
                }
                for r in r0..=r1 {
                    img.set(r, c0, true);
                    img.set(r, c1, true);
                }
            }
            _ => {
                // Bresenham-ish line segment
                let (mut r, mut c) = (
                    rng.random_range(0..height) as f64,
                    rng.random_range(0..width) as f64,
                );
                let angle = rng.random::<f64>() * std::f64::consts::TAU;
                // lower bound keeps the range non-empty for tiny scenes
                let len = rng.random_range(4..((width + height) / 4).max(5));
                let (dr, dc) = (angle.sin(), angle.cos());
                for _ in 0..len {
                    if r < 0.0 || c < 0.0 || r >= height as f64 || c >= width as f64 {
                        break;
                    }
                    img.set(r as usize, c as usize, true);
                    r += dr;
                    c += dc;
                }
            }
        }
    }
    img
}

/// Lays out random 5×7 dot-matrix glyphs in text lines: glyph cells of
/// 6×8 pixels (1px letter spacing, 1px line spacing scaled by `scale`).
pub fn text_page(width: usize, height: usize, scale: usize, seed: u64) -> BinaryImage {
    let scale = scale.max(1);
    let mut img = BinaryImage::zeros(width, height);
    let cell_w = 6 * scale;
    let cell_h = 9 * scale;
    if width < cell_w || height < cell_h {
        return img;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cols = width / cell_w;
    let rows = height / cell_h;
    for gr in 0..rows {
        for gc in 0..cols {
            // ~15% spaces
            if rng.random::<f64>() < 0.15 {
                continue;
            }
            // random 5x7 glyph bitmap; forced center column so most glyphs
            // are single components (like real characters)
            let mut glyph = [[false; 5]; 7];
            for row in &mut glyph {
                for cell in row.iter_mut() {
                    *cell = rng.random::<f64>() < 0.55;
                }
            }
            for (i, row) in glyph.iter_mut().enumerate() {
                row[2] |= i % 2 == 0;
            }
            let base_r = gr * cell_h;
            let base_c = gc * cell_w;
            for (i, row) in glyph.iter().enumerate() {
                for (j, &on) in row.iter().enumerate() {
                    if !on {
                        continue;
                    }
                    for sr in 0..scale {
                        for sc in 0..scale {
                            let r = base_r + i * scale + sr;
                            let c = base_c + j * scale + sc;
                            if r < height && c < width {
                                img.set(r, c, true);
                            }
                        }
                    }
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(shape_scene(100, 100, 20, 1), shape_scene(100, 100, 20, 1));
        assert_eq!(text_page(120, 80, 1, 2), text_page(120, 80, 1, 2));
    }

    #[test]
    fn shape_scene_nonempty() {
        let img = shape_scene(128, 128, 30, 7);
        assert!(img.count_foreground() > 100);
        assert!(img.density() < 0.9);
    }

    #[test]
    fn tiny_canvas_is_safe() {
        assert_eq!(shape_scene(3, 3, 10, 1).count_foreground(), 0);
        assert_eq!(text_page(4, 4, 1, 1).count_foreground(), 0);
    }

    #[test]
    fn text_page_produces_many_small_components() {
        use ccl_core::seq::flood_fill_label;
        let img = text_page(240, 180, 1, 3);
        let li = flood_fill_label(&img);
        // a page of glyphs: lots of components
        assert!(li.num_components() > 50, "{}", li.num_components());
        // median component is glyph-sized, not page-sized
        let mut sizes: Vec<usize> = li.component_sizes().into_iter().skip(1).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(median <= 35 * 4, "median {median}");
    }

    #[test]
    fn text_page_scaling_grows_glyphs() {
        let s1 = text_page(240, 180, 1, 4);
        let s2 = text_page(480, 360, 2, 4);
        // same layout at 2x scale => ~4x foreground
        let ratio = s2.count_foreground() as f64 / s1.count_foreground() as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
