//! Multi-octave value noise — the NLCD land-cover stand-in.
//!
//! Thresholded land-cover rasters consist of large contiguous regions
//! with fractal boundaries and enclosed holes. Fractional-Brownian-motion
//! value noise reproduces exactly that: smooth large-scale structure from
//! the low octaves, boundary roughness from the high ones. The noise is
//! hash-based (no stored lattice), so the 465 MB Table III images generate
//! in a single streaming pass; rendered to grayscale and binarized with
//! `im2bw(0.5)`, matching the paper's pipeline.

use ccl_image::threshold::im2bw;
use ccl_image::{BinaryImage, GrayImage};

use super::lattice_value;

/// Parameters for [`landcover`].
#[derive(Debug, Clone, Copy)]
pub struct LandcoverParams {
    /// Lattice spacing of the base octave, in pixels (feature size).
    pub base_scale: f64,
    /// Number of octaves (each halves the spacing and the amplitude).
    pub octaves: u32,
    /// Amplitude falloff per octave in `(0, 1]`.
    pub persistence: f64,
}

impl Default for LandcoverParams {
    fn default() -> Self {
        LandcoverParams {
            base_scale: 96.0,
            octaves: 5,
            persistence: 0.55,
        }
    }
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Single octave of value noise at lattice spacing `scale`.
#[inline]
fn value_noise(r: f64, c: f64, scale: f64, seed: u64) -> f64 {
    let x = c / scale;
    let y = r / scale;
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = smoothstep(x - x0);
    let ty = smoothstep(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice_value(xi, yi, seed);
    let v10 = lattice_value(xi + 1, yi, seed);
    let v01 = lattice_value(xi, yi + 1, seed);
    let v11 = lattice_value(xi + 1, yi + 1, seed);
    let top = v00 + (v10 - v00) * tx;
    let bot = v01 + (v11 - v01) * tx;
    top + (bot - top) * ty
}

/// Raw fBm value in `[0, 1]` at pixel `(r, c)`.
pub fn fbm(r: usize, c: usize, params: &LandcoverParams, seed: u64) -> f64 {
    let mut amplitude = 1.0;
    let mut scale = params.base_scale.max(1.0);
    let mut sum = 0.0;
    let mut norm = 0.0;
    for octave in 0..params.octaves.max(1) {
        sum += amplitude * value_noise(r as f64, c as f64, scale, seed ^ octave as u64);
        norm += amplitude;
        amplitude *= params.persistence;
        scale = (scale / 2.0).max(1.0);
    }
    sum / norm
}

/// The grayscale land-cover field (before binarization).
pub fn landcover_gray(
    width: usize,
    height: usize,
    params: LandcoverParams,
    seed: u64,
) -> GrayImage {
    GrayImage::from_fn(width, height, |r, c| {
        (fbm(r, c, &params, seed) * 255.0) as u8
    })
}

/// NLCD-like binary mask: fBm noise binarized at level 0.5 via the
/// paper's `im2bw` pipeline.
pub fn landcover(width: usize, height: usize, params: LandcoverParams, seed: u64) -> BinaryImage {
    im2bw(&landcover_gray(width, height, params, seed), 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = LandcoverParams::default();
        assert_eq!(landcover(128, 128, p, 1), landcover(128, 128, p, 1));
        assert_ne!(landcover(128, 128, p, 1), landcover(128, 128, p, 2));
    }

    #[test]
    fn density_is_moderate() {
        // fBm noise centered near 0.5: neither empty nor full
        let img = landcover(256, 256, LandcoverParams::default(), 7);
        let d = img.density();
        assert!(d > 0.2 && d < 0.8, "density {d}");
    }

    #[test]
    fn produces_large_regions_not_speckle() {
        use ccl_image::stats::binary_stats;
        let img = landcover(256, 256, LandcoverParams::default(), 3);
        let s = binary_stats(&img);
        // land-cover regions: long runs compared to pixel noise
        assert!(s.mean_run_len > 8.0, "mean run length {}", s.mean_run_len);
        // few components relative to area
        let li = ccl_core::seq::flood_fill_label(&img);
        assert!(
            (li.num_components() as usize) < img.len() / 500,
            "{} components",
            li.num_components()
        );
    }

    #[test]
    fn fbm_range_is_unit_interval() {
        let p = LandcoverParams::default();
        for r in (0..200).step_by(17) {
            for c in (0..200).step_by(13) {
                let v = fbm(r, c, &p, 11);
                assert!((0.0..=1.0).contains(&v), "({r},{c}) -> {v}");
            }
        }
    }

    #[test]
    fn smaller_base_scale_means_more_detail() {
        use ccl_image::stats::binary_stats;
        let coarse = landcover(
            256,
            256,
            LandcoverParams {
                base_scale: 128.0,
                ..Default::default()
            },
            5,
        );
        let fine = landcover(
            256,
            256,
            LandcoverParams {
                base_scale: 16.0,
                ..Default::default()
            },
            5,
        );
        assert!(binary_stats(&fine).runs > binary_stats(&coarse).runs);
    }
}
