//! Periodic and quasi-periodic textures — the "Texture" stand-in.
//!
//! USC-SIPI texture images (Brodatz scans) binarize into dense repeating
//! micro-structure: short runs, high transition counts, few large
//! components. These generators cover that space: oriented stripes,
//! checkerboards, thresholded sinusoidal gratings and concentric rings
//! ("wood grain").

use ccl_image::threshold::im2bw;
use ccl_image::{BinaryImage, GrayImage};

/// Diagonal stripes: foreground where `(r·dy + c·dx) mod period < width`.
pub fn stripes(
    width: usize,
    height: usize,
    period: usize,
    stripe_width: usize,
    direction: (usize, usize),
) -> BinaryImage {
    let period = period.max(1);
    let stripe_width = stripe_width.min(period);
    let (dy, dx) = direction;
    BinaryImage::from_fn(width, height, |r, c| {
        (r * dy + c * dx) % period < stripe_width
    })
}

/// Checkerboard with `cell × cell` squares.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> BinaryImage {
    let cell = cell.max(1);
    BinaryImage::from_fn(width, height, |r, c| {
        (r / cell + c / cell).is_multiple_of(2)
    })
}

/// Two crossed sinusoidal gratings rendered to grayscale and binarized at
/// level 0.5 — the `im2bw` pipeline of the paper.
pub fn grating(width: usize, height: usize, fx: f64, fy: f64, phase: f64) -> BinaryImage {
    let gray = GrayImage::from_fn(width, height, |r, c| {
        let v = ((c as f64 * fx + phase).sin() + (r as f64 * fy).cos()) * 0.25 + 0.5;
        (v.clamp(0.0, 1.0) * 255.0) as u8
    });
    im2bw(&gray, 0.5)
}

/// Concentric rings around the image center ("wood grain").
pub fn rings(width: usize, height: usize, period: f64) -> BinaryImage {
    let period = period.max(2.0);
    let (cy, cx) = (height as f64 / 2.0, width as f64 / 2.0);
    BinaryImage::from_fn(width, height, |r, c| {
        let d = ((r as f64 - cy).powi(2) + (c as f64 - cx).powi(2)).sqrt();
        (d / period).fract() < 0.5
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_have_expected_density() {
        let img = stripes(100, 100, 10, 5, (0, 1));
        assert!((img.density() - 0.5).abs() < 0.01);
        // vertical stripes: each row identical
        assert_eq!(img.row(0), img.row(99));
    }

    #[test]
    fn diagonal_stripes_shift_per_row() {
        let img = stripes(50, 50, 8, 4, (1, 1));
        assert_ne!(img.row(0), img.row(1));
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(8, 8, 2);
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(0, 2), 0);
        assert_eq!(img.get(2, 0), 0);
        assert_eq!(img.get(2, 2), 1);
        assert!((img.density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grating_is_roughly_half_dense() {
        let img = grating(128, 128, 0.3, 0.2, 0.0);
        let d = img.density();
        assert!(d > 0.3 && d < 0.7, "density {d}");
    }

    #[test]
    fn rings_center_symmetry() {
        let img = rings(64, 64, 8.0);
        // same distance -> same value
        assert_eq!(img.get(32, 40), img.get(40, 32));
        let d = img.density();
        assert!(d > 0.3 && d < 0.7, "density {d}");
    }

    #[test]
    fn degenerate_parameters() {
        // period smaller than stripe width clamps; period 0 becomes 1
        let img = stripes(10, 10, 0, 5, (0, 1));
        assert_eq!(img.count_foreground(), 100);
        let c = checkerboard(4, 4, 0);
        assert_eq!(c.get(0, 0), 1);
    }
}
