//! Bernoulli noise at a controlled foreground density.
//!
//! The simplest structural sweep axis: at low density components are tiny
//! and numerous, around the 8-connectivity percolation threshold
//! (~0.40–0.45 for site percolation with diagonals) a giant component
//! appears, and at high density the image is one blob with holes. Label
//! creation and merge rates vary drastically along this sweep, which is
//! what the scan/union-find ablations measure.

use ccl_image::BinaryImage;
use rand::{Rng, SeedableRng};

/// Bernoulli noise: each pixel is foreground independently with
/// probability `density`.
pub fn bernoulli(width: usize, height: usize, density: f64, seed: u64) -> BinaryImage {
    let density = density.clamp(0.0, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    BinaryImage::from_fn(width, height, |_, _| rng.random::<f64>() < density)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = bernoulli(64, 64, 0.5, 9);
        let b = bernoulli(64, 64, 0.5, 9);
        assert_eq!(a, b);
        let c = bernoulli(64, 64, 0.5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn density_is_approximately_respected() {
        for &d in &[0.1, 0.5, 0.9] {
            let img = bernoulli(200, 200, d, 1);
            let measured = img.density();
            assert!(
                (measured - d).abs() < 0.02,
                "target {d}, measured {measured}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        assert_eq!(bernoulli(32, 32, 0.0, 5).count_foreground(), 0);
        assert_eq!(bernoulli(32, 32, 1.0, 5).count_foreground(), 1024);
        // out-of-range clamps
        assert_eq!(bernoulli(8, 8, -1.0, 5).count_foreground(), 0);
        assert_eq!(bernoulli(8, 8, 2.0, 5).count_foreground(), 64);
    }
}
