//! Random disk/ellipse fields — the "Aerial" stand-in.
//!
//! Aerial photography binarized at level 0.5 yields fields of compact
//! objects (buildings, vehicles, vegetation patches) over background.
//! This generator scatters axis-aligned ellipses of random size until a
//! target coverage is reached; overlaps create the irregular merged
//! object shapes that drive equivalence-merge activity in the scan.

use ccl_image::BinaryImage;
use rand::{Rng, SeedableRng};

/// Parameters for [`blob_field`].
#[derive(Debug, Clone, Copy)]
pub struct BlobParams {
    /// Target foreground coverage in `[0, 1]` (approximate; generation
    /// stops when reached).
    pub coverage: f64,
    /// Minimum ellipse semi-axis, pixels.
    pub min_radius: usize,
    /// Maximum ellipse semi-axis, pixels.
    pub max_radius: usize,
}

impl Default for BlobParams {
    fn default() -> Self {
        BlobParams {
            coverage: 0.3,
            min_radius: 2,
            max_radius: 24,
        }
    }
}

/// Scatters random ellipses until `params.coverage` of the image is
/// foreground (or a safety cap on attempts is reached).
pub fn blob_field(width: usize, height: usize, params: BlobParams, seed: u64) -> BinaryImage {
    let mut img = BinaryImage::zeros(width, height);
    if width == 0 || height == 0 || params.coverage <= 0.0 {
        return img;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let target = ((width * height) as f64 * params.coverage.min(1.0)) as usize;
    let mut covered = 0usize;
    // Cap attempts: high coverage with heavy overlap converges slowly.
    let max_blobs = 16 * (width * height) / (params.min_radius * params.min_radius + 1).max(1);
    let (min_r, max_r) = (
        params.min_radius.max(1),
        params.max_radius.max(params.min_radius.max(1)),
    );
    for _ in 0..max_blobs {
        if covered >= target {
            break;
        }
        let cy = rng.random_range(0..height) as isize;
        let cx = rng.random_range(0..width) as isize;
        let ry = rng.random_range(min_r..=max_r) as isize;
        let rx = rng.random_range(min_r..=max_r) as isize;
        for dy in -ry..=ry {
            let y = cy + dy;
            if y < 0 || y as usize >= height {
                continue;
            }
            // ellipse row half-width
            let frac = 1.0 - (dy as f64 / ry as f64).powi(2);
            let half = (rx as f64 * frac.sqrt()) as isize;
            for dx in -half..=half {
                let x = cx + dx;
                if x < 0 || x as usize >= width {
                    continue;
                }
                if img.get(y as usize, x as usize) == 0 {
                    img.set(y as usize, x as usize, true);
                    covered += 1;
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = BlobParams::default();
        assert_eq!(blob_field(128, 128, p, 3), blob_field(128, 128, p, 3));
    }

    #[test]
    fn coverage_reached_approximately() {
        let p = BlobParams {
            coverage: 0.25,
            min_radius: 2,
            max_radius: 10,
        };
        let img = blob_field(256, 256, p, 1);
        let d = img.density();
        assert!(d >= 0.23, "density {d} too low");
        assert!(d <= 0.40, "density {d} overshoots too far");
    }

    #[test]
    fn zero_coverage_is_empty() {
        let p = BlobParams {
            coverage: 0.0,
            ..Default::default()
        };
        assert_eq!(blob_field(64, 64, p, 1).count_foreground(), 0);
    }

    #[test]
    fn empty_dimensions() {
        let p = BlobParams::default();
        assert!(blob_field(0, 10, p, 1).is_empty());
        assert!(blob_field(10, 0, p, 1).is_empty());
    }

    #[test]
    fn produces_compact_components() {
        // blobs should yield far fewer runs than Bernoulli noise of the
        // same density: compact shapes have long runs
        use ccl_image::stats::binary_stats;
        let p = BlobParams {
            coverage: 0.3,
            min_radius: 4,
            max_radius: 16,
        };
        let b = blob_field(256, 256, p, 5);
        let n = super::super::noise::bernoulli(256, 256, b.density(), 5);
        let sb = binary_stats(&b);
        let sn = binary_stats(&n);
        assert!(sb.mean_run_len > 2.0 * sn.mean_run_len);
    }
}
