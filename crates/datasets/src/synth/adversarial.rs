//! Adversarial stress patterns.
//!
//! These target specific algorithmic weak points rather than modeling any
//! natural dataset:
//!
//! * [`spiral`] — one component whose labels can only be unified through
//!   a chain of merges proportional to the image perimeter (kills
//!   repeated-pass algorithms; stresses union-find depth),
//! * [`comb`] — many vertical teeth joined by a single bar: every tooth
//!   produces a provisional label that merges at one row (worst case for
//!   PAREMSP's boundary merge when the bar falls on a chunk boundary),
//! * [`fine_checkerboard`] — the maximum label-creation-rate pattern for
//!   8-connectivity scans,
//! * [`hstripes`] / [`vstripes`] — many independent components with no
//!   merges at all (pure label-allocation throughput).

use ccl_image::BinaryImage;

/// A rectangular inward spiral: a single one-pixel-wide arm separated
/// from itself by one-pixel gaps. Connecting the innermost pixel to the
/// outer corner requires following the whole arm — a merge/propagation
/// chain of length Θ(size²).
pub fn spiral(size: usize) -> BinaryImage {
    let mut img = BinaryImage::zeros(size, size);
    if size == 0 {
        return img;
    }
    let n = size as isize;
    let (mut top, mut bottom, mut left, mut right) = (0isize, n - 1, 0isize, n - 1);
    loop {
        // top row, left → right
        for c in left..=right {
            img.set(top as usize, c as usize, true);
        }
        // right column, downward
        for r in top + 1..=bottom {
            img.set(r as usize, right as usize, true);
        }
        // bottom row, right → left (when distinct from the top row)
        if bottom > top {
            for c in left..right {
                img.set(bottom as usize, c as usize, true);
            }
        }
        // left column, upward, stopping two rows short of the top row to
        // leave the inter-arm gap
        for r in top + 2..bottom {
            img.set(r as usize, left as usize, true);
        }
        // connector from the left column's end into the next ring
        if top + 2 <= bottom && left < right {
            img.set((top + 2) as usize, (left + 1) as usize, true);
        }
        top += 2;
        left += 2;
        right -= 2;
        bottom -= 2;
        if top > bottom || left > right {
            break;
        }
    }
    img
}

/// Boustrophedon snake: full even rows joined by alternating-side
/// connectors in the odd rows. Like [`spiral`], a single component with a
/// Θ(width·height) internal path, but with chunk-boundary-friendly
/// geometry (every even row crosses the whole image).
pub fn serpentine(width: usize, height: usize) -> BinaryImage {
    BinaryImage::from_fn(width, height, |r, c| {
        if r % 2 == 0 {
            true
        } else if (r / 2) % 2 == 0 {
            c == width - 1
        } else {
            c == 0
        }
    })
}

/// Vertical teeth of width 1 with one-pixel gaps, joined by a bar at
/// `bar_row`.
pub fn comb(width: usize, height: usize, bar_row: usize) -> BinaryImage {
    let bar_row = bar_row.min(height.saturating_sub(1));
    BinaryImage::from_fn(width, height, |r, c| r == bar_row || c % 2 == 0)
}

/// One-pixel checkerboard: under 8-connectivity a single component, but
/// every other pixel of the first row of each chunk allocates a label.
pub fn fine_checkerboard(width: usize, height: usize) -> BinaryImage {
    BinaryImage::from_fn(width, height, |r, c| (r + c) % 2 == 0)
}

/// Horizontal one-pixel stripes: `height / 2` independent components.
pub fn hstripes(width: usize, height: usize) -> BinaryImage {
    BinaryImage::from_fn(width, height, |r, _| r % 2 == 0)
}

/// Vertical one-pixel stripes: `width / 2` independent components.
pub fn vstripes(width: usize, height: usize) -> BinaryImage {
    BinaryImage::from_fn(width, height, |_, c| c % 2 == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccl_core::seq::flood_fill_label;

    #[test]
    fn spiral_is_single_component() {
        for size in [1, 2, 5, 8, 17, 32, 33] {
            let img = spiral(size);
            let li = flood_fill_label(&img);
            assert_eq!(li.num_components(), 1, "size {size}");
        }
    }

    #[test]
    fn spiral_density_near_half() {
        let img = spiral(64);
        let d = img.density();
        assert!(d > 0.4 && d < 0.6, "density {d}");
    }

    #[test]
    fn spiral_has_long_internal_path() {
        // the two endpoints of the arm are far apart along the arm even
        // though they are geometrically close: removing one interior arm
        // pixel must split the component in two.
        let mut img = spiral(21);
        assert_eq!(flood_fill_label(&img).num_components(), 1);
        img.set(0, 10, false); // cut the outer arm mid-way
        assert_eq!(flood_fill_label(&img).num_components(), 2);
    }

    #[test]
    fn serpentine_is_single_component() {
        for (w, h) in [(8, 8), (11, 9), (16, 5), (1, 7), (7, 1)] {
            let img = serpentine(w, h);
            assert_eq!(flood_fill_label(&img).num_components(), 1, "{w}x{h}");
        }
    }

    #[test]
    fn comb_is_single_component() {
        let img = comb(40, 30, 15);
        assert_eq!(flood_fill_label(&img).num_components(), 1);
    }

    #[test]
    fn comb_without_bar_would_be_many() {
        let teeth = BinaryImage::from_fn(40, 30, |_, c| c % 2 == 0);
        assert_eq!(flood_fill_label(&teeth).num_components(), 20);
    }

    #[test]
    fn fine_checkerboard_single_component_8conn() {
        let img = fine_checkerboard(32, 32);
        assert_eq!(flood_fill_label(&img).num_components(), 1);
    }

    #[test]
    fn stripe_component_counts() {
        assert_eq!(flood_fill_label(&hstripes(16, 10)).num_components(), 5);
        assert_eq!(flood_fill_label(&vstripes(10, 16)).num_components(), 5);
    }

    #[test]
    fn all_adversarial_match_across_algorithms() {
        use ccl_core::Algorithm;
        for img in [
            spiral(33),
            comb(31, 22, 11),
            fine_checkerboard(25, 18),
            hstripes(20, 15),
            vstripes(15, 20),
        ] {
            let reference = flood_fill_label(&img).canonicalized();
            for algo in Algorithm::all_sequential() {
                assert_eq!(algo.run(&img).canonicalized(), reference, "{}", algo.name());
            }
            for threads in [2, 4, 8] {
                assert_eq!(
                    Algorithm::Paremsp(threads).run(&img).canonicalized(),
                    reference,
                    "paremsp {threads}"
                );
            }
        }
    }
}
