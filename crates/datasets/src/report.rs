//! Report rendering: aligned ASCII tables (the paper's Tables II–IV),
//! CSV, JSON export and a small ASCII chart for the speedup figures.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

/// A simple table with a header row.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns (first column left-aligned, the rest
    /// right-aligned, numbers being the common case).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    out.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// CSV rendering (naive quoting: cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Serializes any value as pretty JSON to `path` (used by the bench bins
/// to leave machine-readable results next to EXPERIMENTS.md).
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// Renders speedup-style series as an ASCII chart: x = threads,
/// y = speedup, one mark per series. Series are `(label, points)` with
/// points `(x, y)`.
pub fn ascii_chart(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let xmax = all.iter().map(|p| p.0).fold(1.0, f64::max);
    let ymax = all.iter().map(|p| p.1).fold(1.0, f64::max);
    let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts {
            let col = ((x / xmax) * (width - 1) as f64).round() as usize;
            let row = height - 1 - ((y / ymax) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>6.1} ┤\n"));
    for row in &grid {
        out.push_str("       │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!("        1{:>width$.0}\n", xmax, width = width - 1));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", marks[si % marks.len()], label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Image", "Min", "Max"]);
        t.push_row(["aerial-1", "2.5", "86.64"]);
        t.push_row(["a", "13.68", "1.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Image"));
        assert!(lines[1].starts_with("---"));
        // right alignment of numeric columns
        assert!(lines[2].contains("  2.5"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["a,b", "1"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",1"));
    }

    #[test]
    fn json_round_trips() {
        let dir = std::env::temp_dir().join("ccl_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        write_json(&path, &t).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"headers\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chart_renders_marks_and_legend() {
        let series = vec![
            ("image 6".to_string(), vec![(2.0, 1.9), (24.0, 20.1)]),
            ("image 1".to_string(), vec![(2.0, 1.5), (24.0, 6.0)]),
        ];
        let chart = ascii_chart(&series, 40, 12);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("image 6"));
    }

    #[test]
    fn chart_empty() {
        assert_eq!(ascii_chart(&[], 10, 5), "(no data)\n");
    }
}
