//! Min/avg/max aggregation — the statistic reported in Tables II and IV.

use serde::Serialize;

/// Minimum, mean and maximum of a sample (milliseconds in the tables).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Aggregates a sample; `None` when empty.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Summary {
            min,
            avg: sum / values.len() as f64,
            max,
        })
    }

    /// The three row labels of Tables II/IV, in paper order.
    pub const ROW_LABELS: [&'static str; 3] = ["Min", "Average", "Max"];

    /// The statistic corresponding to [`Self::ROW_LABELS`]`[i]`.
    pub fn row(&self, i: usize) -> f64 {
        match i {
            0 => self.min,
            1 => self.avg,
            2 => self.max,
            _ => panic!("row index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_correctly() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.avg, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.5]).unwrap();
        assert_eq!((s.min, s.avg, s.max), (5.5, 5.5, 5.5));
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn row_accessor_matches_labels() {
        let s = Summary::of(&[1.0, 2.0, 6.0]).unwrap();
        assert_eq!(s.row(0), 1.0);
        assert_eq!(s.row(1), 3.0);
        assert_eq!(s.row(2), 6.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        Summary::of(&[1.0]).unwrap().row(3);
    }
}
