//! The paper's four dataset families, as synthetic stand-ins (DESIGN.md §3).
//!
//! * [`aerial`], [`texture`], [`miscellaneous`] — the three USC-SIPI
//!   families; every image ≤ 1 Mpixel ("1 MB or less" of binary raster),
//! * [`nlcd`] — six land-cover images with the Table III sizes
//!   (12 … 465.20 MB), scaled by a `scale` factor so benchmarks can
//!   trade fidelity for runtime (`scale = 1.0` reproduces the full
//!   sizes; the default harness scale is 0.05).

use ccl_image::BinaryImage;

use crate::synth::blobs::{blob_field, BlobParams};
use crate::synth::landcover::{landcover, LandcoverParams};
use crate::synth::noise::bernoulli;
use crate::synth::shapes::{shape_scene, text_page};
use crate::synth::texture::{checkerboard, grating, rings, stripes};

/// One named benchmark image.
pub struct SuiteImage {
    /// Image name as reported in tables (e.g. `aerial-3`, `image 6`).
    pub name: String,
    /// The binary image.
    pub image: BinaryImage,
}

impl SuiteImage {
    /// Raster size in megabytes (1 byte/pixel, the paper's convention).
    pub fn size_mb(&self) -> f64 {
        self.image.raster_bytes() as f64 / 1.0e6
    }
}

/// A dataset family (one row group of Tables II/IV).
pub struct Family {
    /// Family name: `Aerial`, `Texture`, `Miscellaneous` or `NLCD`.
    pub name: &'static str,
    /// The images, in table order.
    pub images: Vec<SuiteImage>,
}

/// The Table III image sizes in MB (1 byte/pixel).
pub const NLCD_SIZES_MB: [f64; 6] = [12.0, 33.0, 37.31, 116.30, 132.03, 465.20];

/// Aerial stand-in: object fields of random ellipses at varying coverage
/// and object size; six images from 0.26 to 1.05 Mpixel.
pub fn aerial() -> Family {
    let specs: [(usize, f64, usize, usize); 6] = [
        (512, 0.15, 2, 10),
        (640, 0.25, 3, 16),
        (768, 0.35, 2, 24),
        (896, 0.30, 4, 32),
        (960, 0.45, 2, 12),
        (1024, 0.20, 6, 48),
    ];
    let images = specs
        .iter()
        .enumerate()
        .map(|(i, &(side, coverage, min_r, max_r))| SuiteImage {
            name: format!("aerial-{}", i + 1),
            image: blob_field(
                side,
                side,
                BlobParams {
                    coverage,
                    min_radius: min_r,
                    max_radius: max_r,
                },
                0xAE01 + i as u64,
            ),
        })
        .collect();
    Family {
        name: "Aerial",
        images,
    }
}

/// Texture stand-in: six periodic / quasi-periodic patterns.
pub fn texture() -> Family {
    let images = vec![
        SuiteImage {
            name: "texture-1".into(),
            image: stripes(768, 768, 8, 4, (1, 1)),
        },
        SuiteImage {
            name: "texture-2".into(),
            image: checkerboard(832, 832, 3),
        },
        SuiteImage {
            name: "texture-3".into(),
            image: grating(896, 896, 0.23, 0.31, 0.7),
        },
        SuiteImage {
            name: "texture-4".into(),
            image: rings(960, 960, 9.0),
        },
        SuiteImage {
            name: "texture-5".into(),
            image: stripes(1024, 1024, 16, 7, (2, 1)),
        },
        SuiteImage {
            name: "texture-6".into(),
            image: grating(1024, 1024, 0.11, 0.47, 0.0),
        },
    ];
    Family {
        name: "Texture",
        images,
    }
}

/// Miscellaneous stand-in: shape scenes, document pages and noise.
pub fn miscellaneous() -> Family {
    let images = vec![
        SuiteImage {
            name: "misc-1".into(),
            image: shape_scene(384, 384, 60, 0x301),
        },
        SuiteImage {
            name: "misc-2".into(),
            image: text_page(512, 384, 1, 0x302),
        },
        SuiteImage {
            name: "misc-3".into(),
            image: bernoulli(448, 448, 0.35, 0x303),
        },
        SuiteImage {
            name: "misc-4".into(),
            image: shape_scene(512, 512, 140, 0x304),
        },
        SuiteImage {
            name: "misc-5".into(),
            image: text_page(640, 512, 2, 0x305),
        },
        SuiteImage {
            name: "misc-6".into(),
            image: bernoulli(512, 512, 0.6, 0x306),
        },
    ];
    Family {
        name: "Miscellaneous",
        images,
    }
}

/// Dimensions (width, height) of NLCD image `index` (1-based) at `scale`.
pub fn nlcd_dims(index: usize, scale: f64) -> (usize, usize) {
    assert!((1..=NLCD_SIZES_MB.len()).contains(&index), "index 1..=6");
    assert!(scale > 0.0, "scale must be positive");
    let pixels = (NLCD_SIZES_MB[index - 1] * 1.0e6 * scale).max(4.0);
    // Mildly wide aspect (4:3), like geographic rasters.
    let height = (pixels / (4.0 / 3.0)).sqrt().round().max(2.0) as usize;
    let width = (pixels / height as f64).round().max(2.0) as usize;
    (width, height)
}

/// One NLCD-like image (1-based index into Table III) at the given scale.
pub fn nlcd_image(index: usize, scale: f64) -> SuiteImage {
    let (width, height) = nlcd_dims(index, scale);
    // feature size grows with the raster so structure stays map-like
    let base_scale = (width.min(height) as f64 / 24.0).max(8.0);
    SuiteImage {
        name: format!("image {index}"),
        image: landcover(
            width,
            height,
            LandcoverParams {
                base_scale,
                octaves: 5,
                persistence: 0.55,
            },
            0x41CD + index as u64,
        ),
    }
}

/// The six-image NLCD family at the given scale.
pub fn nlcd(scale: f64) -> Family {
    Family {
        name: "NLCD",
        images: (1..=NLCD_SIZES_MB.len())
            .map(|i| nlcd_image(i, scale))
            .collect(),
    }
}

/// The three small (≤ 1 Mpixel) families of Figure 4 / Tables II & IV.
pub fn small_families() -> Vec<Family> {
    vec![aerial(), texture(), miscellaneous()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_families_within_one_megapixel() {
        for family in small_families() {
            assert_eq!(family.images.len(), 6);
            for img in &family.images {
                assert!(
                    img.image.len() <= 1 << 20,
                    "{} has {} pixels",
                    img.name,
                    img.image.len()
                );
                assert!(img.image.count_foreground() > 0, "{} empty", img.name);
            }
        }
    }

    #[test]
    fn nlcd_sizes_match_table3() {
        for (i, &mb) in NLCD_SIZES_MB.iter().enumerate() {
            let (w, h) = nlcd_dims(i + 1, 0.01);
            let actual_mb = (w * h) as f64 / 1.0e6 / 0.01;
            assert!(
                (actual_mb - mb).abs() / mb < 0.05,
                "image {}: target {mb} MB, got {actual_mb:.2} MB",
                i + 1
            );
        }
    }

    #[test]
    fn nlcd_family_is_ordered_by_size() {
        let fam = nlcd(0.002);
        for pair in fam.images.windows(2) {
            assert!(pair[0].image.len() <= pair[1].image.len());
        }
        assert_eq!(fam.images[5].name, "image 6");
    }

    #[test]
    fn suite_images_are_deterministic() {
        let a = aerial();
        let b = aerial();
        assert_eq!(a.images[0].image, b.images[0].image);
        let n1 = nlcd_image(1, 0.005);
        let n2 = nlcd_image(1, 0.005);
        assert_eq!(n1.image, n2.image);
    }

    #[test]
    fn size_mb_reports_raster_bytes() {
        let img = SuiteImage {
            name: "t".into(),
            image: BinaryImage::zeros(1000, 1000),
        };
        assert!((img.size_mb() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "index")]
    fn nlcd_index_out_of_range() {
        nlcd_dims(7, 1.0);
    }
}
