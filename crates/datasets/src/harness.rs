//! Timing harness for the table/figure binaries.
//!
//! Criterion drives the statistical micro-benchmarks; these helpers drive
//! the *table generators*, which need one wall-clock number per
//! (algorithm, image) cell the way the paper measured them: best of a few
//! repetitions after a warm-up run.

use std::time::Instant;

/// Milliseconds elapsed while running `f` once; returns `(result, ms)`.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Best-of-`reps` timing in milliseconds (one untimed warm-up first).
/// `reps` is clamped to ≥ 1.
pub fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let reps = reps.max(1);
    std::hint::black_box(f()); // warm-up: page in buffers, warm caches
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Average-of-`reps` timing in milliseconds (one untimed warm-up first).
pub fn time_avg_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let reps = reps.max(1);
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result_and_positive_time() {
        let (r, ms) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(r, 49_995_000);
        assert!(ms >= 0.0);
    }

    #[test]
    fn best_of_is_not_larger_than_a_single_run() {
        let work = || {
            let mut x = 0u64;
            for i in 0..200_000 {
                x = x.wrapping_add(i * i);
            }
            x
        };
        let (_, single) = time_once(work);
        let best = time_best_of(5, work);
        // generous slack: the best of 5 should not exceed 5x one run
        assert!(best <= single * 5.0 + 5.0);
        assert!(best > 0.0);
    }

    #[test]
    fn reps_clamped_to_one() {
        let ms = time_best_of(0, || 1 + 1);
        assert!(ms.is_finite());
        let ms = time_avg_of(0, || 1 + 1);
        assert!(ms.is_finite());
    }
}
