//! Integration checks over the dataset suite: the families must have the
//! structural spread that makes the paper's comparisons meaningful.

use ccl_core::seq::flood_fill_label;
use ccl_datasets::suite::{miscellaneous, nlcd, small_families, texture};
use ccl_image::stats::binary_stats;

#[test]
fn family_images_are_structurally_diverse() {
    for family in small_families() {
        let densities: Vec<f64> = family
            .images
            .iter()
            .map(|img| img.image.density())
            .collect();
        // no degenerate (empty/full) images
        for (img, &d) in family.images.iter().zip(&densities) {
            assert!(d > 0.01 && d < 0.99, "{} density {d}", img.name);
        }
        // the family must span a density range, not clones of one image
        let min = densities.iter().cloned().fold(f64::MAX, f64::min);
        let max = densities.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max - min > 0.05,
            "{}: density spread {min}..{max}",
            family.name
        );
    }
}

#[test]
fn texture_images_have_short_runs_misc_mixed() {
    // textures: repeating micro-structure => short mean runs
    let tex = texture();
    for img in &tex.images {
        let stats = binary_stats(&img.image);
        assert!(
            stats.mean_run_len < 64.0,
            "{} mean run {}",
            img.name,
            stats.mean_run_len
        );
    }
    let misc = miscellaneous();
    let comps: Vec<u32> = misc
        .images
        .iter()
        .map(|img| flood_fill_label(&img.image).num_components())
        .collect();
    // miscellaneous spans orders of magnitude in component count
    let min = comps.iter().min().unwrap();
    let max = comps.iter().max().unwrap();
    assert!(max / min.max(&1) >= 4, "misc components {comps:?}");
}

#[test]
fn nlcd_images_have_landcover_structure() {
    let fam = nlcd(0.003); // small but structurally representative
    for img in &fam.images {
        let stats = binary_stats(&img.image);
        assert!(
            stats.mean_run_len > 4.0,
            "{}: runs too short for land cover ({})",
            img.name,
            stats.mean_run_len
        );
        let li = flood_fill_label(&img.image);
        assert!(li.num_components() > 0);
        // regions, not speckle: components much fewer than pixels
        assert!(
            (li.num_components() as usize) < img.image.len() / 100,
            "{}: {} components in {} px",
            img.name,
            li.num_components(),
            img.image.len()
        );
    }
}

#[test]
fn nlcd_scaling_preserves_structure_class() {
    use ccl_datasets::suite::nlcd_image;
    // the same index at different scales keeps land-cover-like run stats
    for &scale in &[0.002, 0.01] {
        let img = nlcd_image(2, scale);
        let stats = binary_stats(&img.image);
        assert!(stats.mean_run_len > 4.0, "scale {scale}");
        assert!(stats.density > 0.2 && stats.density < 0.8, "scale {scale}");
    }
}
