//! Incremental Netpbm decoding — row bands pulled from a byte stream.
//!
//! The whole-buffer readers in [`super::pbm`] / [`super::pgm`] require the
//! entire file in memory; for the out-of-core pipeline (`ccl-stream`) a
//! gigapixel raster must instead be decoded a *band* of rows at a time.
//! [`PbmBands`] and [`PgmBands`] parse the header eagerly from any
//! [`std::io::Read`] and then hand out row bands on demand, holding only
//! one band (plus a tiny token buffer) resident.
//!
//! Formats: PBM `P1`/`P4` and PGM `P2`/`P5` (binary PGM limited to
//! `maxval ≤ 255`, like [`super::pgm::read`]). Sample semantics match the
//! whole-buffer readers exactly — the round-trip tests below parse writer
//! output band-wise and compare with the one-shot readers.

use std::io::Read;

use crate::bitmap::BinaryImage;
use crate::error::ImageError;
use crate::gray::GrayImage;

/// Incremental token scanner over a byte stream: whitespace-delimited
/// tokens, `#` comments running to end of line, single-byte pushback for
/// the header/body boundary.
struct ByteScanner<R: Read> {
    inner: R,
    peeked: Option<u8>,
}

impl<R: Read> ByteScanner<R> {
    fn new(inner: R) -> Self {
        ByteScanner {
            inner,
            peeked: None,
        }
    }

    /// Next raw byte, or `None` at end of stream.
    fn next_byte(&mut self) -> Result<Option<u8>, ImageError> {
        if let Some(b) = self.peeked.take() {
            return Ok(Some(b));
        }
        let mut buf = [0u8; 1];
        loop {
            match self.inner.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(buf[0])),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ImageError::Io(e)),
            }
        }
    }

    fn push_back(&mut self, b: u8) {
        debug_assert!(self.peeked.is_none(), "single-byte pushback only");
        self.peeked = Some(b);
    }

    /// Skips whitespace and `#` comments; returns the first content byte.
    fn next_content_byte(&mut self) -> Result<Option<u8>, ImageError> {
        loop {
            match self.next_byte()? {
                None => return Ok(None),
                Some(b) if b.is_ascii_whitespace() => continue,
                Some(b'#') => {
                    // comment runs to end of line
                    loop {
                        match self.next_byte()? {
                            None | Some(b'\n') => break,
                            Some(_) => continue,
                        }
                    }
                }
                Some(b) => return Ok(Some(b)),
            }
        }
    }

    /// Reads the next whitespace-delimited token.
    fn next_token(&mut self) -> Result<Vec<u8>, ImageError> {
        let first = self
            .next_content_byte()?
            .ok_or_else(|| ImageError::Parse("unexpected end of stream".into()))?;
        let mut tok = vec![first];
        loop {
            match self.next_byte()? {
                None => break,
                Some(b) if b.is_ascii_whitespace() => {
                    self.push_back(b);
                    break;
                }
                Some(b) => tok.push(b),
            }
        }
        Ok(tok)
    }

    /// Parses an unsigned decimal token.
    fn next_usize(&mut self) -> Result<usize, ImageError> {
        let tok = self.next_token()?;
        let s = std::str::from_utf8(&tok)
            .map_err(|_| ImageError::Parse("non-ascii numeric token".into()))?;
        s.parse()
            .map_err(|_| ImageError::Parse(format!("invalid number {s:?}")))
    }

    /// Consumes the single whitespace byte separating a header from
    /// binary sample data.
    fn expect_single_whitespace(&mut self) -> Result<(), ImageError> {
        match self.next_byte()? {
            Some(b) if b.is_ascii_whitespace() => Ok(()),
            _ => Err(ImageError::Parse(
                "expected whitespace before sample data".into(),
            )),
        }
    }

    /// Fills `buf` exactly from the stream.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ImageError> {
        let mut filled = 0;
        if let Some(b) = self.peeked.take() {
            if !buf.is_empty() {
                buf[0] = b;
                filled = 1;
            }
        }
        self.inner
            .read_exact(&mut buf[filled..])
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => {
                    ImageError::Parse("truncated sample data".into())
                }
                _ => ImageError::Io(e),
            })
    }
}

/// Which PBM body encoding a [`PbmBands`] stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PbmKind {
    Ascii,
    Binary,
}

/// Incremental PBM (`P1`/`P4`) decoder: header parsed up front, rows
/// delivered in bands of caller-chosen height.
///
/// ```
/// use ccl_image::io::pbm;
/// use ccl_image::io::stream::PbmBands;
/// use ccl_image::BinaryImage;
///
/// let img = BinaryImage::parse("#.# .#. #.#");
/// let bytes = pbm::write_binary(&img);
/// let mut bands = PbmBands::new(bytes.as_slice()).unwrap();
/// assert_eq!((bands.width(), bands.height()), (3, 3));
/// let top = bands.next_band(2).unwrap().unwrap();
/// assert_eq!(top.height(), 2);
/// assert_eq!(top.row(0), img.row(0));
/// ```
pub struct PbmBands<R: Read> {
    scanner: ByteScanner<R>,
    width: usize,
    height: usize,
    rows_read: usize,
    kind: PbmKind,
}

impl<R: Read> PbmBands<R> {
    /// Parses the PBM header (magic + dimensions) from `reader`.
    pub fn new(reader: R) -> Result<Self, ImageError> {
        let mut scanner = ByteScanner::new(reader);
        let magic = scanner.next_token()?;
        let kind = match magic.as_slice() {
            b"P1" => PbmKind::Ascii,
            b"P4" => PbmKind::Binary,
            other => {
                return Err(ImageError::Parse(format!(
                    "not a PBM stream (magic {:?})",
                    String::from_utf8_lossy(other)
                )))
            }
        };
        let width = scanner.next_usize()?;
        let height = scanner.next_usize()?;
        if kind == PbmKind::Binary {
            scanner.expect_single_whitespace()?;
        }
        Ok(PbmBands {
            scanner,
            width,
            height,
            rows_read: 0,
            kind,
        })
    }

    /// Image width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total image height declared by the header.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Rows not yet delivered.
    pub fn rows_remaining(&self) -> usize {
        self.height - self.rows_read
    }

    /// Decodes the next band of at most `max_rows` rows; `Ok(None)` once
    /// the image is exhausted.
    ///
    /// # Panics
    /// Panics when `max_rows` is 0.
    pub fn next_band(&mut self, max_rows: usize) -> Result<Option<BinaryImage>, ImageError> {
        assert!(max_rows > 0, "band height must be positive");
        let rows = max_rows.min(self.rows_remaining());
        if rows == 0 {
            return Ok(None);
        }
        let mut pixels = vec![0u8; rows * self.width];
        match self.kind {
            PbmKind::Ascii => {
                for px in pixels.iter_mut() {
                    let b = self
                        .scanner
                        .next_content_byte()?
                        .ok_or_else(|| ImageError::Parse("truncated P1 sample data".into()))?;
                    *px = match b {
                        b'0' => 0,
                        b'1' => 1,
                        other => {
                            return Err(ImageError::Parse(format!(
                                "invalid P1 sample byte {other:#x}"
                            )))
                        }
                    };
                }
            }
            PbmKind::Binary => {
                let bytes_per_row = self.width.div_ceil(8);
                let mut row_bytes = vec![0u8; bytes_per_row];
                for r in 0..rows {
                    self.scanner.read_exact(&mut row_bytes)?;
                    for c in 0..self.width {
                        pixels[r * self.width + c] = (row_bytes[c / 8] >> (7 - c % 8)) & 1;
                    }
                }
            }
        }
        self.rows_read += rows;
        BinaryImage::from_raw(self.width, rows, pixels).map(Some)
    }
}

/// Which PGM body encoding a [`PgmBands`] stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PgmKind {
    Ascii,
    Binary,
}

/// Incremental PGM (`P2`/`P5`) decoder: header parsed up front, grayscale
/// rows delivered in bands. Samples are rescaled to `0..=255` exactly like
/// [`super::pgm::read`]; binary streams require `maxval ≤ 255`.
pub struct PgmBands<R: Read> {
    scanner: ByteScanner<R>,
    width: usize,
    height: usize,
    maxval: usize,
    rows_read: usize,
    kind: PgmKind,
}

impl<R: Read> PgmBands<R> {
    /// Parses the PGM header (magic, dimensions, maxval) from `reader`.
    pub fn new(reader: R) -> Result<Self, ImageError> {
        let mut scanner = ByteScanner::new(reader);
        let magic = scanner.next_token()?;
        let kind = match magic.as_slice() {
            b"P2" => PgmKind::Ascii,
            b"P5" => PgmKind::Binary,
            other => {
                return Err(ImageError::Parse(format!(
                    "not a PGM stream (magic {:?})",
                    String::from_utf8_lossy(other)
                )))
            }
        };
        let width = scanner.next_usize()?;
        let height = scanner.next_usize()?;
        let maxval = scanner.next_usize()?;
        match kind {
            PgmKind::Ascii if maxval == 0 || maxval > 65535 => {
                return Err(ImageError::Parse(format!("invalid maxval {maxval}")));
            }
            PgmKind::Binary if maxval == 0 || maxval > 255 => {
                return Err(ImageError::Parse(format!(
                    "binary PGM requires maxval in 1..=255, got {maxval}"
                )));
            }
            _ => {}
        }
        if kind == PgmKind::Binary {
            scanner.expect_single_whitespace()?;
        }
        Ok(PgmBands {
            scanner,
            width,
            height,
            maxval,
            rows_read: 0,
            kind,
        })
    }

    /// Image width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total image height declared by the header.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The stream's declared maximum sample value.
    pub fn maxval(&self) -> usize {
        self.maxval
    }

    /// Rows not yet delivered.
    pub fn rows_remaining(&self) -> usize {
        self.height - self.rows_read
    }

    /// Decodes the next band of at most `max_rows` rows; `Ok(None)` once
    /// the image is exhausted.
    ///
    /// # Panics
    /// Panics when `max_rows` is 0.
    pub fn next_band(&mut self, max_rows: usize) -> Result<Option<GrayImage>, ImageError> {
        assert!(max_rows > 0, "band height must be positive");
        let rows = max_rows.min(self.rows_remaining());
        if rows == 0 {
            return Ok(None);
        }
        let mut pixels = vec![0u8; rows * self.width];
        match self.kind {
            PgmKind::Ascii => {
                for px in pixels.iter_mut() {
                    let v = self.scanner.next_usize()?;
                    if v > self.maxval {
                        return Err(ImageError::Parse(format!(
                            "sample {v} exceeds maxval {}",
                            self.maxval
                        )));
                    }
                    *px = ((v * 255 + self.maxval / 2) / self.maxval) as u8;
                }
            }
            PgmKind::Binary => {
                self.scanner.read_exact(&mut pixels)?;
                if self.maxval != 255 {
                    for v in pixels.iter_mut() {
                        *v = ((*v as usize * 255 + self.maxval / 2) / self.maxval).min(255) as u8;
                    }
                }
            }
        }
        self.rows_read += rows;
        GrayImage::from_raw(self.width, rows, pixels).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{pbm, pgm};

    fn sample_binary() -> BinaryImage {
        BinaryImage::parse(
            "#..#.####
             .##......
             #########
             .........
             #.#.#.#.#",
        )
    }

    fn sample_gray() -> GrayImage {
        GrayImage::from_fn(7, 5, |r, c| (r * 40 + c * 11) as u8)
    }

    fn collect_pbm(data: &[u8], band: usize) -> BinaryImage {
        let mut bands = PbmBands::new(data).unwrap();
        let (w, h) = (bands.width(), bands.height());
        let mut out = BinaryImage::zeros(w, h);
        let mut r0 = 0;
        while let Some(b) = bands.next_band(band).unwrap() {
            for r in 0..b.height() {
                for c in 0..w {
                    out.set(r0 + r, c, b.get(r, c) == 1);
                }
            }
            r0 += b.height();
        }
        assert_eq!(r0, h);
        assert_eq!(bands.rows_remaining(), 0);
        out
    }

    #[test]
    fn pbm_band_decoding_matches_one_shot_reader() {
        let img = sample_binary();
        for bytes in [pbm::write_ascii(&img), pbm::write_binary(&img)] {
            for band in [1, 2, 3, 5, 100] {
                assert_eq!(collect_pbm(&bytes, band), img, "band height {band}");
            }
        }
    }

    #[test]
    fn pbm_binary_band_boundaries_at_odd_widths() {
        for width in [7, 8, 9, 17] {
            let img = BinaryImage::from_fn(width, 6, |r, c| (r * 3 + c) % 4 == 0);
            let bytes = pbm::write_binary(&img);
            assert_eq!(collect_pbm(&bytes, 1), img, "width {width}");
        }
    }

    #[test]
    fn pgm_band_decoding_matches_one_shot_reader() {
        let img = sample_gray();
        for bytes in [pgm::write_ascii(&img), pgm::write_binary(&img)] {
            let expected = pgm::read(&bytes).unwrap();
            let mut bands = PgmBands::new(bytes.as_slice()).unwrap();
            let mut rows: Vec<u8> = Vec::new();
            while let Some(b) = bands.next_band(2).unwrap() {
                rows.extend_from_slice(b.as_slice());
            }
            assert_eq!(rows, expected.as_slice());
        }
    }

    #[test]
    fn header_metadata_is_exposed() {
        let img = sample_gray();
        let bytes = pgm::write_binary(&img);
        let bands = PgmBands::new(bytes.as_slice()).unwrap();
        assert_eq!((bands.width(), bands.height()), (7, 5));
        assert_eq!(bands.maxval(), 255);
        assert_eq!(bands.rows_remaining(), 5);
    }

    #[test]
    fn exhausted_stream_yields_none() {
        let img = sample_binary();
        let bytes = pbm::write_binary(&img);
        let mut bands = PbmBands::new(bytes.as_slice()).unwrap();
        while bands.next_band(2).unwrap().is_some() {}
        assert!(bands.next_band(2).unwrap().is_none());
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        assert!(PbmBands::new(&b"P5\n1 1\n255\n\x00"[..]).is_err());
        assert!(PgmBands::new(&b"P4\n1 1\n\x00"[..]).is_err());
        let img = sample_binary();
        let mut bytes = pbm::write_binary(&img);
        bytes.truncate(bytes.len() - 1);
        let mut bands = PbmBands::new(bytes.as_slice()).unwrap();
        let mut result = Ok(None);
        for _ in 0..5 {
            result = bands.next_band(1);
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_err(), "truncated stream must error");
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let data = b"P1\n# c1\n3 # c2\n2\n101\n010\n";
        let mut bands = PbmBands::new(&data[..]).unwrap();
        assert_eq!((bands.width(), bands.height()), (3, 2));
        let all = bands.next_band(10).unwrap().unwrap();
        assert_eq!(all.as_slice(), &[1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn pgm_nonstandard_maxval_rescales() {
        let data = b"P2\n2 1\n4\n0 4\n";
        let mut bands = PgmBands::new(&data[..]).unwrap();
        let row = bands.next_band(1).unwrap().unwrap();
        assert_eq!(row.as_slice(), &[0, 255]);
    }
}
