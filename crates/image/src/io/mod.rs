//! Netpbm image I/O.
//!
//! The paper's datasets are ordinary raster images; this module provides a
//! dependency-free reader/writer for the Netpbm family so the examples and
//! the dataset suite can persist images:
//!
//! * PBM — binary images, ASCII (`P1`) and packed binary (`P4`),
//! * PGM — grayscale, ASCII (`P2`) and binary (`P5`),
//! * PPM — RGB, ASCII (`P3`) and binary (`P6`),
//! * [`stream`] — incremental PBM/PGM decoding in row bands, for the
//!   out-of-core pipeline (`ccl-stream`).
//!
//! PBM inverts polarity relative to this crate: in PBM, `1` is **black**.
//! We map PBM black ↔ foreground, which matches the usual "objects are
//! dark on paper, bright in `im2bw` output" convention used when images
//! round-trip through [`crate::threshold::im2bw`] (foreground = white = 1
//! in memory, stored as PBM black bits). The mapping is lossless either
//! way; see [`pbm`] for details.

pub mod pbm;
pub mod pgm;
pub mod ppm;
pub mod stream;

use crate::error::ImageError;

/// Reads the next Netpbm token (whitespace-delimited, `#` comments run to
/// end of line) starting at `*pos`. Returns the token as a byte slice.
pub(crate) fn next_token<'a>(data: &'a [u8], pos: &mut usize) -> Result<&'a [u8], ImageError> {
    // skip whitespace and comments
    loop {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < data.len() && data[*pos] == b'#' {
            while *pos < data.len() && data[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    if *pos >= data.len() {
        return Err(ImageError::Parse("unexpected end of stream".into()));
    }
    let start = *pos;
    while *pos < data.len() && !data[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    Ok(&data[start..*pos])
}

/// Parses an unsigned decimal token.
pub(crate) fn next_usize(data: &[u8], pos: &mut usize) -> Result<usize, ImageError> {
    let tok = next_token(data, pos)?;
    let s = std::str::from_utf8(tok)
        .map_err(|_| ImageError::Parse("non-ascii numeric token".into()))?;
    s.parse()
        .map_err(|_| ImageError::Parse(format!("invalid number {s:?}")))
}

/// Consumes exactly one whitespace byte after a header (the Netpbm spec
/// requires a single whitespace before binary sample data).
pub(crate) fn expect_single_whitespace(data: &[u8], pos: &mut usize) -> Result<(), ImageError> {
    if *pos < data.len() && data[*pos].is_ascii_whitespace() {
        *pos += 1;
        Ok(())
    } else {
        Err(ImageError::Parse(
            "expected whitespace before sample data".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_comments_and_whitespace() {
        let data = b"  # comment line\n  P1 # trailing\n 12\t34\n";
        let mut pos = 0;
        assert_eq!(next_token(data, &mut pos).unwrap(), b"P1");
        assert_eq!(next_usize(data, &mut pos).unwrap(), 12);
        assert_eq!(next_usize(data, &mut pos).unwrap(), 34);
        assert!(next_token(data, &mut pos).is_err());
    }

    #[test]
    fn tokenizer_rejects_bad_number() {
        let mut pos = 0;
        assert!(next_usize(b"abc", &mut pos).is_err());
    }

    #[test]
    fn single_whitespace_requirement() {
        let mut pos = 0;
        assert!(expect_single_whitespace(b" x", &mut pos).is_ok());
        assert_eq!(pos, 1);
        let mut pos2 = 0;
        assert!(expect_single_whitespace(b"x", &mut pos2).is_err());
    }
}
