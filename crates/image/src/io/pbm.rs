//! PBM (portable bitmap) read/write, formats `P1` (ASCII) and `P4`
//! (packed binary).
//!
//! PBM stores `1` for black. In-memory foreground (1) maps to PBM black
//! (1), so a foreground-heavy image produces a black-heavy bitmap; the
//! mapping round-trips exactly.

use crate::bitmap::BinaryImage;
use crate::error::ImageError;

use super::{expect_single_whitespace, next_token, next_usize};

/// Serializes to ASCII PBM (`P1`). Rows are emitted one per line.
pub fn write_ascii(img: &BinaryImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.len() * 2 + 32);
    out.extend_from_slice(format!("P1\n{} {}\n", img.width(), img.height()).as_bytes());
    for r in 0..img.height() {
        for c in 0..img.width() {
            if c > 0 {
                out.push(b' ');
            }
            out.push(b'0' + img.get(r, c));
        }
        out.push(b'\n');
    }
    out
}

/// Serializes to packed binary PBM (`P4`): each row padded to whole bytes,
/// most significant bit first.
pub fn write_binary(img: &BinaryImage) -> Vec<u8> {
    let bytes_per_row = img.width().div_ceil(8);
    let mut out = Vec::with_capacity(bytes_per_row * img.height() + 32);
    out.extend_from_slice(format!("P4\n{} {}\n", img.width(), img.height()).as_bytes());
    for r in 0..img.height() {
        let row = img.row(r);
        for chunk in row.chunks(8) {
            let mut byte = 0u8;
            for (i, &v) in chunk.iter().enumerate() {
                byte |= v << (7 - i);
            }
            out.push(byte);
        }
    }
    out
}

/// Parses either PBM format, dispatching on the magic number.
pub fn read(data: &[u8]) -> Result<BinaryImage, ImageError> {
    let mut pos = 0usize;
    let magic = next_token(data, &mut pos)?;
    match magic {
        b"P1" => read_ascii_body(data, &mut pos),
        b"P4" => read_binary_body(data, &mut pos),
        other => Err(ImageError::Parse(format!(
            "not a PBM stream (magic {:?})",
            String::from_utf8_lossy(other)
        ))),
    }
}

fn read_ascii_body(data: &[u8], pos: &mut usize) -> Result<BinaryImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let mut pixels = Vec::with_capacity(width * height);
    // P1 allows samples to be packed without whitespace; read digit by
    // digit, skipping whitespace and comments.
    while pixels.len() < width * height {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < data.len() && data[*pos] == b'#' {
            while *pos < data.len() && data[*pos] != b'\n' {
                *pos += 1;
            }
            continue;
        }
        if *pos >= data.len() {
            return Err(ImageError::Parse("truncated P1 sample data".into()));
        }
        match data[*pos] {
            b'0' => pixels.push(0),
            b'1' => pixels.push(1),
            other => {
                return Err(ImageError::Parse(format!(
                    "invalid P1 sample byte {other:#x}"
                )))
            }
        }
        *pos += 1;
    }
    BinaryImage::from_raw(width, height, pixels)
}

fn read_binary_body(data: &[u8], pos: &mut usize) -> Result<BinaryImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    expect_single_whitespace(data, pos)?;
    let bytes_per_row = width.div_ceil(8);
    let need = bytes_per_row * height;
    if data.len() - *pos < need {
        return Err(ImageError::Parse(format!(
            "truncated P4 sample data: need {need} bytes, have {}",
            data.len() - *pos
        )));
    }
    let mut pixels = vec![0u8; width * height];
    for r in 0..height {
        let row_bytes = &data[*pos + r * bytes_per_row..*pos + (r + 1) * bytes_per_row];
        for c in 0..width {
            pixels[r * width + c] = (row_bytes[c / 8] >> (7 - c % 8)) & 1;
        }
    }
    *pos += need;
    BinaryImage::from_raw(width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinaryImage {
        BinaryImage::parse(
            "#..#.####
             .##......
             #########
             .........
             #.#.#.#.#",
        )
    }

    #[test]
    fn ascii_round_trip() {
        let img = sample();
        let bytes = write_ascii(&img);
        assert_eq!(read(&bytes).unwrap(), img);
    }

    #[test]
    fn binary_round_trip() {
        let img = sample();
        let bytes = write_binary(&img);
        assert_eq!(read(&bytes).unwrap(), img);
    }

    #[test]
    fn binary_round_trip_at_byte_boundaries() {
        for width in [7, 8, 9, 15, 16, 17] {
            let img = BinaryImage::from_fn(width, 4, |r, c| (r + c) % 3 == 0);
            assert_eq!(read(&write_binary(&img)).unwrap(), img, "width {width}");
        }
    }

    #[test]
    fn ascii_parses_packed_samples_and_comments() {
        let data = b"P1\n# a comment\n3 2\n101\n# mid comment\n010\n";
        let img = read(data).unwrap();
        assert_eq!(img.as_slice(), &[1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(read(b"P5\n1 1\n255\n\x00").is_err());
        assert!(read(b"hello").is_err());
    }

    #[test]
    fn rejects_truncated_binary() {
        let img = sample();
        let mut bytes = write_binary(&img);
        bytes.truncate(bytes.len() - 1);
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn rejects_invalid_ascii_sample() {
        assert!(read(b"P1\n2 1\n1 2\n").is_err());
    }

    #[test]
    fn empty_image_round_trip() {
        let img = BinaryImage::zeros(0, 0);
        assert_eq!(read(&write_ascii(&img)).unwrap(), img);
    }
}
