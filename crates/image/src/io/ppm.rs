//! PPM (portable pixmap) read/write, formats `P3` (ASCII) and `P6`
//! (binary), maxval 255.
//!
//! Also provides [`write_label_colormap`], which renders a `u32` label
//! raster as a pseudo-colored PPM — the standard way to visualise CCL
//! output (used by the `pipeline_netpbm` example).

use crate::error::ImageError;
use crate::rgb::RgbImage;

use super::{expect_single_whitespace, next_token, next_usize};

/// Serializes to ASCII PPM (`P3`) with maxval 255.
pub fn write_ascii(img: &RgbImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.as_slice().len() * 4 + 32);
    out.extend_from_slice(format!("P3\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    for r in 0..img.height() {
        let mut line = String::new();
        for c in 0..img.width() {
            let [red, green, blue] = img.get(r, c);
            if c > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{red} {green} {blue}"));
        }
        line.push('\n');
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Serializes to binary PPM (`P6`) with maxval 255.
pub fn write_binary(img: &RgbImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.as_slice().len() + 32);
    out.extend_from_slice(format!("P6\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    out.extend_from_slice(img.as_slice());
    out
}

/// Parses either PPM format, dispatching on the magic number.
pub fn read(data: &[u8]) -> Result<RgbImage, ImageError> {
    let mut pos = 0usize;
    let magic = next_token(data, &mut pos)?;
    match magic {
        b"P3" => read_ascii_body(data, &mut pos),
        b"P6" => read_binary_body(data, &mut pos),
        other => Err(ImageError::Parse(format!(
            "not a PPM stream (magic {:?})",
            String::from_utf8_lossy(other)
        ))),
    }
}

fn read_ascii_body(data: &[u8], pos: &mut usize) -> Result<RgbImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::Parse(format!("invalid maxval {maxval}")));
    }
    let mut samples = Vec::with_capacity(width * height * 3);
    for _ in 0..width * height * 3 {
        let v = next_usize(data, pos)?;
        if v > maxval {
            return Err(ImageError::Parse(format!(
                "sample {v} exceeds maxval {maxval}"
            )));
        }
        samples.push(((v * 255 + maxval / 2) / maxval) as u8);
    }
    RgbImage::from_raw(width, height, samples)
}

fn read_binary_body(data: &[u8], pos: &mut usize) -> Result<RgbImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::Parse(format!(
            "binary PPM requires maxval in 1..=255, got {maxval}"
        )));
    }
    expect_single_whitespace(data, pos)?;
    let need = width * height * 3;
    if data.len() - *pos < need {
        return Err(ImageError::Parse("truncated P6 sample data".into()));
    }
    let mut samples = data[*pos..*pos + need].to_vec();
    if maxval != 255 {
        for v in &mut samples {
            *v = ((*v as usize * 255 + maxval / 2) / maxval).min(255) as u8;
        }
    }
    *pos += need;
    RgbImage::from_raw(width, height, samples)
}

/// Deterministic label → color mapping (golden-ratio hue stepping, label 0
/// rendered black). Useful for visualising CCL results.
pub fn label_color(label: u32) -> [u8; 3] {
    if label == 0 {
        return [0, 0, 0];
    }
    // Spread hues with the golden-ratio conjugate so nearby labels get
    // visually distant colors.
    let hue = (label as f64 * 0.618_033_988_749_895) % 1.0;
    hsv_to_rgb(hue, 0.85, 0.95)
}

fn hsv_to_rgb(h: f64, s: f64, v: f64) -> [u8; 3] {
    let i = (h * 6.0).floor();
    let f = h * 6.0 - i;
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    let (r, g, b) = match i as i64 % 6 {
        0 => (v, t, p),
        1 => (q, v, p),
        2 => (p, v, t),
        3 => (p, q, v),
        4 => (t, p, v),
        _ => (v, p, q),
    };
    [
        (r * 255.0).round() as u8,
        (g * 255.0).round() as u8,
        (b * 255.0).round() as u8,
    ]
}

/// Renders a row-major label raster as a pseudo-colored binary PPM.
///
/// # Panics
/// Panics when `labels.len() != width * height`.
pub fn write_label_colormap(labels: &[u32], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(labels.len(), width * height, "label buffer size mismatch");
    let img = RgbImage::from_fn(width, height, |r, c| label_color(labels[r * width + c]));
    write_binary(&img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RgbImage {
        RgbImage::from_fn(3, 2, |r, c| [(r * 90) as u8, (c * 80) as u8, 200])
    }

    #[test]
    fn ascii_round_trip() {
        let img = sample();
        assert_eq!(read(&write_ascii(&img)).unwrap(), img);
    }

    #[test]
    fn binary_round_trip() {
        let img = sample();
        assert_eq!(read(&write_binary(&img)).unwrap(), img);
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(read(b"P2\n1 1\n255\n0\n").is_err());
    }

    #[test]
    fn label_colors_are_distinct_and_background_black() {
        assert_eq!(label_color(0), [0, 0, 0]);
        let a = label_color(1);
        let b = label_color(2);
        let c = label_color(3);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // determinism
        assert_eq!(label_color(7), label_color(7));
    }

    #[test]
    fn label_colormap_has_correct_size() {
        let labels = vec![0u32, 1, 2, 1];
        let ppm = write_label_colormap(&labels, 2, 2);
        let img = read(&ppm).unwrap();
        assert_eq!((img.width(), img.height()), (2, 2));
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        assert_eq!(img.get(0, 1), img.get(1, 1)); // same label, same color
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn label_colormap_checks_size() {
        write_label_colormap(&[0, 1], 2, 2);
    }
}
