//! PGM (portable graymap) read/write, formats `P2` (ASCII) and `P5`
//! (binary), maxval ≤ 255 — plus the 16-bit `P5` form (maxval 65535,
//! two big-endian bytes per sample) used by the `ccl-tiles` label spill
//! writer as a portable alternative to raw `u32` tiles.

use crate::error::ImageError;
use crate::gray::GrayImage;

use super::{expect_single_whitespace, next_token, next_usize};

/// Serializes to ASCII PGM (`P2`) with maxval 255.
pub fn write_ascii(img: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.len() * 4 + 32);
    out.extend_from_slice(format!("P2\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    for r in 0..img.height() {
        let mut line = String::new();
        for c in 0..img.width() {
            if c > 0 {
                line.push(' ');
            }
            line.push_str(&img.get(r, c).to_string());
        }
        line.push('\n');
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Serializes to binary PGM (`P5`) with maxval 255.
pub fn write_binary(img: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.len() + 32);
    out.extend_from_slice(format!("P5\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    out.extend_from_slice(img.as_slice());
    out
}

/// Serializes 16-bit samples to binary PGM (`P5`) with maxval 65535.
/// Per the Netpbm specification, each sample is two bytes, most
/// significant first. The sample buffer is row-major, `width * height`
/// entries.
///
/// # Panics
/// Panics when the buffer length does not equal `width * height`.
pub fn write_binary16(width: usize, height: usize, samples: &[u16]) -> Vec<u8> {
    assert_eq!(
        samples.len(),
        width.checked_mul(height).expect("dimensions overflow"),
        "sample buffer size mismatch"
    );
    let mut out = Vec::with_capacity(samples.len() * 2 + 32);
    out.extend_from_slice(format!("P5\n{width} {height}\n65535\n").as_bytes());
    for &s in samples {
        out.extend_from_slice(&s.to_be_bytes());
    }
    out
}

/// Parses a 16-bit binary PGM (`P5`, maxval in `256..=65535`) into its
/// dimensions and row-major samples. Samples are returned as stored —
/// *not* rescaled to the maxval — because the consumer here (`ccl-tiles`)
/// stores discrete labels, not luminance.
pub fn read_binary16(data: &[u8]) -> Result<(usize, usize, Vec<u16>), ImageError> {
    let mut pos = 0usize;
    let magic = next_token(data, &mut pos)?;
    if magic != b"P5" {
        return Err(ImageError::Parse(format!(
            "not a binary PGM stream (magic {:?})",
            String::from_utf8_lossy(magic)
        )));
    }
    let width = next_usize(data, &mut pos)?;
    let height = next_usize(data, &mut pos)?;
    let maxval = next_usize(data, &mut pos)?;
    if !(256..=65535).contains(&maxval) {
        return Err(ImageError::Parse(format!(
            "16-bit PGM requires maxval in 256..=65535, got {maxval}"
        )));
    }
    expect_single_whitespace(data, &mut pos)?;
    let need = width
        .checked_mul(height)
        .and_then(|n| n.checked_mul(2))
        .ok_or_else(|| ImageError::Parse("image dimensions overflow".into()))?;
    if data.len() - pos < need {
        return Err(ImageError::Parse("truncated 16-bit P5 sample data".into()));
    }
    let samples: Vec<u16> = data[pos..pos + need]
        .chunks_exact(2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
        .collect();
    Ok((width, height, samples))
}

/// Parses either PGM format, dispatching on the magic number.
///
/// Maxvals other than 255 are accepted for ASCII input and rescaled to the
/// 0–255 range; binary input requires maxval ≤ 255 (one byte per sample).
pub fn read(data: &[u8]) -> Result<GrayImage, ImageError> {
    let mut pos = 0usize;
    let magic = next_token(data, &mut pos)?;
    match magic {
        b"P2" => read_ascii_body(data, &mut pos),
        b"P5" => read_binary_body(data, &mut pos),
        other => Err(ImageError::Parse(format!(
            "not a PGM stream (magic {:?})",
            String::from_utf8_lossy(other)
        ))),
    }
}

fn read_ascii_body(data: &[u8], pos: &mut usize) -> Result<GrayImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::Parse(format!("invalid maxval {maxval}")));
    }
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        let v = next_usize(data, pos)?;
        if v > maxval {
            return Err(ImageError::Parse(format!(
                "sample {v} exceeds maxval {maxval}"
            )));
        }
        pixels.push(((v * 255 + maxval / 2) / maxval) as u8);
    }
    GrayImage::from_raw(width, height, pixels)
}

fn read_binary_body(data: &[u8], pos: &mut usize) -> Result<GrayImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::Parse(format!(
            "binary PGM requires maxval in 1..=255, got {maxval}"
        )));
    }
    expect_single_whitespace(data, pos)?;
    let need = width * height;
    if data.len() - *pos < need {
        return Err(ImageError::Parse("truncated P5 sample data".into()));
    }
    let mut pixels = data[*pos..*pos + need].to_vec();
    if maxval != 255 {
        for v in &mut pixels {
            *v = ((*v as usize * 255 + maxval / 2) / maxval).min(255) as u8;
        }
    }
    *pos += need;
    GrayImage::from_raw(width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GrayImage {
        GrayImage::from_fn(5, 4, |r, c| (r * 50 + c * 13) as u8)
    }

    #[test]
    fn ascii_round_trip() {
        let img = sample();
        assert_eq!(read(&write_ascii(&img)).unwrap(), img);
    }

    #[test]
    fn binary_round_trip() {
        let img = sample();
        assert_eq!(read(&write_binary(&img)).unwrap(), img);
    }

    #[test]
    fn ascii_rescales_small_maxval() {
        let data = b"P2\n2 1\n15\n0 15\n";
        let img = read(data).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(0, 1), 255);
    }

    #[test]
    fn binary_rescales_small_maxval() {
        let data = b"P5\n2 1\n100\n\x00\x64";
        let img = read(data).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(0, 1), 255);
    }

    #[test]
    fn rejects_sample_above_maxval() {
        assert!(read(b"P2\n1 1\n10\n11\n").is_err());
    }

    #[test]
    fn rejects_wrong_magic_and_bad_maxval() {
        assert!(read(b"P1\n1 1\n0\n").is_err());
        assert!(read(b"P2\n1 1\n0\n0\n").is_err());
        assert!(read(b"P5\n1 1\n999\n\x00").is_err());
    }

    #[test]
    fn rejects_truncated_binary() {
        assert!(read(b"P5\n3 3\n255\n\x01\x02").is_err());
    }

    #[test]
    fn binary16_round_trip() {
        let samples: Vec<u16> = vec![0, 1, 255, 256, 40_000, u16::MAX];
        let bytes = write_binary16(3, 2, &samples);
        let (w, h, back) = read_binary16(&bytes).unwrap();
        assert_eq!((w, h), (3, 2));
        assert_eq!(back, samples);
    }

    #[test]
    fn binary16_samples_are_big_endian() {
        let bytes = write_binary16(1, 1, &[0x1234]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0x12, 0x34]);
    }

    #[test]
    fn binary16_rejects_eight_bit_maxval_and_truncation() {
        assert!(read_binary16(b"P5\n1 1\n255\n\x00\x00").is_err());
        assert!(read_binary16(b"P5\n2 1\n65535\n\x00\x00\x01").is_err());
        assert!(read_binary16(b"P2\n1 1\n65535\n0\n").is_err());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn binary16_rejects_short_buffer() {
        write_binary16(2, 2, &[0, 1, 2]);
    }
}
