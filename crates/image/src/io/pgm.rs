//! PGM (portable graymap) read/write, formats `P2` (ASCII) and `P5`
//! (binary), maxval ≤ 255.

use crate::error::ImageError;
use crate::gray::GrayImage;

use super::{expect_single_whitespace, next_token, next_usize};

/// Serializes to ASCII PGM (`P2`) with maxval 255.
pub fn write_ascii(img: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.len() * 4 + 32);
    out.extend_from_slice(format!("P2\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    for r in 0..img.height() {
        let mut line = String::new();
        for c in 0..img.width() {
            if c > 0 {
                line.push(' ');
            }
            line.push_str(&img.get(r, c).to_string());
        }
        line.push('\n');
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Serializes to binary PGM (`P5`) with maxval 255.
pub fn write_binary(img: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.len() + 32);
    out.extend_from_slice(format!("P5\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    out.extend_from_slice(img.as_slice());
    out
}

/// Parses either PGM format, dispatching on the magic number.
///
/// Maxvals other than 255 are accepted for ASCII input and rescaled to the
/// 0–255 range; binary input requires maxval ≤ 255 (one byte per sample).
pub fn read(data: &[u8]) -> Result<GrayImage, ImageError> {
    let mut pos = 0usize;
    let magic = next_token(data, &mut pos)?;
    match magic {
        b"P2" => read_ascii_body(data, &mut pos),
        b"P5" => read_binary_body(data, &mut pos),
        other => Err(ImageError::Parse(format!(
            "not a PGM stream (magic {:?})",
            String::from_utf8_lossy(other)
        ))),
    }
}

fn read_ascii_body(data: &[u8], pos: &mut usize) -> Result<GrayImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::Parse(format!("invalid maxval {maxval}")));
    }
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        let v = next_usize(data, pos)?;
        if v > maxval {
            return Err(ImageError::Parse(format!(
                "sample {v} exceeds maxval {maxval}"
            )));
        }
        pixels.push(((v * 255 + maxval / 2) / maxval) as u8);
    }
    GrayImage::from_raw(width, height, pixels)
}

fn read_binary_body(data: &[u8], pos: &mut usize) -> Result<GrayImage, ImageError> {
    let width = next_usize(data, pos)?;
    let height = next_usize(data, pos)?;
    let maxval = next_usize(data, pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::Parse(format!(
            "binary PGM requires maxval in 1..=255, got {maxval}"
        )));
    }
    expect_single_whitespace(data, pos)?;
    let need = width * height;
    if data.len() - *pos < need {
        return Err(ImageError::Parse("truncated P5 sample data".into()));
    }
    let mut pixels = data[*pos..*pos + need].to_vec();
    if maxval != 255 {
        for v in &mut pixels {
            *v = ((*v as usize * 255 + maxval / 2) / maxval).min(255) as u8;
        }
    }
    *pos += need;
    GrayImage::from_raw(width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GrayImage {
        GrayImage::from_fn(5, 4, |r, c| (r * 50 + c * 13) as u8)
    }

    #[test]
    fn ascii_round_trip() {
        let img = sample();
        assert_eq!(read(&write_ascii(&img)).unwrap(), img);
    }

    #[test]
    fn binary_round_trip() {
        let img = sample();
        assert_eq!(read(&write_binary(&img)).unwrap(), img);
    }

    #[test]
    fn ascii_rescales_small_maxval() {
        let data = b"P2\n2 1\n15\n0 15\n";
        let img = read(data).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(0, 1), 255);
    }

    #[test]
    fn binary_rescales_small_maxval() {
        let data = b"P5\n2 1\n100\n\x00\x64";
        let img = read(data).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(0, 1), 255);
    }

    #[test]
    fn rejects_sample_above_maxval() {
        assert!(read(b"P2\n1 1\n10\n11\n").is_err());
    }

    #[test]
    fn rejects_wrong_magic_and_bad_maxval() {
        assert!(read(b"P1\n1 1\n0\n").is_err());
        assert!(read(b"P2\n1 1\n0\n0\n").is_err());
        assert!(read(b"P5\n1 1\n999\n\x00").is_err());
    }

    #[test]
    fn rejects_truncated_binary() {
        assert!(read(b"P5\n3 3\n255\n\x01\x02").is_err());
    }
}
