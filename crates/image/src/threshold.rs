//! Grayscale → binary conversion.
//!
//! The paper prepares every dataset with MATLAB's `im2bw(image, 0.5)`:
//! pixels with luminance *greater than* `level` become foreground (white,
//! 1), all others background (black, 0). [`im2bw`] reproduces exactly that
//! comparison. [`otsu_level`] and [`adaptive_mean`] are the two classic
//! automatic alternatives, provided because the paper notes the algorithms
//! "can be easily extended to gray scale images".

use crate::bitmap::BinaryImage;
use crate::gray::GrayImage;

/// MATLAB-compatible fixed-level threshold.
///
/// `level` is a luminance fraction in `[0, 1]`; a pixel is foreground iff
/// `pixel / 255 > level`, i.e. `pixel > level * 255`. MATLAB clamps levels
/// outside `[0, 1]`; we do the same.
pub fn im2bw(img: &GrayImage, level: f64) -> BinaryImage {
    let level = level.clamp(0.0, 1.0);
    // A pixel passes iff pixel > level * 255. For both exact and
    // fractional cuts this reduces to v > floor(level * 255): when the
    // cut is fractional, v > floor(cut) equals v > cut for integer v.
    let cut = (level * 255.0).floor() as u16;
    let data = img
        .as_slice()
        .iter()
        .map(|&v| u8::from(v as u16 > cut))
        .collect();
    BinaryImage::from_raw(img.width(), img.height(), data)
        .expect("dimensions preserved by thresholding")
}

/// Otsu's method: picks the threshold that maximizes between-class variance
/// of the luminance histogram. Returns the threshold as a `[0, 1]` level
/// directly usable with [`im2bw`].
///
/// Returns 0.5 for an empty or perfectly uniform image (any split is
/// equally good; 0.5 mirrors the paper's default level).
pub fn otsu_level(img: &GrayImage) -> f64 {
    let hist = img.histogram();
    let total: usize = img.len();
    if total == 0 {
        return 0.5;
    }
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(v, &n)| v as f64 * n as f64)
        .sum();

    let mut best_t = 0usize;
    let mut best_var = -1.0f64;
    let mut w0 = 0.0f64; // background weight
    let mut sum0 = 0.0f64; // background weighted sum
    for (t, &count) in hist.iter().enumerate() {
        w0 += count as f64;
        if w0 == 0.0 {
            continue;
        }
        let w1 = total as f64 - w0;
        if w1 == 0.0 {
            break;
        }
        sum0 += t as f64 * count as f64;
        let mu0 = sum0 / w0;
        let mu1 = (sum_all - sum0) / w1;
        let between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if between > best_var {
            best_var = between;
            best_t = t;
        }
    }
    if best_var <= 0.0 {
        0.5
    } else {
        best_t as f64 / 255.0
    }
}

/// Convenience: threshold with the Otsu-selected level.
pub fn im2bw_otsu(img: &GrayImage) -> BinaryImage {
    im2bw(img, otsu_level(img))
}

/// Adaptive mean thresholding: each pixel is compared against the mean of
/// the `(2·radius+1)²` window around it minus `offset`. Implemented with an
/// integral image so the cost is O(pixels) regardless of radius.
pub fn adaptive_mean(img: &GrayImage, radius: usize, offset: i16) -> BinaryImage {
    let (w, h) = (img.width(), img.height());
    if w == 0 || h == 0 {
        return BinaryImage::zeros(w, h);
    }
    // Integral image with a zero top row / left column: I[r+1][c+1] =
    // sum of pixels in rows 0..=r, cols 0..=c.
    let mut integral = vec![0u64; (w + 1) * (h + 1)];
    for r in 0..h {
        let mut rowsum = 0u64;
        for c in 0..w {
            rowsum += img.get(r, c) as u64;
            integral[(r + 1) * (w + 1) + (c + 1)] = integral[r * (w + 1) + (c + 1)] + rowsum;
        }
    }
    let window_sum = |r0: usize, c0: usize, r1: usize, c1: usize| -> u64 {
        // inclusive box [r0..=r1] x [c0..=c1]
        integral[(r1 + 1) * (w + 1) + (c1 + 1)] + integral[r0 * (w + 1) + c0]
            - integral[r0 * (w + 1) + (c1 + 1)]
            - integral[(r1 + 1) * (w + 1) + c0]
    };
    BinaryImage::from_fn(w, h, |r, c| {
        let r0 = r.saturating_sub(radius);
        let c0 = c.saturating_sub(radius);
        let r1 = (r + radius).min(h - 1);
        let c1 = (c + radius).min(w - 1);
        let count = ((r1 - r0 + 1) * (c1 - c0 + 1)) as i64;
        let mean = window_sum(r0, c0, r1, c1) as i64 / count;
        (img.get(r, c) as i64) > mean - offset as i64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2bw_level_half_matches_matlab() {
        // level 0.5 => threshold strictly greater than 127.5, i.e. >= 128.
        let img = GrayImage::from_fn(4, 1, |_, c| [127, 128, 0, 255][c]);
        let bw = im2bw(&img, 0.5);
        assert_eq!(bw.as_slice(), &[0, 1, 0, 1]);
    }

    #[test]
    fn im2bw_is_strictly_greater() {
        // For an exact integer cut (level 0.2 * 255 = 51), pixel 51 must be
        // background because MATLAB uses a strict comparison.
        let img = GrayImage::from_fn(3, 1, |_, c| [50, 51, 52][c]);
        let bw = im2bw(&img, 51.0 / 255.0);
        assert_eq!(bw.as_slice(), &[0, 0, 1]);
    }

    #[test]
    fn im2bw_level_extremes() {
        let img = GrayImage::from_fn(2, 1, |_, c| [0, 255][c]);
        // level 0: everything except luminance 0 is foreground.
        assert_eq!(im2bw(&img, 0.0).as_slice(), &[0, 1]);
        // level 1: nothing can be strictly greater than 255.
        assert_eq!(im2bw(&img, 1.0).as_slice(), &[0, 0]);
        // out-of-range levels are clamped.
        assert_eq!(im2bw(&img, -3.0).as_slice(), im2bw(&img, 0.0).as_slice());
        assert_eq!(im2bw(&img, 7.0).as_slice(), im2bw(&img, 1.0).as_slice());
    }

    #[test]
    fn otsu_separates_bimodal() {
        // Two well-separated modes at 40 and 200: Otsu must land between.
        let img = GrayImage::from_fn(100, 1, |_, c| if c < 50 { 40 } else { 200 });
        let level = otsu_level(&img);
        let t = level * 255.0;
        assert!((40.0..200.0).contains(&t), "otsu level {t} out of range");
        let bw = im2bw(&img, level);
        assert_eq!(bw.count_foreground(), 50);
    }

    #[test]
    fn otsu_uniform_image_defaults() {
        let img = GrayImage::from_fn(10, 10, |_, _| 99);
        assert_eq!(otsu_level(&img), 0.5);
        assert_eq!(otsu_level(&GrayImage::zeros(0, 0)), 0.5);
    }

    #[test]
    fn im2bw_otsu_binarizes_bimodal_correctly() {
        let img = GrayImage::from_fn(10, 10, |r, _| if r < 3 { 20 } else { 230 });
        let bw = im2bw_otsu(&img);
        assert_eq!(bw.count_foreground(), 70);
    }

    #[test]
    fn adaptive_mean_detects_local_contrast() {
        // A dark dot on a bright background: the dot itself falls below its
        // window mean (background); its bright neighbours rise above theirs
        // (foreground); pixels in perfectly uniform regions equal the mean
        // and the strict comparison keeps them background.
        let mut img = GrayImage::from_fn(9, 9, |_, _| 200);
        img.set(4, 4, 10);
        let bw = adaptive_mean(&img, 2, 0);
        assert_eq!(bw.get(4, 4), 0); // the dot is below its local mean
        assert_eq!(bw.get(3, 3), 1); // neighbour window contains the dot
        assert_eq!(bw.get(0, 0), 0); // uniform corner: pixel == mean
    }

    #[test]
    fn adaptive_mean_empty_image() {
        let bw = adaptive_mean(&GrayImage::zeros(0, 3), 1, 0);
        assert_eq!((bw.width(), bw.height()), (0, 3));
    }

    #[test]
    fn adaptive_mean_offset_shifts_decision() {
        let img = GrayImage::from_fn(5, 5, |_, _| 100);
        // Uniform image: pixel == mean, so strict > fails with offset 0...
        let none = adaptive_mean(&img, 1, 0);
        assert_eq!(none.count_foreground(), 0);
        // ...but a positive offset lowers the bar below the pixel value.
        let all = adaptive_mean(&img, 1, 5);
        assert_eq!(all.count_foreground(), 25);
    }
}
