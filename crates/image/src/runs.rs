//! Row run-length extraction.
//!
//! The RUN/ARUN family of algorithms (He, Chao & Suzuki — the paper's
//! refs \[37\] and \[43\]) views each image row as a sequence of maximal
//! horizontal *runs* of foreground pixels. This module extracts that
//! representation; the run-based labeling baseline in `ccl-core` consumes
//! it directly.

use crate::bitmap::BinaryImage;

/// A maximal horizontal run of foreground pixels within one row.
///
/// The run covers columns `start..end` (half-open) of row `row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Row index.
    pub row: usize,
    /// First column of the run (inclusive).
    pub start: usize,
    /// One past the last column of the run (exclusive).
    pub end: usize,
}

impl Run {
    /// Number of pixels covered by the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the run covers no pixels (never produced by extraction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether this run touches `other` under 8-connectivity, assuming the
    /// two runs lie on *adjacent* rows. Under 8-connectivity a run on row r
    /// touches a run on row r±1 when their column spans, each widened by
    /// one pixel, overlap: `start ≤ other.end` and `other.start ≤ end`
    /// (using half-open spans: `start < other.end + 1`).
    #[inline]
    pub fn touches_8(&self, other: &Run) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether this run touches `other` under 4-connectivity (adjacent
    /// rows): spans must overlap directly.
    #[inline]
    pub fn touches_4(&self, other: &Run) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Extracts the maximal foreground runs of a single row buffer.
pub fn runs_of_row(row_index: usize, row: &[u8]) -> Vec<Run> {
    let mut out = Vec::new();
    let mut c = 0usize;
    while c < row.len() {
        if row[c] == 1 {
            let start = c;
            while c < row.len() && row[c] == 1 {
                c += 1;
            }
            out.push(Run {
                row: row_index,
                start,
                end: c,
            });
        } else {
            c += 1;
        }
    }
    out
}

/// A run-length representation of a whole binary image: per-row run lists
/// plus a flat index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunImage {
    width: usize,
    height: usize,
    /// All runs in raster order.
    runs: Vec<Run>,
    /// `row_offsets[r]..row_offsets[r+1]` indexes the runs of row `r`.
    row_offsets: Vec<usize>,
}

impl RunImage {
    /// Builds the run representation of `img`.
    pub fn from_binary(img: &BinaryImage) -> Self {
        let mut runs = Vec::new();
        let mut row_offsets = Vec::with_capacity(img.height() + 1);
        row_offsets.push(0);
        for r in 0..img.height() {
            runs.extend(runs_of_row(r, img.row(r)));
            row_offsets.push(runs.len());
        }
        RunImage {
            width: img.width(),
            height: img.height(),
            runs,
            row_offsets,
        }
    }

    /// Reconstructs the dense binary image.
    pub fn to_binary(&self) -> BinaryImage {
        let mut img = BinaryImage::zeros(self.width, self.height);
        for run in &self.runs {
            for c in run.start..run.end {
                img.set(run.row, c, true);
            }
        }
        img
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// All runs in raster order.
    #[inline]
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The runs of row `r`.
    #[inline]
    pub fn row_runs(&self, r: usize) -> &[Run] {
        &self.runs[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Global index range of the runs of row `r` (into [`Self::runs`]).
    #[inline]
    pub fn row_run_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_offsets[r]..self.row_offsets[r + 1]
    }

    /// Total number of runs.
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of foreground pixels.
    pub fn foreground(&self) -> usize {
        self.runs.iter().map(Run::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_of_simple_row() {
        let runs = runs_of_row(3, &[1, 1, 0, 1, 0, 0, 1, 1, 1]);
        assert_eq!(
            runs,
            vec![
                Run {
                    row: 3,
                    start: 0,
                    end: 2
                },
                Run {
                    row: 3,
                    start: 3,
                    end: 4
                },
                Run {
                    row: 3,
                    start: 6,
                    end: 9
                },
            ]
        );
        assert_eq!(runs.iter().map(Run::len).sum::<usize>(), 6);
    }

    #[test]
    fn runs_of_empty_and_full_rows() {
        assert!(runs_of_row(0, &[0, 0, 0]).is_empty());
        assert_eq!(
            runs_of_row(0, &[1, 1, 1]),
            vec![Run {
                row: 0,
                start: 0,
                end: 3
            }]
        );
        assert!(runs_of_row(0, &[]).is_empty());
    }

    #[test]
    fn touches_8_includes_diagonal() {
        let a = Run {
            row: 0,
            start: 0,
            end: 2,
        }; // cols 0..1
        let b = Run {
            row: 1,
            start: 2,
            end: 4,
        }; // cols 2..3 — diagonal contact
        assert!(a.touches_8(&b));
        assert!(b.touches_8(&a));
        assert!(!a.touches_4(&b));
        let c = Run {
            row: 1,
            start: 3,
            end: 5,
        }; // gap of one column
        assert!(!a.touches_8(&c));
    }

    #[test]
    fn touches_4_requires_direct_overlap() {
        let a = Run {
            row: 0,
            start: 0,
            end: 3,
        };
        let b = Run {
            row: 1,
            start: 2,
            end: 5,
        };
        assert!(a.touches_4(&b));
        let c = Run {
            row: 1,
            start: 3,
            end: 5,
        };
        assert!(!a.touches_4(&c));
        assert!(a.touches_8(&c));
    }

    #[test]
    fn run_image_round_trip() {
        let img = BinaryImage::parse(
            "##.#.
             .....
             #####
             #.#.#",
        );
        let ri = RunImage::from_binary(&img);
        assert_eq!(ri.to_binary(), img);
        assert_eq!(ri.foreground(), img.count_foreground());
        assert_eq!(ri.row_runs(1).len(), 0);
        assert_eq!(ri.row_runs(2).len(), 1);
        assert_eq!(ri.row_runs(3).len(), 3);
    }

    #[test]
    fn run_ranges_partition_all_runs() {
        let img = BinaryImage::parse("#.# .#. #.#");
        let ri = RunImage::from_binary(&img);
        let mut total = 0;
        for r in 0..ri.height() {
            total += ri.row_run_range(r).len();
        }
        assert_eq!(total, ri.run_count());
        assert_eq!(ri.run_count(), 5);
    }
}
