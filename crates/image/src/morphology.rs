//! Binary morphology with 3×3 structuring elements.
//!
//! Used by the synthetic dataset generators in `ccl-datasets` to shape
//! component boundaries (e.g. closing speckle noise into NLCD-like
//! regions). Out-of-bounds pixels are treated as background, matching the
//! conventions of the labeling algorithms.

use crate::bitmap::BinaryImage;
use crate::connectivity::Connectivity;

/// Structuring element for the 3×3 morphological operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structuring {
    /// The full 3×3 box (8-neighbourhood plus center).
    Box3,
    /// The 3×3 cross (4-neighbourhood plus center).
    Cross3,
}

impl Structuring {
    fn neighbourhood(self) -> Connectivity {
        match self {
            Structuring::Box3 => Connectivity::Eight,
            Structuring::Cross3 => Connectivity::Four,
        }
    }
}

/// Dilation: a pixel is foreground iff any pixel under the structuring
/// element (centered on it) is foreground.
pub fn dilate(img: &BinaryImage, se: Structuring) -> BinaryImage {
    let offs = se.neighbourhood().offsets();
    BinaryImage::from_fn(img.width(), img.height(), |r, c| {
        if img.get(r, c) == 1 {
            return true;
        }
        offs.iter()
            .any(|&(dr, dc)| img.get_or_bg(r as isize + dr, c as isize + dc) == 1)
    })
}

/// Erosion: a pixel stays foreground iff every pixel under the structuring
/// element is foreground (border pixels therefore always erode).
pub fn erode(img: &BinaryImage, se: Structuring) -> BinaryImage {
    let offs = se.neighbourhood().offsets();
    BinaryImage::from_fn(img.width(), img.height(), |r, c| {
        img.get(r, c) == 1
            && offs
                .iter()
                .all(|&(dr, dc)| img.get_or_bg(r as isize + dr, c as isize + dc) == 1)
    })
}

/// Opening: erosion followed by dilation. Removes features smaller than
/// the structuring element.
pub fn open(img: &BinaryImage, se: Structuring) -> BinaryImage {
    dilate(&erode(img, se), se)
}

/// Closing: dilation followed by erosion. Fills gaps smaller than the
/// structuring element.
pub fn close(img: &BinaryImage, se: Structuring) -> BinaryImage {
    erode(&dilate(img, se), se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilate_grows_single_pixel() {
        let mut img = BinaryImage::zeros(5, 5);
        img.set(2, 2, true);
        let d8 = dilate(&img, Structuring::Box3);
        assert_eq!(d8.count_foreground(), 9);
        let d4 = dilate(&img, Structuring::Cross3);
        assert_eq!(d4.count_foreground(), 5);
    }

    #[test]
    fn erode_removes_single_pixel() {
        let mut img = BinaryImage::zeros(5, 5);
        img.set(2, 2, true);
        assert_eq!(erode(&img, Structuring::Box3).count_foreground(), 0);
        assert_eq!(erode(&img, Structuring::Cross3).count_foreground(), 0);
    }

    #[test]
    fn erode_keeps_interior_of_solid_block() {
        let img = BinaryImage::parse(
            ".....
             .###.
             .###.
             .###.
             .....",
        );
        let e = erode(&img, Structuring::Box3);
        assert_eq!(e.count_foreground(), 1);
        assert_eq!(e.get(2, 2), 1);
    }

    #[test]
    fn border_pixels_always_erode() {
        let img = BinaryImage::ones(4, 4);
        let e = erode(&img, Structuring::Box3);
        assert_eq!(e.count_foreground(), 4); // only the inner 2x2 survives
    }

    #[test]
    fn open_removes_speckle_keeps_block() {
        let mut img = BinaryImage::parse(
            ".......
             .###...
             .###...
             .###...
             .......",
        );
        img.set(0, 6, true); // speckle
        let o = open(&img, Structuring::Box3);
        assert_eq!(o.get(0, 6), 0);
        assert_eq!(o.get(2, 2), 1);
    }

    #[test]
    fn close_fills_small_hole() {
        let img = BinaryImage::parse(
            "#####
             ##.##
             #####",
        );
        let c = close(&img, Structuring::Box3);
        assert_eq!(c.get(1, 2), 1);
    }

    #[test]
    fn dilate_then_erode_of_big_block_is_identity_in_interior() {
        let img = BinaryImage::parse(
            ".......
             .#####.
             .#####.
             .#####.
             .......",
        );
        let oc = close(&img, Structuring::Box3);
        for r in 1..4 {
            for c in 1..6 {
                assert_eq!(oc.get(r, c), 1);
            }
        }
    }
}
