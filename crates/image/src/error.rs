//! Error type shared by the image substrate.

use std::fmt;

/// Errors produced while constructing or (de)serializing images.
#[derive(Debug)]
pub enum ImageError {
    /// Width/height pair whose pixel count overflows `usize`, or a buffer
    /// whose length does not match `width * height`.
    Dimensions {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Length of the provided buffer, if the mismatch involves one.
        buffer_len: Option<usize>,
    },
    /// A pixel value outside the valid range for the raster type
    /// (e.g. a `BinaryImage` sample that is neither 0 nor 1).
    InvalidPixel {
        /// Linear index of the offending pixel.
        index: usize,
        /// The value found there.
        value: u8,
    },
    /// Malformed Netpbm stream.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Dimensions {
                width,
                height,
                buffer_len,
            } => match buffer_len {
                Some(len) => write!(
                    f,
                    "buffer of length {len} does not match {width}x{height} image"
                ),
                None => write!(f, "invalid image dimensions {width}x{height}"),
            },
            ImageError::InvalidPixel { index, value } => {
                write!(f, "invalid pixel value {value} at index {index}")
            }
            ImageError::Parse(msg) => write!(f, "netpbm parse error: {msg}"),
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimensions_with_buffer() {
        let e = ImageError::Dimensions {
            width: 3,
            height: 4,
            buffer_len: Some(10),
        };
        assert_eq!(
            e.to_string(),
            "buffer of length 10 does not match 3x4 image"
        );
    }

    #[test]
    fn display_dimensions_without_buffer() {
        let e = ImageError::Dimensions {
            width: usize::MAX,
            height: 2,
            buffer_len: None,
        };
        assert!(e.to_string().contains("invalid image dimensions"));
    }

    #[test]
    fn display_invalid_pixel() {
        let e = ImageError::InvalidPixel { index: 7, value: 9 };
        assert_eq!(e.to_string(), "invalid pixel value 9 at index 7");
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "boom");
        let e = ImageError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
