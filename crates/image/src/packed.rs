//! Bit-packed binary raster.
//!
//! The NLCD-class experiments use images up to 465.20 MB of byte-per-pixel
//! raster. [`PackedBinaryImage`] stores the same content at one bit per
//! pixel (8× smaller), which is how the dataset suite keeps several large
//! images resident while sweeping thread counts. Conversion to/from
//! [`BinaryImage`] is lossless.

use crate::bitmap::BinaryImage;

/// A binary image stored one bit per pixel, rows padded to whole 64-bit
/// words so each row starts word-aligned.
#[derive(Clone, PartialEq, Eq)]
pub struct PackedBinaryImage {
    width: usize,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl PackedBinaryImage {
    /// Creates an all-background packed image.
    pub fn zeros(width: usize, height: usize) -> Self {
        let words_per_row = width.div_ceil(64);
        let total = words_per_row
            .checked_mul(height)
            .expect("image dimensions overflow");
        PackedBinaryImage {
            width,
            height,
            words_per_row,
            words: vec![0u64; total],
        }
    }

    /// Packs a byte-per-pixel image.
    pub fn from_binary(img: &BinaryImage) -> Self {
        let mut out = Self::zeros(img.width(), img.height());
        for r in 0..img.height() {
            let row = img.row(r);
            let base = r * out.words_per_row;
            for (c, &v) in row.iter().enumerate() {
                if v == 1 {
                    out.words[base + c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        out
    }

    /// Unpacks to a byte-per-pixel image.
    pub fn to_binary(&self) -> BinaryImage {
        let mut data = vec![0u8; self.width * self.height];
        for r in 0..self.height {
            let base = r * self.words_per_row;
            let row = &mut data[r * self.width..(r + 1) * self.width];
            for (c, px) in row.iter_mut().enumerate() {
                *px = ((self.words[base + c / 64] >> (c % 64)) & 1) as u8;
            }
        }
        BinaryImage::from_raw(self.width, self.height, data).expect("valid by construction")
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value (0/1) at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        debug_assert!(row < self.height && col < self.width);
        ((self.words[row * self.words_per_row + col / 64] >> (col % 64)) & 1) as u8
    }

    /// Sets pixel `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        debug_assert!(row < self.height && col < self.width);
        let word = &mut self.words[row * self.words_per_row + col / 64];
        let mask = 1u64 << (col % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of foreground pixels, via word popcounts.
    pub fn count_foreground(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bytes of storage used by the packed representation.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl std::fmt::Debug for PackedBinaryImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackedBinaryImage({}x{}, {} bytes)",
            self.width,
            self.height,
            self.storage_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_pixels() {
        let img = BinaryImage::parse(
            "#..#..#
             .##.##.
             #######
             .......",
        );
        let packed = PackedBinaryImage::from_binary(&img);
        assert_eq!(packed.to_binary(), img);
        assert_eq!(packed.count_foreground(), img.count_foreground());
    }

    #[test]
    fn round_trip_at_word_boundaries() {
        // widths straddling the 64-bit word boundary
        for width in [63, 64, 65, 127, 128, 129] {
            let img = BinaryImage::from_fn(width, 3, |r, c| (r * 31 + c * 7) % 3 == 0);
            let packed = PackedBinaryImage::from_binary(&img);
            assert_eq!(packed.to_binary(), img, "width {width}");
        }
    }

    #[test]
    fn get_set_individual_bits() {
        let mut p = PackedBinaryImage::zeros(100, 2);
        p.set(1, 99, true);
        p.set(0, 64, true);
        assert_eq!(p.get(1, 99), 1);
        assert_eq!(p.get(0, 64), 1);
        assert_eq!(p.get(0, 63), 0);
        p.set(1, 99, false);
        assert_eq!(p.get(1, 99), 0);
        assert_eq!(p.count_foreground(), 1);
    }

    #[test]
    fn storage_is_eight_times_smaller() {
        let img = BinaryImage::zeros(1024, 1024);
        let packed = PackedBinaryImage::from_binary(&img);
        assert_eq!(packed.storage_bytes(), img.raster_bytes() / 8);
        assert_eq!(packed.storage_bytes(), 1024 * 1024 / 8);
    }

    #[test]
    fn rows_are_word_aligned_and_independent() {
        // width 1 => one word per row; setting a bit in row 0 must not
        // bleed into row 1.
        let mut p = PackedBinaryImage::zeros(1, 2);
        p.set(0, 0, true);
        assert_eq!(p.get(1, 0), 0);
    }
}
