//! 24-bit RGB raster and the MATLAB-compatible grayscale conversion.
//!
//! The paper converts color inputs with MATLAB's `im2bw`, which first runs
//! `rgb2gray`. MATLAB's `rgb2gray` uses the Rec.601 luma weights
//! `0.2989 R + 0.5870 G + 0.1140 B`; [`RgbImage::to_gray`] reproduces that
//! formula (with round-half-up, matching MATLAB's `round`).

use crate::error::ImageError;
use crate::gray::GrayImage;

/// An interleaved 8-bit-per-channel RGB image, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    /// Interleaved `[r, g, b, r, g, b, …]`, length `3 * width * height`.
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates an all-black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        let pixels = width
            .checked_mul(height)
            .and_then(|p| p.checked_mul(3))
            .expect("image dimensions overflow");
        RgbImage {
            width,
            height,
            data: vec![0u8; pixels],
        }
    }

    /// Builds an image by evaluating `f(row, col) -> [r, g, b]`.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [u8; 3],
    ) -> Self {
        let mut img = Self::zeros(width, height);
        for r in 0..height {
            for c in 0..width {
                let px = f(r, c);
                let base = (r * width + c) * 3;
                img.data[base..base + 3].copy_from_slice(&px);
            }
        }
        img
    }

    /// Wraps an interleaved RGB buffer (`3 * width * height` bytes).
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width.checked_mul(height).and_then(|p| p.checked_mul(3)) != Some(data.len()) {
            return Err(ImageError::Dimensions {
                width,
                height,
                buffer_len: Some(data.len()),
            });
        }
        Ok(RgbImage {
            width,
            height,
            data,
        })
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The `[r, g, b]` triple at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> [u8; 3] {
        debug_assert!(row < self.height && col < self.width);
        let base = (row * self.width + col) * 3;
        [self.data[base], self.data[base + 1], self.data[base + 2]]
    }

    /// Sets the pixel at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, px: [u8; 3]) {
        debug_assert!(row < self.height && col < self.width);
        let base = (row * self.width + col) * 3;
        self.data[base..base + 3].copy_from_slice(&px);
    }

    /// Read-only view of the interleaved buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the image and returns the interleaved buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Rec.601 luma conversion, matching MATLAB's `rgb2gray`:
    /// `Y = round(0.2989 R + 0.5870 G + 0.1140 B)`.
    ///
    /// Implemented in 32-bit fixed point (×2^20) so the result is exact for
    /// all inputs and independent of floating-point rounding mode.
    pub fn to_gray(&self) -> GrayImage {
        // Weights scaled by 2^20; the +0.5 rounding term is HALF.
        const SHIFT: u32 = 20;
        const WR: u32 = (0.2989 * (1u32 << SHIFT) as f64) as u32;
        const WG: u32 = (0.5870 * (1u32 << SHIFT) as f64) as u32;
        const WB: u32 = (0.1140 * (1u32 << SHIFT) as f64) as u32;
        const HALF: u32 = 1 << (SHIFT - 1);
        let mut out = Vec::with_capacity(self.width * self.height);
        for px in self.data.chunks_exact(3) {
            let y = (WR * px[0] as u32 + WG * px[1] as u32 + WB * px[2] as u32 + HALF) >> SHIFT;
            out.push(y.min(255) as u8);
        }
        GrayImage::from_raw(self.width, self.height, out)
            .expect("dimensions preserved by conversion")
    }
}

impl std::fmt::Debug for RgbImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RgbImage({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_gray_pure_channels() {
        let img = RgbImage::from_fn(3, 1, |_, c| match c {
            0 => [255, 0, 0],
            1 => [0, 255, 0],
            _ => [0, 0, 255],
        });
        let g = img.to_gray();
        // MATLAB: round(255 * 0.2989) = 76, round(255 * 0.587) = 150,
        // round(255 * 0.114) = 29.
        assert_eq!(g.get(0, 0), 76);
        assert_eq!(g.get(0, 1), 150);
        assert_eq!(g.get(0, 2), 29);
    }

    #[test]
    fn to_gray_white_and_black() {
        let img = RgbImage::from_fn(2, 1, |_, c| if c == 0 { [255; 3] } else { [0; 3] });
        let g = img.to_gray();
        assert_eq!(g.get(0, 0), 255);
        assert_eq!(g.get(0, 1), 0);
    }

    #[test]
    fn to_gray_gray_input_is_identity() {
        // For r = g = b = v the weights sum to ~1.0 so output equals v.
        let img = RgbImage::from_fn(256, 1, |_, c| [c as u8; 3]);
        let g = img.to_gray();
        for c in 0..256 {
            assert_eq!(g.get(0, c), c as u8, "value {c}");
        }
    }

    #[test]
    fn from_raw_length_check() {
        assert!(RgbImage::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(RgbImage::from_raw(2, 2, vec![0; 12]).is_ok());
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = RgbImage::zeros(2, 2);
        img.set(1, 0, [10, 20, 30]);
        assert_eq!(img.get(1, 0), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }
}
