//! Structural statistics of binary images.
//!
//! CCL cost is driven by the image's *structure* — density, run counts,
//! transition frequency — rather than by its content. The dataset suite
//! uses these statistics to document what each synthetic family looks
//! like, and the benchmark reports include them so results can be
//! interpreted.

use crate::bitmap::BinaryImage;

/// Summary of the structural properties that drive CCL cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryStats {
    /// Total pixels.
    pub pixels: usize,
    /// Foreground pixel count.
    pub foreground: usize,
    /// Foreground fraction, `[0, 1]`.
    pub density: f64,
    /// Number of maximal horizontal foreground runs.
    pub runs: usize,
    /// Mean run length (0 when there are no runs).
    pub mean_run_len: f64,
    /// Number of 0→1 and 1→0 transitions along rows (proxy for how often
    /// the scan phase changes branch direction).
    pub row_transitions: usize,
}

/// Computes [`BinaryStats`] for an image.
pub fn binary_stats(img: &BinaryImage) -> BinaryStats {
    let mut runs = 0usize;
    let mut transitions = 0usize;
    for r in 0..img.height() {
        let row = img.row(r);
        let mut prev = 0u8;
        for &v in row {
            if v != prev {
                transitions += 1;
                if v == 1 {
                    runs += 1;
                }
            }
            prev = v;
        }
        if prev == 1 {
            transitions += 1; // implicit trailing edge
        }
    }
    let foreground = img.count_foreground();
    BinaryStats {
        pixels: img.len(),
        foreground,
        density: img.density(),
        runs,
        mean_run_len: if runs == 0 {
            0.0
        } else {
            foreground as f64 / runs as f64
        },
        row_transitions: transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_image() {
        let s = binary_stats(&BinaryImage::zeros(8, 8));
        assert_eq!(s.foreground, 0);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_run_len, 0.0);
        assert_eq!(s.row_transitions, 0);
    }

    #[test]
    fn stats_of_full_image() {
        let s = binary_stats(&BinaryImage::ones(8, 4));
        assert_eq!(s.foreground, 32);
        assert_eq!(s.runs, 4); // one run per row
        assert_eq!(s.mean_run_len, 8.0);
        // each row: one rising edge + one trailing edge
        assert_eq!(s.row_transitions, 8);
    }

    #[test]
    fn stats_of_alternating_row() {
        let img = BinaryImage::parse("#.#.#");
        let s = binary_stats(&img);
        assert_eq!(s.runs, 3);
        assert_eq!(s.foreground, 3);
        assert_eq!(s.mean_run_len, 1.0);
        // edges: 0->1 at c0? prev starts 0, c0=1 -> transition; c1=0 ->
        // transition; c2=1; c3=0; c4=1; trailing edge. total 6.
        assert_eq!(s.row_transitions, 6);
    }

    #[test]
    fn density_matches_image() {
        let img = BinaryImage::parse("##.. ....");
        let s = binary_stats(&img);
        assert!((s.density - 0.25).abs() < 1e-12);
        assert_eq!(s.pixels, 8);
    }
}
