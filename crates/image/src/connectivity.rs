//! Pixel connectivity definitions (§III of the paper).
//!
//! Two foreground pixels belong to the same connected component when a path
//! of adjacent foreground pixels joins them. "Adjacent" is defined by the
//! chosen [`Connectivity`]: 4-connectedness admits the N/S/E/W neighbours,
//! 8-connectedness additionally admits the diagonals. The paper (and all of
//! its algorithms) uses 8-connectedness exclusively; the flood-fill oracle
//! in `ccl-core` supports both so the distinction can be tested.

/// Neighbourhood definition for connected components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Connectivity {
    /// Edge-adjacency only: offsets (±1, 0) and (0, ±1).
    Four,
    /// Edge and corner adjacency: all eight surrounding offsets.
    Eight,
}

impl Connectivity {
    /// Row/column offsets of every neighbour under this connectivity.
    ///
    /// Offsets are returned in raster order (top-left to bottom-right).
    pub fn offsets(self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &[(-1, 0), (0, -1), (0, 1), (1, 0)],
            Connectivity::Eight => &[
                (-1, -1),
                (-1, 0),
                (-1, 1),
                (0, -1),
                (0, 1),
                (1, -1),
                (1, 0),
                (1, 1),
            ],
        }
    }

    /// Offsets of the neighbours that precede pixel `(r, c)` in raster
    /// order — the "forward scan mask" of Fig. 1a: `a (r-1,c-1)`,
    /// `b (r-1,c)`, `c (r-1,c+1)`, `d (r,c-1)`.
    pub fn prior_offsets(self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &[(-1, 0), (0, -1)],
            Connectivity::Eight => &[(-1, -1), (-1, 0), (-1, 1), (0, -1)],
        }
    }

    /// Number of neighbours (4 or 8).
    pub fn degree(self) -> usize {
        self.offsets().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_has_four_offsets() {
        assert_eq!(Connectivity::Four.offsets().len(), 4);
        assert_eq!(Connectivity::Four.degree(), 4);
    }

    #[test]
    fn eight_has_eight_offsets() {
        assert_eq!(Connectivity::Eight.offsets().len(), 8);
        assert_eq!(Connectivity::Eight.degree(), 8);
    }

    #[test]
    fn prior_offsets_are_strictly_before_in_raster_order() {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            for &(dr, dc) in conn.prior_offsets() {
                assert!(dr < 0 || (dr == 0 && dc < 0), "({dr},{dc}) not prior");
            }
        }
    }

    #[test]
    fn prior_offsets_are_half_of_all_offsets() {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(conn.prior_offsets().len() * 2, conn.offsets().len());
        }
    }

    #[test]
    fn no_duplicate_offsets() {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let offs = conn.offsets();
            for (i, a) in offs.iter().enumerate() {
                for b in &offs[i + 1..] {
                    assert_ne!(a, b);
                }
            }
            assert!(!offs.contains(&(0, 0)), "self offset must be absent");
        }
    }
}
