//! # ccl-image
//!
//! Image substrate for the PAREMSP connected-component-labeling
//! reproduction (Gupta et al., IPPS 2014).
//!
//! The paper operates on *binary* images obtained from grayscale (or color)
//! inputs through MATLAB's `im2bw(level = 0.5)`. This crate provides every
//! piece of that pipeline, built from scratch:
//!
//! * [`BinaryImage`] — the 0/1 raster every labeling algorithm consumes,
//! * [`GrayImage`] / [`RgbImage`] — 8-bit grayscale and RGB rasters,
//! * [`threshold`] — `im2bw`-compatible fixed thresholding plus Otsu's
//!   method and adaptive mean thresholding,
//! * [`io`] — Netpbm (PBM/PGM/PPM, ASCII and binary) readers and writers,
//! * [`runs`] — row run-length extraction (used by the run-based labeling
//!   baseline),
//! * [`packed`] — a bit-packed binary raster for memory-lean storage of the
//!   large NLCD-class images,
//! * [`morphology`] — 3×3 dilate/erode/open/close (used by the synthetic
//!   dataset generators),
//! * [`connectivity`] — the 4-/8-connectedness definitions of §III.
//!
//! All rasters are row-major; pixel `(row, col)` of an `R × C` image lives
//! at linear index `row * C + col`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod connectivity;
pub mod error;
pub mod gray;
pub mod io;
pub mod morphology;
pub mod packed;
pub mod rgb;
pub mod runs;
pub mod stats;
pub mod threshold;

pub use bitmap::BinaryImage;
pub use connectivity::Connectivity;
pub use error::ImageError;
pub use gray::GrayImage;
pub use packed::PackedBinaryImage;
pub use rgb::RgbImage;
pub use runs::{Run, RunImage};
