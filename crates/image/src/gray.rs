//! 8-bit grayscale raster, the input to thresholding.

use crate::error::ImageError;

/// An 8-bit grayscale image, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates an all-black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        let pixels = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        GrayImage {
            width,
            height,
            data: vec![0u8; pixels],
        }
    }

    /// Builds an image by evaluating `f(row, col)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = Self::zeros(width, height);
        for r in 0..height {
            for c in 0..width {
                img.data[r * width + c] = f(r, c);
            }
        }
        img
    }

    /// Wraps an existing luminance buffer.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width.checked_mul(height) != Some(data.len()) {
            return Err(ImageError::Dimensions {
                width,
                height,
                buffer_len: Some(data.len()),
            });
        }
        Ok(GrayImage {
            width,
            height,
            data,
        })
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image contains no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Luminance at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        debug_assert!(row < self.height && col < self.width);
        self.data[row * self.width + col]
    }

    /// Sets the luminance at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        debug_assert!(row < self.height && col < self.width);
        self.data[row * self.width + col] = value;
    }

    /// Read-only view of the raw luminance buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the raw luminance buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the image and returns its buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// 256-bin luminance histogram.
    pub fn histogram(&self) -> [usize; 256] {
        let mut hist = [0usize; 256];
        for &v in &self.data {
            hist[v as usize] += 1;
        }
        hist
    }

    /// Mean luminance. Returns 0 for an empty image.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.data.iter().map(|&v| v as u64).sum();
        sum as f64 / self.data.len() as f64
    }
}

impl std::fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GrayImage({}x{}, mean={:.1})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_gradient() {
        let img = GrayImage::from_fn(4, 2, |r, c| (r * 4 + c) as u8 * 10);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 3), 70);
    }

    #[test]
    fn from_raw_checks_length() {
        assert!(GrayImage::from_raw(2, 2, vec![0; 3]).is_err());
        assert!(GrayImage::from_raw(2, 2, vec![0; 4]).is_ok());
    }

    #[test]
    fn histogram_counts_every_pixel() {
        let img = GrayImage::from_fn(3, 3, |r, _| if r == 0 { 5 } else { 200 });
        let h = img.histogram();
        assert_eq!(h[5], 3);
        assert_eq!(h[200], 6);
        assert_eq!(h.iter().sum::<usize>(), 9);
    }

    #[test]
    fn mean_of_uniform() {
        let img = GrayImage::from_fn(10, 10, |_, _| 42);
        assert!((img.mean() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(GrayImage::zeros(0, 5).mean(), 0.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = GrayImage::zeros(3, 3);
        img.set(2, 1, 99);
        assert_eq!(img.get(2, 1), 99);
    }
}
