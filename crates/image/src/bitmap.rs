//! [`BinaryImage`] — the 0/1 raster that every labeling algorithm consumes.
//!
//! Following §III of the paper, object (foreground) pixels hold value 1 and
//! background pixels hold value 0. We store one byte per pixel: the scan
//! phases of the labeling algorithms are branch-heavy inner loops and the
//! byte representation lets them read neighbours without bit arithmetic.
//! A bit-packed variant for bulk storage lives in [`crate::packed`].

use crate::error::ImageError;

/// A binary (two-valued) image with byte-per-pixel storage, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct BinaryImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl BinaryImage {
    /// Creates an all-background image of the given dimensions.
    ///
    /// # Panics
    /// Panics if `width * height` overflows `usize`.
    pub fn zeros(width: usize, height: usize) -> Self {
        let pixels = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        BinaryImage {
            width,
            height,
            data: vec![0u8; pixels],
        }
    }

    /// Creates an all-foreground image of the given dimensions.
    pub fn ones(width: usize, height: usize) -> Self {
        let mut img = Self::zeros(width, height);
        img.data.fill(1);
        img
    }

    /// Builds an image by evaluating `f(row, col)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut img = Self::zeros(width, height);
        for r in 0..height {
            for c in 0..width {
                img.data[r * width + c] = u8::from(f(r, c));
            }
        }
        img
    }

    /// Wraps an existing buffer of 0/1 bytes.
    ///
    /// Returns an error when the buffer length does not equal
    /// `width * height` or when any byte is neither 0 nor 1.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width.checked_mul(height) != Some(data.len()) {
            return Err(ImageError::Dimensions {
                width,
                height,
                buffer_len: Some(data.len()),
            });
        }
        if let Some(index) = data.iter().position(|&b| b > 1) {
            return Err(ImageError::InvalidPixel {
                index,
                value: data[index],
            });
        }
        Ok(BinaryImage {
            width,
            height,
            data,
        })
    }

    /// Parses a compact string picture: `#`/`1` are foreground, `.`/`0`
    /// background; rows are separated by whitespace. Intended for tests.
    ///
    /// ```
    /// use ccl_image::BinaryImage;
    /// let img = BinaryImage::parse("##. .#. ..#");
    /// assert_eq!((img.width(), img.height()), (3, 3));
    /// assert_eq!(img.get(0, 0), 1);
    /// assert_eq!(img.get(2, 1), 0);
    /// ```
    ///
    /// # Panics
    /// Panics on ragged rows or characters outside `{#, 1, ., 0}`.
    pub fn parse(picture: &str) -> Self {
        let rows: Vec<&str> = picture.split_whitespace().collect();
        let height = rows.len();
        let width = rows.first().map_or(0, |r| r.chars().count());
        let mut data = Vec::with_capacity(width * height);
        for row in &rows {
            assert_eq!(row.chars().count(), width, "ragged row in picture");
            for ch in row.chars() {
                data.push(match ch {
                    '#' | '1' => 1,
                    '.' | '0' => 0,
                    other => panic!("invalid picture character {other:?}"),
                });
            }
        }
        BinaryImage {
            width,
            height,
            data,
        }
    }

    /// Image width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count (`width * height`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image contains no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel value (0 or 1) at `(row, col)`.
    ///
    /// # Panics
    /// Panics when the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        debug_assert!(row < self.height && col < self.width);
        self.data[row * self.width + col]
    }

    /// Pixel value at `(row, col)`, treating out-of-bounds coordinates as
    /// background. Accepts signed coordinates so scan masks can probe above
    /// the first row / left of the first column.
    #[inline]
    pub fn get_or_bg(&self, row: isize, col: isize) -> u8 {
        if row < 0 || col < 0 || row as usize >= self.height || col as usize >= self.width {
            0
        } else {
            self.data[row as usize * self.width + col as usize]
        }
    }

    /// Sets pixel `(row, col)` to foreground (`value = true`) or background.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        debug_assert!(row < self.height && col < self.width);
        self.data[row * self.width + col] = u8::from(value);
    }

    /// Read-only view of the underlying row-major 0/1 buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// One image row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[u8] {
        let start = row * self.width;
        &self.data[start..start + self.width]
    }

    /// Consumes the image and returns its buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Number of foreground pixels.
    pub fn count_foreground(&self) -> usize {
        self.data.iter().map(|&b| b as usize).sum()
    }

    /// Fraction of pixels that are foreground, in `[0, 1]`.
    /// Returns 0 for an empty image.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count_foreground() as f64 / self.data.len() as f64
        }
    }

    /// Logical complement: foreground becomes background and vice versa.
    pub fn inverted(&self) -> Self {
        BinaryImage {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&b| 1 - b).collect(),
        }
    }

    /// Transpose: output pixel `(r, c)` equals input pixel `(c, r)`.
    pub fn transposed(&self) -> Self {
        let mut out = BinaryImage::zeros(self.height, self.width);
        for r in 0..self.height {
            for c in 0..self.width {
                out.data[c * self.height + r] = self.data[r * self.width + c];
            }
        }
        out
    }

    /// Extracts the sub-image with top-left corner `(row, col)` and the
    /// given dimensions.
    ///
    /// # Panics
    /// Panics when the window exceeds the image bounds.
    pub fn crop(&self, row: usize, col: usize, width: usize, height: usize) -> Self {
        assert!(row + height <= self.height && col + width <= self.width);
        let mut out = BinaryImage::zeros(width, height);
        for r in 0..height {
            let src = (row + r) * self.width + col;
            out.data[r * width..(r + 1) * width].copy_from_slice(&self.data[src..src + width]);
        }
        out
    }

    /// Returns a copy surrounded by a `margin`-pixel background border.
    pub fn padded(&self, margin: usize) -> Self {
        let mut out = BinaryImage::zeros(self.width + 2 * margin, self.height + 2 * margin);
        for r in 0..self.height {
            let dst = (r + margin) * out.width + margin;
            out.data[dst..dst + self.width]
                .copy_from_slice(&self.data[r * self.width..(r + 1) * self.width]);
        }
        out
    }

    /// Iterator over `(row, col)` coordinates of all foreground pixels,
    /// in raster order.
    pub fn foreground_pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let width = self.width;
        self.data
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v == 1)
            .map(move |(i, _)| (i / width, i % width))
    }

    /// Size of the raw pixel buffer in bytes (1 byte per pixel). The paper
    /// reports image sizes in megabytes of binary raster; this is that
    /// figure in bytes.
    pub fn raster_bytes(&self) -> usize {
        self.data.len()
    }
}

impl std::fmt::Debug for BinaryImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BinaryImage({}x{})", self.width, self.height)?;
        // Cap debug rendering so huge images stay printable.
        let max_dim = 64;
        for r in 0..self.height.min(max_dim) {
            for c in 0..self.width.min(max_dim) {
                f.write_str(if self.get(r, c) == 1 { "#" } else { "." })?;
            }
            if self.width > max_dim {
                f.write_str("…")?;
            }
            writeln!(f)?;
        }
        if self.height > max_dim {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BinaryImage::zeros(4, 3);
        assert_eq!(z.count_foreground(), 0);
        assert_eq!((z.width(), z.height(), z.len()), (4, 3, 12));
        let o = BinaryImage::ones(4, 3);
        assert_eq!(o.count_foreground(), 12);
        assert!((o.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_fn_checkerboard() {
        let img = BinaryImage::from_fn(4, 4, |r, c| (r + c) % 2 == 0);
        assert_eq!(img.count_foreground(), 8);
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(0, 1), 0);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(matches!(
            BinaryImage::from_raw(3, 3, vec![0; 8]),
            Err(ImageError::Dimensions { .. })
        ));
    }

    #[test]
    fn from_raw_validates_values() {
        let err = BinaryImage::from_raw(2, 2, vec![0, 1, 2, 0]).unwrap_err();
        assert!(matches!(
            err,
            ImageError::InvalidPixel { index: 2, value: 2 }
        ));
    }

    #[test]
    fn from_raw_accepts_valid() {
        let img = BinaryImage::from_raw(2, 2, vec![0, 1, 1, 0]).unwrap();
        assert_eq!(img.get(0, 1), 1);
        assert_eq!(img.get(1, 1), 0);
    }

    #[test]
    fn parse_round_trips_with_get() {
        let img = BinaryImage::parse(
            "#..#
             .##.
             #..#",
        );
        assert_eq!((img.width(), img.height()), (4, 3));
        assert_eq!(img.get(1, 1), 1);
        assert_eq!(img.get(2, 3), 1);
        assert_eq!(img.get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn parse_rejects_ragged() {
        BinaryImage::parse("## #");
    }

    #[test]
    fn get_or_bg_outside_is_zero() {
        let img = BinaryImage::ones(2, 2);
        assert_eq!(img.get_or_bg(-1, 0), 0);
        assert_eq!(img.get_or_bg(0, -1), 0);
        assert_eq!(img.get_or_bg(2, 0), 0);
        assert_eq!(img.get_or_bg(0, 2), 0);
        assert_eq!(img.get_or_bg(1, 1), 1);
    }

    #[test]
    fn set_then_get() {
        let mut img = BinaryImage::zeros(3, 3);
        img.set(1, 2, true);
        assert_eq!(img.get(1, 2), 1);
        img.set(1, 2, false);
        assert_eq!(img.get(1, 2), 0);
    }

    #[test]
    fn inverted_twice_is_identity() {
        let img = BinaryImage::parse("#.# .#. #.#");
        assert_eq!(img.inverted().inverted(), img);
        assert_eq!(
            img.inverted().count_foreground(),
            img.len() - img.count_foreground()
        );
    }

    #[test]
    fn transpose_twice_is_identity() {
        let img = BinaryImage::parse("#... .##. ..##");
        let t = img.transposed();
        assert_eq!((t.width(), t.height()), (3, 4));
        assert_eq!(t.get(3, 2), img.get(2, 3));
        assert_eq!(t.transposed(), img);
    }

    #[test]
    fn crop_extracts_window() {
        let img = BinaryImage::parse(
            "####
             #..#
             #..#
             ####",
        );
        let inner = img.crop(1, 1, 2, 2);
        assert_eq!(inner.count_foreground(), 0);
        let edge = img.crop(0, 0, 4, 1);
        assert_eq!(edge.count_foreground(), 4);
    }

    #[test]
    fn padded_adds_background_border() {
        let img = BinaryImage::ones(2, 2);
        let p = img.padded(2);
        assert_eq!((p.width(), p.height()), (6, 6));
        assert_eq!(p.count_foreground(), 4);
        assert_eq!(p.get(2, 2), 1);
        assert_eq!(p.get(0, 0), 0);
    }

    #[test]
    fn foreground_pixels_in_raster_order() {
        let img = BinaryImage::parse(".#. #.# .#.");
        let px: Vec<_> = img.foreground_pixels().collect();
        assert_eq!(px, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn row_slices() {
        let img = BinaryImage::parse("##. ..#");
        assert_eq!(img.row(0), &[1, 1, 0]);
        assert_eq!(img.row(1), &[0, 0, 1]);
    }

    #[test]
    fn empty_image() {
        let img = BinaryImage::zeros(0, 0);
        assert!(img.is_empty());
        assert_eq!(img.density(), 0.0);
        assert_eq!(img.foreground_pixels().count(), 0);
    }

    #[test]
    fn debug_render_contains_rows() {
        let img = BinaryImage::parse("#. .#");
        let s = format!("{img:?}");
        assert!(s.contains("#."));
        assert!(s.contains(".#"));
    }
}
