//! Property-based tests for the image substrate.

use proptest::prelude::*;

use ccl_image::io::{pbm, pgm, ppm};
use ccl_image::morphology::{close, dilate, erode, open, Structuring};
use ccl_image::threshold::im2bw;
use ccl_image::{BinaryImage, GrayImage, PackedBinaryImage, RgbImage, RunImage};

fn arb_binary() -> impl Strategy<Value = BinaryImage> {
    (1usize..=20, 1usize..=20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::bool::ANY, w * h)
            .prop_map(move |bits| BinaryImage::from_fn(w, h, |r, c| bits[r * w + c]))
    })
}

fn arb_gray() -> impl Strategy<Value = GrayImage> {
    (1usize..=16, 1usize..=16).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::num::u8::ANY, w * h)
            .prop_map(move |px| GrayImage::from_raw(w, h, px).unwrap())
    })
}

fn arb_rgb() -> impl Strategy<Value = RgbImage> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::num::u8::ANY, w * h * 3)
            .prop_map(move |px| RgbImage::from_raw(w, h, px).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pgm_round_trips(img in arb_gray()) {
        prop_assert_eq!(&pgm::read(&pgm::write_binary(&img)).unwrap(), &img);
        prop_assert_eq!(&pgm::read(&pgm::write_ascii(&img)).unwrap(), &img);
    }

    #[test]
    fn ppm_round_trips(img in arb_rgb()) {
        prop_assert_eq!(&ppm::read(&ppm::write_binary(&img)).unwrap(), &img);
        prop_assert_eq!(&ppm::read(&ppm::write_ascii(&img)).unwrap(), &img);
    }

    #[test]
    fn pbm_round_trips(img in arb_binary()) {
        prop_assert_eq!(&pbm::read(&pbm::write_binary(&img)).unwrap(), &img);
    }

    #[test]
    fn packed_round_trips(img in arb_binary()) {
        let packed = PackedBinaryImage::from_binary(&img);
        prop_assert_eq!(&packed.to_binary(), &img);
        prop_assert_eq!(packed.count_foreground(), img.count_foreground());
    }

    #[test]
    fn runs_partition_foreground(img in arb_binary()) {
        let runs = RunImage::from_binary(&img);
        prop_assert_eq!(runs.foreground(), img.count_foreground());
        prop_assert_eq!(&runs.to_binary(), &img);
        // runs within a row are disjoint, ordered, maximal
        for r in 0..img.height() {
            let row_runs = runs.row_runs(r);
            for pair in row_runs.windows(2) {
                prop_assert!(pair[0].end < pair[1].start, "not maximal/ordered");
            }
        }
    }

    #[test]
    fn erosion_shrinks_dilation_grows(img in arb_binary()) {
        for se in [Structuring::Box3, Structuring::Cross3] {
            let e = erode(&img, se);
            let d = dilate(&img, se);
            for r in 0..img.height() {
                for c in 0..img.width() {
                    prop_assert!(e.get(r, c) <= img.get(r, c), "erode grew at ({r},{c})");
                    prop_assert!(img.get(r, c) <= d.get(r, c), "dilate shrank at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn opening_and_closing_are_idempotent(img in arb_binary()) {
        let se = Structuring::Box3;
        let o = open(&img, se);
        prop_assert_eq!(&open(&o, se), &o, "opening not idempotent");
        let cl = close(&img, se);
        prop_assert_eq!(&close(&cl, se), &cl, "closing not idempotent");
    }

    #[test]
    fn im2bw_is_monotone_in_level(img in arb_gray(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let at_lo = im2bw(&img, lo);
        let at_hi = im2bw(&img, hi);
        // raising the level can only turn foreground off
        for (p_lo, p_hi) in at_lo.as_slice().iter().zip(at_hi.as_slice()) {
            prop_assert!(p_hi <= p_lo);
        }
    }

    #[test]
    fn to_gray_bounded_by_channel_extremes(img in arb_rgb()) {
        let gray = img.to_gray();
        for r in 0..img.height() {
            for c in 0..img.width() {
                let [red, green, blue] = img.get(r, c);
                let lo = red.min(green).min(blue);
                let hi = red.max(green).max(blue);
                let y = gray.get(r, c);
                prop_assert!(y >= lo.saturating_sub(1) && y <= hi.saturating_add(1));
            }
        }
    }

    #[test]
    fn transpose_involution(img in arb_binary()) {
        prop_assert_eq!(&img.transposed().transposed(), &img);
    }

    #[test]
    fn inversion_involution_and_density(img in arb_binary()) {
        let inv = img.inverted();
        prop_assert_eq!(inv.count_foreground(), img.len() - img.count_foreground());
        prop_assert_eq!(&inv.inverted(), &img);
    }
}
