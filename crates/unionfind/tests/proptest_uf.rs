//! Property-based tests for the union-find suite, including concurrent
//! merger linearizability checks against arbitrary union scripts.

use proptest::prelude::*;

use ccl_unionfind::flatten::{flatten_generic, flatten_monotone};
use ccl_unionfind::par::{CasMerger, ConcurrentMerger, ConcurrentParents, LockedMerger};
use ccl_unionfind::testing::{canonical_partition, partition_of};
use ccl_unionfind::{EquivalenceStore, HeEquivalence, MinUF, RankUF, RemSP, SizeUF, UnionFind};

fn arb_script() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..64).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..96).prop_map(move |unions| (n, unions))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn remsp_monotone_invariant((n, unions) in arb_script()) {
        let mut uf = RemSP::with_capacity(n as usize);
        for _ in 0..n {
            uf.make_set();
        }
        for &(x, y) in &unions {
            uf.union(x, y);
            for (i, &p) in uf.parents().iter().enumerate() {
                prop_assert!(p as usize <= i, "p[{}] = {} after union({x},{y})", i, p);
            }
        }
    }

    #[test]
    fn count_sets_matches_partition((n, unions) in arb_script()) {
        let mut uf = RemSP::with_capacity(n as usize);
        for _ in 0..n {
            uf.make_set();
        }
        for &(x, y) in &unions {
            uf.union(x, y);
        }
        let partition = canonical_partition(&mut uf);
        let mut reps: Vec<u32> = partition.clone();
        reps.sort_unstable();
        reps.dedup();
        prop_assert_eq!(uf.count_sets(), reps.len());
    }

    #[test]
    fn flatten_generic_equals_monotone_on_rem_forests((n, unions) in arb_script()) {
        // skip element 0 (reserved background in the flatten contract)
        let unions: Vec<(u32, u32)> = unions
            .iter()
            .filter(|&&(x, y)| x != 0 && y != 0)
            .copied()
            .collect();
        let mut uf = RemSP::with_capacity(n as usize);
        for _ in 0..n {
            uf.make_set();
        }
        for &(x, y) in &unions {
            uf.union(x, y);
        }
        let mut a = uf.parents().to_vec();
        let mut b = uf.parents().to_vec();
        let ka = flatten_monotone(&mut a);
        let kb = flatten_generic(&mut b);
        prop_assert_eq!(ka, kb);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn all_variants_same_partition((n, unions) in arb_script()) {
        let reference = partition_of::<RemSP>(n, &unions);
        prop_assert_eq!(&partition_of::<RankUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<SizeUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<MinUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<HeEquivalence>(n, &unions), &reference);
    }

    #[test]
    fn concurrent_mergers_realize_requested_partition(
        (n, unions) in arb_script(),
        use_cas in proptest::bool::ANY,
        threads in 2usize..=6,
    ) {
        // labels 1..=n in the shared array (slot 0 = background)
        let parents = ConcurrentParents::new(n as usize + 1);
        {
            let mut store = parents.chunk_store();
            for l in 1..=n {
                store.new_label(l);
            }
        }
        let shifted: Vec<(u32, u32)> =
            unions.iter().map(|&(x, y)| (x + 1, y + 1)).collect();
        let locked = LockedMerger::with_stripes(8);
        let cas = CasMerger::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let parents = &parents;
                let shifted = &shifted;
                let locked = &locked;
                let cas = &cas;
                s.spawn(move || {
                    // round-robin split of the script across threads
                    for (i, &(x, y)) in shifted.iter().enumerate() {
                        if i % threads == t {
                            if use_cas {
                                cas.merge(parents, x, y);
                            } else {
                                locked.merge(parents, x, y);
                            }
                        }
                    }
                });
            }
        });
        parents.assert_monotone();
        // chase to roots and compare with the sequential partition
        let chase = |mut x: u32| {
            while parents.load(x) != x {
                x = parents.load(x);
            }
            x
        };
        let sequential = partition_of::<RemSP>(n, &unions);
        for x in 0..n {
            for y in 0..n {
                let same_par = chase(x + 1) == chase(y + 1);
                let same_seq = sequential[x as usize] == sequential[y as usize];
                prop_assert_eq!(
                    same_par, same_seq,
                    "pair ({}, {}) diverged (cas={})", x, y, use_cas
                );
            }
        }
    }

    #[test]
    fn flatten_ranges_equals_flatten_sparse(
        (n, unions) in arb_script(),
    ) {
        // register a dense prefix 1..=n, merge, then compare both flattens
        let parents = ConcurrentParents::new(n as usize + 8); // extra gap slots
        {
            let mut store = parents.chunk_store();
            for l in 1..=n {
                store.new_label(l);
            }
            for &(x, y) in &unions {
                if x != 0 && y != 0 {
                    store.merge(x, y);
                }
            }
        }
        let snap = parents.snapshot();
        let mut a = ConcurrentParents::from_snapshot(&snap);
        let mut b = ConcurrentParents::from_snapshot(&snap);
        let ka = a.flatten_sparse();
        let kb = b.flatten_ranges(&[(1, n + 1)]);
        prop_assert_eq!(ka, kb);
        for l in 0..=n {
            prop_assert_eq!(a.resolve(l), b.resolve(l), "label {}", l);
        }
        // and the parallel ranges variant
        let mut c = ConcurrentParents::from_snapshot(&snap);
        let half = n / 2 + 1;
        let kc = c.flatten_ranges_parallel(&[(1, half), (half, n + 1)]);
        prop_assert_eq!(kc, ka);
        for l in 0..=n {
            prop_assert_eq!(c.resolve(l), a.resolve(l), "label {}", l);
        }
    }
}
