//! He–Chao–Suzuki equivalence table (`rtable` / `next` / `tail`) — the
//! label-equivalence structure used by the RUN and ARUN baselines (the
//! paper's refs \[37\] and \[43\]).
//!
//! Instead of a tree, each equivalence class is kept as a linked list of
//! its member labels, with every member's representative maintained
//! eagerly:
//!
//! * `rtable[l]` — the representative (smallest label) of `l`'s set,
//! * `next[l]` — the next member in `l`'s set's list (`NIL` at the end),
//! * `tail[r]` — the last member of representative `r`'s list.
//!
//! A merge of two sets walks the *absorbed* list once to update its
//! members' `rtable` entries, then splices the lists in O(1). Finds are
//! O(1) table lookups — this is the structure's selling point: the second
//! image pass needs no root chasing at all. The cost moves into merges,
//! which RemSP does cheaper; Table II quantifies exactly that trade.

use crate::{EquivalenceStore, UnionFind};

/// Sentinel terminating the member lists.
const NIL: u32 = u32::MAX;

/// The three-array equivalence structure of He et al.
#[derive(Debug, Clone, Default)]
pub struct HeEquivalence {
    rtable: Vec<u32>,
    next: Vec<u32>,
    tail: Vec<u32>,
    flattened: bool,
}

impl HeEquivalence {
    /// Read-only view of the representative table (post-`flatten`: the
    /// final-label lookup table).
    pub fn rtable(&self) -> &[u32] {
        &self.rtable
    }

    /// Members of the set represented by `r`, in list order.
    /// Intended for tests; `r` must be a representative.
    pub fn members(&self, r: u32) -> Vec<u32> {
        debug_assert_eq!(self.rtable[r as usize], r, "not a representative");
        let mut out = Vec::new();
        let mut m = r;
        while m != NIL {
            out.push(m);
            m = self.next[m as usize];
        }
        out
    }
}

impl EquivalenceStore for HeEquivalence {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(label as usize, self.rtable.len(), "dense registration");
        self.rtable.push(label);
        self.next.push(NIL);
        self.tail.push(label);
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(!self.flattened, "merge after flatten");
        let rx = self.rtable[x as usize];
        let ry = self.rtable[y as usize];
        if rx == ry {
            return rx;
        }
        // Keep the smaller representative; absorb the larger's list.
        let (keep, gone) = if rx < ry { (rx, ry) } else { (ry, rx) };
        let mut m = gone;
        while m != NIL {
            self.rtable[m as usize] = keep;
            m = self.next[m as usize];
        }
        self.next[self.tail[keep as usize] as usize] = gone;
        self.tail[keep as usize] = self.tail[gone as usize];
        keep
    }
}

impl UnionFind for HeEquivalence {
    fn new() -> Self {
        Self::default()
    }

    fn with_capacity(cap: usize) -> Self {
        HeEquivalence {
            rtable: Vec::with_capacity(cap),
            next: Vec::with_capacity(cap),
            tail: Vec::with_capacity(cap),
            flattened: false,
        }
    }

    #[inline]
    fn make_set(&mut self) -> u32 {
        let id = self.rtable.len() as u32;
        self.new_label(id);
        id
    }

    /// O(1): representatives are maintained eagerly.
    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        self.rtable[x as usize]
    }

    #[inline]
    fn union(&mut self, x: u32, y: u32) -> u32 {
        self.merge(x, y)
    }

    fn len(&self) -> usize {
        self.rtable.len()
    }

    fn flatten(&mut self) -> u32 {
        assert!(!self.flattened, "flatten called twice");
        self.flattened = true;
        // rtable[l] ≤ l and rtable[r] = r for representatives: the
        // monotone FLATTEN applies to rtable directly.
        crate::flatten::flatten_monotone(&mut self.rtable)
    }

    #[inline]
    fn resolve(&self, x: u32) -> u32 {
        debug_assert!(self.flattened, "resolve before flatten");
        self.rtable[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_is_constant_time_lookup() {
        let mut eq = HeEquivalence::new();
        for _ in 0..5 {
            eq.make_set();
        }
        eq.merge(3, 4);
        // every member's rtable updated eagerly
        assert_eq!(eq.rtable()[4], 3);
        assert_eq!(eq.find(4), 3);
        eq.merge(1, 3);
        assert_eq!(eq.find(4), 1);
        assert_eq!(eq.find(3), 1);
    }

    #[test]
    fn member_lists_concatenate() {
        let mut eq = HeEquivalence::new();
        for _ in 0..6 {
            eq.make_set();
        }
        eq.merge(1, 2);
        eq.merge(4, 5);
        eq.merge(2, 5);
        assert_eq!(eq.members(1), vec![1, 2, 4, 5]);
        assert_eq!(eq.members(3), vec![3]);
    }

    #[test]
    fn representative_is_minimum() {
        let mut eq = HeEquivalence::new();
        for _ in 0..8 {
            eq.make_set();
        }
        eq.merge(7, 5);
        eq.merge(5, 6);
        assert_eq!(eq.find(7), 5);
        eq.merge(6, 2);
        assert_eq!(eq.find(7), 2);
        assert_eq!(eq.find(5), 2);
        assert_eq!(eq.find(6), 2);
    }

    #[test]
    fn merge_same_set_is_noop() {
        let mut eq = HeEquivalence::new();
        for _ in 0..4 {
            eq.make_set();
        }
        eq.merge(1, 2);
        let before = eq.members(1);
        eq.merge(2, 1);
        assert_eq!(eq.members(1), before);
    }

    #[test]
    fn flatten_matches_remsp() {
        use crate::seq::rem::RemSP;
        let unions = [(1u32, 4u32), (2, 5), (5, 7), (3, 3)];
        let mut he = HeEquivalence::new();
        let mut rem = RemSP::new();
        for _ in 0..9 {
            he.make_set();
            rem.make_set();
        }
        for &(x, y) in &unions {
            he.merge(x, y);
            rem.merge(x, y);
        }
        let kh = he.flatten();
        let kr = rem.flatten();
        assert_eq!(kh, kr);
        for x in 0..9 {
            assert_eq!(he.resolve(x), rem.resolve(x), "label {x}");
        }
    }

    #[test]
    fn count_sets_consistent() {
        let mut eq = HeEquivalence::new();
        for _ in 0..5 {
            eq.make_set();
        }
        assert_eq!(eq.count_sets(), 5);
        eq.merge(0, 1);
        eq.merge(2, 3);
        assert_eq!(eq.count_sets(), 3);
    }
}
