//! CAS-only parallel Rem's union-find.
//!
//! The lock-free counterpart to [`super::locked::LockedMerger`]: every
//! parent write — root links *and* interior splices — is a
//! `compare_exchange` validated against the value the walk observed. A
//! failed exchange simply re-reads and continues; no write ever lands on a
//! stale premise, so every slot's value sequence is strictly decreasing
//! and the monotone invariant is immediate. This is the "verification
//! technique" variant of Patwary–Refsnes–Manne (the paper's ref \[38\]),
//! which their experiments — and ours (ablation A3) — show trades slightly
//! more retries for no lock traffic.

use super::{ConcurrentMerger, ConcurrentParents};

/// Lock-free merger: all writes validated with `compare_exchange`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CasMerger;

impl CasMerger {
    /// Creates the (stateless) CAS merger.
    pub fn new() -> Self {
        CasMerger
    }
}

impl ConcurrentMerger for CasMerger {
    fn merge(&self, p: &ConcurrentParents, x: u32, y: u32) {
        let mut rootx = x;
        let mut rooty = y;
        loop {
            let px = p.load(rootx);
            let py = p.load(rooty);
            if px == py {
                return;
            }
            if px > py {
                if rootx == px {
                    // Root link: succeeds only if still a self-parent.
                    if p.compare_exchange(rootx, px, py) {
                        return;
                    }
                    // Interference: retry with fresh values.
                } else {
                    // Validated splice; advance only on success so the
                    // walk never skips past an unobserved update.
                    if p.compare_exchange(rootx, px, py) {
                        rootx = px;
                    }
                }
            } else if rooty == py {
                if p.compare_exchange(rooty, py, px) {
                    return;
                }
            } else if p.compare_exchange(rooty, py, px) {
                rooty = py;
            }
        }
    }

    fn name(&self) -> &'static str {
        "cas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceStore;

    fn fresh(n: u32) -> ConcurrentParents {
        let p = ConcurrentParents::new(n as usize + 1);
        let mut store = p.chunk_store();
        for l in 1..=n {
            store.new_label(l);
        }
        p
    }

    fn chase(p: &ConcurrentParents, mut x: u32) -> u32 {
        while p.load(x) != x {
            x = p.load(x);
        }
        x
    }

    #[test]
    fn sequential_semantics_match_rem() {
        let p = fresh(10);
        let m = CasMerger::new();
        m.merge(&p, 4, 9);
        m.merge(&p, 9, 2);
        m.merge(&p, 7, 8);
        p.assert_monotone();
        assert_eq!(chase(&p, 4), 2);
        assert_eq!(chase(&p, 9), 2);
        assert_eq!(chase(&p, 8), 7);
        assert_eq!(chase(&p, 5), 5);
    }

    #[test]
    fn concurrent_chain_merges_connect_everything() {
        let n = 4096u32;
        let p = fresh(n);
        let m = CasMerger::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let p = &p;
                let m = &m;
                s.spawn(move || {
                    let stride = t + 1;
                    let mut i = 1u32;
                    while i + stride <= n {
                        m.merge(p, i, i + stride);
                        i += 1;
                    }
                });
            }
        });
        p.assert_monotone();
        for l in 1..=n {
            assert_eq!(chase(&p, l), 1, "label {l}");
        }
    }

    #[test]
    fn concurrent_star_merges() {
        // All threads merge random nodes with node 1: heavy contention on
        // a single root.
        let n = 2048u32;
        let p = fresh(n);
        let m = CasMerger::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let p = &p;
                let m = &m;
                s.spawn(move || {
                    let mut l = t + 2;
                    while l <= n {
                        m.merge(p, 1, l);
                        l += 8;
                    }
                });
            }
        });
        for l in 1..=n {
            assert_eq!(chase(&p, l), 1, "label {l}");
        }
    }

    #[test]
    fn disjoint_classes_remain_disjoint() {
        let n = 3000u32;
        let p = fresh(n);
        let m = CasMerger::new();
        std::thread::scope(|s| {
            for class in 0..3u32 {
                let p = &p;
                let m = &m;
                s.spawn(move || {
                    let mut i = class + 1;
                    while i + 3 <= n {
                        m.merge(p, i, i + 3);
                        i += 3;
                    }
                });
            }
        });
        for l in 1..=n {
            assert_eq!(chase(&p, l), ((l - 1) % 3) + 1, "label {l}");
        }
    }
}
