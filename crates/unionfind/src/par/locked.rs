//! MERGER — the lock-guarded parallel Rem's algorithm, faithful to the
//! paper's Algorithm 8 (from Patwary, Refsnes & Manne, ref \[38\]).
//!
//! The walk is ordinary Rem with splicing; only the *root link* — the one
//! write that commits a union — takes a lock. The thread acquires the
//! lock for the candidate root, re-verifies that the node is still a root
//! (another thread may have linked it meanwhile), performs the link and
//! releases. On verification failure it resumes the walk from the fresh
//! parent values, exactly like lines 12–14 / 23–25 of Algorithm 8.
//! Interior splice writes stay unlocked, as in the original.
//!
//! One deliberate divergence from the pseudocode, documented here and in
//! DESIGN.md: Algorithm 8 line 9 re-reads `p[rooty]` inside the critical
//! section; we instead store the value `py` that the walk already
//! validated (`py < px = rootx`). Both choices produce a link inside the
//! merged set, but storing the validated value keeps the proof of the
//! monotone invariant (`p[x] ≤ x`) local: a fresh read of `p[rooty]`
//! could — after an unlocked-splice lost update — exceed `rootx`.
//!
//! Locks are striped: node *n* maps to lock `n & (stripes-1)`. The merger
//! holds at most one lock at a time, so striping cannot deadlock; it only
//! trades memory for (rare) false contention. With the default 2^16
//! stripes the lock table costs 64 KiB.

use parking_lot::Mutex;

use super::{ConcurrentMerger, ConcurrentParents};

/// Default number of lock stripes (must be a power of two).
pub const DEFAULT_STRIPES: usize = 1 << 16;

/// The paper's MERGER (Algorithm 8): parallel Rem's union-find with
/// per-node (striped) locks guarding root links.
pub struct LockedMerger {
    locks: Box<[Mutex<()>]>,
    mask: usize,
}

impl LockedMerger {
    /// Creates a merger with [`DEFAULT_STRIPES`] lock stripes.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// Creates a merger with a custom stripe count (rounded up to a power
    /// of two, minimum 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let locks = (0..stripes).map(|_| Mutex::new(())).collect();
        LockedMerger {
            locks,
            mask: stripes - 1,
        }
    }

    /// Number of lock stripes.
    pub fn stripes(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn lock_for(&self, node: u32) -> &Mutex<()> {
        &self.locks[node as usize & self.mask]
    }
}

impl Default for LockedMerger {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentMerger for LockedMerger {
    fn merge(&self, p: &ConcurrentParents, x: u32, y: u32) {
        let mut rootx = x;
        let mut rooty = y;
        loop {
            let px = p.load(rootx);
            let py = p.load(rooty);
            if px == py {
                return;
            }
            if px > py {
                if rootx == px {
                    // Candidate root: commit under the node's lock.
                    let guard = self.lock_for(rootx).lock();
                    let still_root = p.load(rootx) == rootx;
                    if still_root {
                        p.store(rootx, py);
                    }
                    drop(guard);
                    if still_root {
                        return;
                    }
                    // Lost the race: re-read and continue the walk.
                } else {
                    // Unlocked splice (Algorithm 8 line 14).
                    p.store(rootx, py);
                    rootx = px;
                }
            } else {
                if rooty == py {
                    let guard = self.lock_for(rooty).lock();
                    let still_root = p.load(rooty) == rooty;
                    if still_root {
                        p.store(rooty, px);
                    }
                    drop(guard);
                    if still_root {
                        return;
                    }
                } else {
                    p.store(rooty, px);
                    rooty = py;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "locked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceStore;

    #[test]
    fn stripes_round_to_power_of_two() {
        assert_eq!(LockedMerger::with_stripes(3).stripes(), 4);
        assert_eq!(LockedMerger::with_stripes(0).stripes(), 1);
        assert_eq!(LockedMerger::with_stripes(16).stripes(), 16);
    }

    #[test]
    fn single_threaded_merges_match_rem() {
        let p = ConcurrentParents::new(16);
        {
            let mut store = p.chunk_store();
            for l in 1..16 {
                store.new_label(l);
            }
        }
        let m = LockedMerger::with_stripes(4);
        m.merge(&p, 3, 7);
        m.merge(&p, 7, 11);
        m.merge(&p, 2, 11);
        p.assert_monotone();
        let chase = |mut x: u32| {
            while p.load(x) != x {
                x = p.load(x);
            }
            x
        };
        assert_eq!(chase(3), 2);
        assert_eq!(chase(7), 2);
        assert_eq!(chase(11), 2);
        assert_eq!(chase(5), 5);
    }

    #[test]
    fn concurrent_chain_merges_connect_everything() {
        // Many threads merge overlapping chains; the result must be one set.
        let n = 4096u32;
        let p = ConcurrentParents::new(n as usize + 1);
        {
            let mut store = p.chunk_store();
            for l in 1..=n {
                store.new_label(l);
            }
        }
        let m = LockedMerger::new();
        let threads = 8;
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = &p;
                let m = &m;
                s.spawn(move || {
                    // Each thread merges an interleaved chain: (i, i+t+1)
                    let stride = t as u32 + 1;
                    let mut i = 1u32;
                    while i + stride <= n {
                        m.merge(p, i, i + stride);
                        i += 1;
                    }
                });
            }
        });
        p.assert_monotone();
        let chase = |mut x: u32| {
            while p.load(x) != x {
                x = p.load(x);
            }
            x
        };
        for l in 1..=n {
            assert_eq!(chase(l), 1, "label {l} not merged to 1");
        }
    }

    #[test]
    fn concurrent_disjoint_merges_stay_disjoint() {
        // Threads merge within disjoint residue classes mod 4; classes
        // must remain separate sets.
        let n = 4000u32;
        let p = ConcurrentParents::new(n as usize + 1);
        {
            let mut store = p.chunk_store();
            for l in 1..=n {
                store.new_label(l);
            }
        }
        let m = LockedMerger::new();
        std::thread::scope(|s| {
            for class in 0..4u32 {
                let p = &p;
                let m = &m;
                s.spawn(move || {
                    let mut i = class + 1;
                    while i + 4 <= n {
                        m.merge(p, i, i + 4);
                        i += 4;
                    }
                });
            }
        });
        let chase = |mut x: u32| {
            while p.load(x) != x {
                x = p.load(x);
            }
            x
        };
        let roots: Vec<u32> = (1..=4).map(chase).collect();
        for l in 1..=n {
            assert_eq!(chase(l), roots[((l - 1) % 4) as usize], "label {l}");
        }
        // four distinct classes
        let mut sorted = roots.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
