//! Shared-memory union-find for PAREMSP (§IV of the paper).
//!
//! PAREMSP splits the provisional label space into per-thread ranges. The
//! lifecycle of the shared parent array is:
//!
//! 1. **Scan phase** — each thread registers and merges labels only within
//!    its own range, through a [`ChunkStore`] view (plain Rem's algorithm;
//!    relaxed atomic accesses, no contention by construction).
//! 2. **Boundary merge phase** — threads merge labels across ranges with a
//!    [`ConcurrentMerger`]: either [`locked::LockedMerger`] (the paper's
//!    Algorithm 8, per-node locks) or [`atomic::CasMerger`] (every write
//!    validated with `compare_exchange`).
//! 3. **Analysis phase** — after the merge threads join,
//!    [`ConcurrentParents::flatten_sparse`] renumbers the (gap-containing)
//!    label space into consecutive final labels.
//!
//! ## Memory-ordering notes
//!
//! All atomic accesses use `Relaxed` ordering. The algorithms only need
//! (a) word atomicity and (b) per-location coherence — exactly the
//! assumptions §IV states for the OpenMP original ("memory read/write
//! operations are atomic … issued concurrently … executed in some unknown
//! sequential order"). Rust's `Relaxed` guarantees both. Cross-thread
//! *phase* ordering comes from thread join (scan → merge → flatten), and
//! the mutex in [`locked::LockedMerger`] orders its critical sections.
//!
//! The Rem invariant `p[x] ≤ x` is preserved by every write either merger
//! issues: a slot is only ever overwritten with a value smaller than a
//! previously observed value of some slot on the walk, all bounded by the
//! slot index (see the proofs in Patwary–Refsnes–Manne, the paper's
//! ref \[38\]). The stress tests below and in `tests/` check the partitions
//! against sequential RemSP over many seeds and thread counts.

pub mod atomic;
pub mod locked;

use std::sync::atomic::{AtomicU32, Ordering};

use crate::flatten::UNUSED;
use crate::EquivalenceStore;

pub use atomic::CasMerger;
pub use locked::LockedMerger;

/// The shared provisional-label parent array.
///
/// Slot 0 is the reserved background label; unregistered slots hold
/// [`UNUSED`]. See the module docs for the three-phase lifecycle.
pub struct ConcurrentParents {
    slots: Vec<AtomicU32>,
}

impl ConcurrentParents {
    /// Allocates a label space of `capacity` slots (slot 0 = background,
    /// pre-registered; the rest unused until a scan registers them).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must cover the background slot");
        assert!(
            capacity < UNUSED as usize,
            "label space too large for u32 sentinel"
        );
        let mut slots = Vec::with_capacity(capacity);
        slots.push(AtomicU32::new(0));
        for _ in 1..capacity {
            slots.push(AtomicU32::new(UNUSED));
        }
        ConcurrentParents { slots }
    }

    /// Number of slots (registered or not).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current parent of `x`.
    #[inline]
    pub fn load(&self, x: u32) -> u32 {
        self.slots[x as usize].load(Ordering::Relaxed)
    }

    /// Unconditional parent write (used by the scan views and the locked
    /// merger; see module docs for why `Relaxed` suffices).
    #[inline]
    pub(crate) fn store(&self, x: u32, value: u32) {
        self.slots[x as usize].store(value, Ordering::Relaxed);
    }

    /// Validated parent write: succeeds only when the slot still holds
    /// `expected`.
    #[inline]
    pub(crate) fn compare_exchange(&self, x: u32, expected: u32, value: u32) -> bool {
        self.slots[x as usize]
            .compare_exchange(expected, value, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// A scan-phase view for one thread's label range.
    pub fn chunk_store(&self) -> ChunkStore<'_> {
        ChunkStore { parents: self }
    }

    /// Sparse FLATTEN over the shared array (Algorithm 3 extended with
    /// [`UNUSED`] gaps). Must run after all merge threads have joined —
    /// enforced by `&mut self`. Returns the number of components.
    pub fn flatten_sparse(&mut self) -> u32 {
        let len = self.slots.len();
        let mut k = 1u32;
        for i in 1..len {
            let pi = *self.slots[i].get_mut();
            if pi == UNUSED {
                continue;
            }
            debug_assert!((pi as usize) <= i, "monotone invariant: p[{i}] = {pi}");
            let new = if (pi as usize) < i {
                // parent already holds its final label
                self.slots[pi as usize].load(Ordering::Relaxed)
            } else {
                let v = k;
                k += 1;
                v
            };
            *self.slots[i].get_mut() = new;
        }
        k - 1
    }

    /// Post-[`Self::flatten_sparse`] lookup of the final label of `x`.
    /// Safe to call from many threads concurrently (read-only).
    #[inline]
    pub fn resolve(&self, x: u32) -> u32 {
        self.load(x)
    }

    /// FLATTEN over explicitly known *used* label ranges (ascending,
    /// disjoint, densely registered — exactly what PAREMSP's scan phase
    /// produces, since every chunk registers labels consecutively from
    /// its offset). Skips the unused gaps entirely, so the cost is
    /// O(labels actually created) instead of O(label-space capacity).
    /// Returns the number of components.
    ///
    /// # Panics
    /// Debug-panics if a slot inside a claimed range is unregistered.
    pub fn flatten_ranges(&mut self, used: &[(u32, u32)]) -> u32 {
        let mut k = 1u32;
        for &(start, end) in used {
            debug_assert!(start >= 1 && end as usize <= self.slots.len());
            for i in start..end {
                let pi = *self.slots[i as usize].get_mut();
                debug_assert_ne!(pi, UNUSED, "unregistered slot {i} inside used range");
                debug_assert!(pi <= i, "monotone invariant: p[{i}] = {pi}");
                let new = if pi < i {
                    // the parent is a used slot with a smaller index, so
                    // it was already rewritten to its final label
                    self.slots[pi as usize].load(Ordering::Relaxed)
                } else {
                    let v = k;
                    k += 1;
                    v
                };
                *self.slots[i as usize].get_mut() = new;
            }
        }
        k - 1
    }

    /// Parallel form of [`Self::flatten_ranges`] (same final labels):
    /// per-range root counts, prefix sums, then root assignment and
    /// non-root resolution as rayon pool tasks, one per range.
    pub fn flatten_ranges_parallel(&mut self, used: &[(u32, u32)]) -> u32 {
        if used.len() <= 1 {
            return self.flatten_ranges(used);
        }
        let mut counts = vec![0u32; used.len()];
        rayon::scope(|s| {
            for (slot, &(a, b)) in counts.iter_mut().zip(used) {
                let this = &*self;
                s.spawn(move |_| {
                    let mut n = 0u32;
                    for i in a..b {
                        if this.load(i) == i {
                            n += 1;
                        }
                    }
                    *slot = n;
                });
            }
        });
        let mut bases = Vec::with_capacity(used.len());
        let mut running = 1u32;
        for &c in &counts {
            bases.push(running);
            running += c;
        }
        let total = running - 1;
        let finals: Vec<AtomicU32> = (0..self.slots.len())
            .map(|_| AtomicU32::new(UNUSED))
            .collect();
        finals[0].store(0, Ordering::Relaxed);
        rayon::scope(|s| {
            for (&base, &(a, b)) in bases.iter().zip(used) {
                let this = &*self;
                let finals = &finals;
                s.spawn(move |_| {
                    let mut next = base;
                    for i in a..b {
                        if this.load(i) == i {
                            finals[i as usize].store(next, Ordering::Relaxed);
                            next += 1;
                        }
                    }
                });
            }
        });
        rayon::scope(|s| {
            for &(a, b) in used {
                let this = &*self;
                let finals = &finals;
                s.spawn(move |_| {
                    for i in a..b {
                        let p = this.load(i);
                        if p == i {
                            continue;
                        }
                        let mut root = p;
                        while this.load(root) != root {
                            root = this.load(root);
                        }
                        finals[i as usize].store(
                            finals[root as usize].load(Ordering::Relaxed),
                            Ordering::Relaxed,
                        );
                    }
                });
            }
        });
        // install, restricted to the used ranges (atomic stores are fine:
        // we hold &mut self, and every prior task has joined)
        rayon::scope(|s| {
            for &(a, b) in used {
                let this = &*self;
                let finals = &finals;
                s.spawn(move |_| {
                    for (i, f) in (a..b).zip(&finals[a as usize..b as usize]) {
                        this.store(i, f.load(Ordering::Relaxed));
                    }
                });
            }
        });
        total
    }

    /// Parallel sparse FLATTEN — an extension beyond the paper, which
    /// leaves the analysis phase sequential (Algorithm 7 line 22).
    /// Produces exactly the same final labels as
    /// [`Self::flatten_sparse`]:
    ///
    /// 1. count roots per slot range (parallel),
    /// 2. prefix-sum the counts (sequential, `threads` terms),
    /// 3. write each root's final label into a shadow array (parallel),
    /// 4. chase each non-root to its root and copy the root's final label
    ///    (parallel; the original parents stay readable throughout),
    /// 5. install the shadow array.
    ///
    /// Worth using only for very large label spaces; the
    /// `ablation_flatten` bench quantifies the crossover.
    pub fn flatten_sparse_parallel(&mut self, threads: usize) -> u32 {
        let len = self.slots.len();
        let threads = threads.max(1).min(len.max(1));
        if len <= 1 || threads == 1 {
            return self.flatten_sparse();
        }
        // slot ranges [start, end) over 1..len
        let per = (len - 1).div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|t| (1 + t * per, (1 + (t + 1) * per).min(len)))
            .filter(|(a, b)| a < b)
            .collect();
        // phase 1: root counts (rayon pool tasks, persistent workers)
        let mut counts = vec![0u32; ranges.len()];
        rayon::scope(|s| {
            for (slot, &(a, b)) in counts.iter_mut().zip(&ranges) {
                let this = &*self;
                s.spawn(move |_| {
                    let mut n = 0u32;
                    for i in a..b {
                        let p = this.load(i as u32);
                        if p != UNUSED && p as usize == i {
                            n += 1;
                        }
                    }
                    *slot = n;
                });
            }
        });
        // phase 2: prefix sums (first final label per range)
        let mut bases = Vec::with_capacity(ranges.len());
        let mut running = 1u32;
        for &c in &counts {
            bases.push(running);
            running += c;
        }
        let total = running - 1;
        // phases 3 & 4: write root finals, then resolve non-roots
        let finals: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(UNUSED)).collect();
        finals[0].store(0, Ordering::Relaxed);
        rayon::scope(|s| {
            for (&base, &(a, b)) in bases.iter().zip(&ranges) {
                let this = &*self;
                let finals = &finals;
                s.spawn(move |_| {
                    let mut next = base;
                    for (i, f) in (a..b).zip(&finals[a..b]) {
                        let p = this.load(i as u32);
                        if p != UNUSED && p as usize == i {
                            f.store(next, Ordering::Relaxed);
                            next += 1;
                        }
                    }
                });
            }
        });
        rayon::scope(|s| {
            for &(a, b) in &ranges {
                let this = &*self;
                let finals = &finals;
                s.spawn(move |_| {
                    for i in a..b {
                        let p = this.load(i as u32);
                        if p == UNUSED || p as usize == i {
                            continue;
                        }
                        let mut root = p;
                        while this.load(root) != root {
                            root = this.load(root);
                        }
                        finals[i].store(
                            finals[root as usize].load(Ordering::Relaxed),
                            Ordering::Relaxed,
                        );
                    }
                });
            }
        });
        // phase 5: install
        for (slot, f) in self.slots.iter_mut().zip(&finals) {
            *slot.get_mut() = f.load(Ordering::Relaxed);
        }
        total
    }

    /// Copies the current parent array out (testing / benchmarking aid:
    /// lets a benchmark restore pre-flatten state between iterations).
    pub fn snapshot(&self) -> Vec<u32> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Rebuilds a parent array from a [`Self::snapshot`].
    ///
    /// # Panics
    /// Panics on an empty snapshot or one whose background slot moved.
    pub fn from_snapshot(parents: &[u32]) -> Self {
        assert!(!parents.is_empty(), "snapshot must cover the background");
        assert_eq!(parents[0], 0, "background slot must stay 0");
        ConcurrentParents {
            slots: parents.iter().map(|&p| AtomicU32::new(p)).collect(),
        }
    }

    /// Test/diagnostic helper: asserts the Rem monotone invariant over all
    /// registered slots.
    pub fn assert_monotone(&self) {
        for i in 0..self.slots.len() {
            let p = self.load(i as u32);
            if p != UNUSED {
                assert!(p as usize <= i, "p[{i}] = {p} violates monotonicity");
            }
        }
    }
}

impl std::fmt::Debug for ConcurrentParents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConcurrentParents(capacity={})", self.slots.len())
    }
}

/// Scan-phase view: lets one thread run plain (sequential) Rem's algorithm
/// over its own label range of the shared array. Implements
/// [`EquivalenceStore`] so the generic scan functions in `ccl-core` accept
/// it interchangeably with the sequential structures.
pub struct ChunkStore<'a> {
    parents: &'a ConcurrentParents,
}

impl EquivalenceStore for ChunkStore<'_> {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(
            self.parents.load(label),
            UNUSED,
            "label {label} registered twice"
        );
        self.parents.store(label, label);
    }

    /// Sequential Rem merge (Algorithm 2) through relaxed atomics. Safe
    /// because scan-phase merges never cross thread label ranges.
    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        let p = self.parents;
        let mut rootx = x;
        let mut rooty = y;
        loop {
            let px = p.load(rootx);
            let py = p.load(rooty);
            if px == py {
                return px;
            }
            if px > py {
                if rootx == px {
                    p.store(rootx, py);
                    return py;
                }
                p.store(rootx, py);
                rootx = px;
            } else {
                if rooty == py {
                    p.store(rooty, px);
                    return px;
                }
                p.store(rooty, px);
                rooty = py;
            }
        }
    }
}

/// Common interface of the boundary-merge implementations.
pub trait ConcurrentMerger: Sync {
    /// Merges the sets of `x` and `y` in the shared parent array. May be
    /// called concurrently from many threads with arbitrary arguments.
    fn merge(&self, parents: &ConcurrentParents, x: u32, y: u32);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_initializes_background_and_sentinels() {
        let p = ConcurrentParents::new(4);
        assert_eq!(p.load(0), 0);
        assert_eq!(p.load(1), UNUSED);
        assert_eq!(p.load(3), UNUSED);
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn chunk_store_runs_sequential_rem() {
        let p = ConcurrentParents::new(8);
        let mut store = p.chunk_store();
        for l in 1..8 {
            store.new_label(l);
        }
        store.merge(3, 5);
        store.merge(5, 1);
        assert_eq!(p.load(5), 1);
        p.assert_monotone();
        let chase = |mut x: u32| {
            while p.load(x) != x {
                x = p.load(x);
            }
            x
        };
        assert_eq!(chase(3), 1);
        assert_eq!(chase(5), 1);
        assert_eq!(chase(2), 2);
    }

    #[test]
    fn flatten_sparse_skips_gaps() {
        let mut p = ConcurrentParents::new(8);
        {
            let mut store = p.chunk_store();
            store.new_label(2);
            store.new_label(3);
            store.new_label(6);
            store.merge(2, 6);
        }
        let k = p.flatten_sparse();
        assert_eq!(k, 2);
        assert_eq!(p.resolve(0), 0);
        assert_eq!(p.resolve(2), 1);
        assert_eq!(p.resolve(3), 2);
        assert_eq!(p.resolve(6), 1);
        assert_eq!(p.load(1), UNUSED);
    }

    #[test]
    fn flatten_of_fresh_space_is_zero_components() {
        let mut p = ConcurrentParents::new(16);
        assert_eq!(p.flatten_sparse(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ConcurrentParents::new(0);
    }

    #[test]
    fn parallel_flatten_matches_sequential() {
        // pseudo-random forests over a sparse label space
        let mut state = 77u64;
        let mut rnd = move |n: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % n
        };
        for trial in 0..10 {
            let cap = 64 + trial * 37;
            let p = ConcurrentParents::new(cap);
            {
                let mut store = p.chunk_store();
                for l in 1..cap as u32 {
                    if rnd(100) < 70 {
                        store.new_label(l);
                    }
                }
                for _ in 0..cap {
                    let x = 1 + rnd(cap as u64 - 1) as u32;
                    let y = 1 + rnd(cap as u64 - 1) as u32;
                    if p.load(x) != crate::flatten::UNUSED && p.load(y) != crate::flatten::UNUSED {
                        store.merge(x, y);
                    }
                }
            }
            let snapshot = p.snapshot();
            let mut seq = ConcurrentParents::from_snapshot(&snapshot);
            let mut par = ConcurrentParents::from_snapshot(&snapshot);
            let k_seq = seq.flatten_sparse();
            for threads in [2, 3, 8] {
                let mut par2 = ConcurrentParents::from_snapshot(&snapshot);
                let k_par = par2.flatten_sparse_parallel(threads);
                assert_eq!(k_par, k_seq, "trial {trial}, {threads} threads");
                assert_eq!(
                    par2.snapshot(),
                    seq.snapshot(),
                    "trial {trial}, {threads} threads"
                );
            }
            let k_par = par.flatten_sparse_parallel(4);
            assert_eq!(k_par, k_seq, "trial {trial}");
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let p = ConcurrentParents::new(5);
        {
            let mut store = p.chunk_store();
            store.new_label(2);
            store.new_label(4);
            store.merge(2, 4);
        }
        let snap = p.snapshot();
        let q = ConcurrentParents::from_snapshot(&snap);
        assert_eq!(q.snapshot(), snap);
    }

    #[test]
    fn parallel_flatten_empty_space() {
        let mut p = ConcurrentParents::new(100);
        assert_eq!(p.flatten_sparse_parallel(8), 0);
    }
}
