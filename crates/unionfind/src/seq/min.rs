//! Link-by-minimum-root union-find — the classic CCL linking rule (used,
//! e.g., in Wu et al.'s reference implementation before they adopted rank
//! linking): the smaller root always wins, so a set's representative is
//! its minimum member and the monotone FLATTEN (Algorithm 3) applies.
//!
//! Slower asymptotically than rank/size linking (trees can degenerate),
//! but CCL merge patterns are extremely local, which keeps the trees
//! shallow in practice; the ablation bench quantifies this.

use crate::flatten::flatten_monotone;
use crate::{EquivalenceStore, UnionFind};

/// Union-find linking by minimum root with full path compression.
#[derive(Debug, Clone, Default)]
pub struct MinUF {
    p: Vec<u32>,
    flattened: bool,
}

impl MinUF {
    /// Read-only view of the parent array.
    pub fn parents(&self) -> &[u32] {
        &self.p
    }
}

impl EquivalenceStore for MinUF {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(label as usize, self.p.len(), "dense registration");
        self.p.push(label);
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        self.union(x, y)
    }
}

impl UnionFind for MinUF {
    fn new() -> Self {
        Self::default()
    }

    fn with_capacity(cap: usize) -> Self {
        MinUF {
            p: Vec::with_capacity(cap),
            flattened: false,
        }
    }

    #[inline]
    fn make_set(&mut self) -> u32 {
        let id = self.p.len() as u32;
        self.p.push(id);
        id
    }

    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x as usize;
        while self.p[root] as usize != root {
            root = self.p[root] as usize;
        }
        let mut cur = x as usize;
        while self.p[cur] as usize != root {
            let next = self.p[cur] as usize;
            self.p[cur] = root as u32;
            cur = next;
        }
        root as u32
    }

    #[inline]
    fn union(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(!self.flattened, "union after flatten");
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return rx;
        }
        let (winner, loser) = if rx < ry { (rx, ry) } else { (ry, rx) };
        self.p[loser as usize] = winner;
        winner
    }

    fn len(&self) -> usize {
        self.p.len()
    }

    fn flatten(&mut self) -> u32 {
        assert!(!self.flattened, "flatten called twice");
        self.flattened = true;
        flatten_monotone(&mut self.p)
    }

    #[inline]
    fn resolve(&self, x: u32) -> u32 {
        debug_assert!(self.flattened, "resolve before flatten");
        self.p[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_always_wins() {
        let mut uf = MinUF::new();
        for _ in 0..6 {
            uf.make_set();
        }
        uf.union(5, 3);
        assert_eq!(uf.find(5), 3);
        uf.union(3, 1);
        assert_eq!(uf.find(5), 1);
        uf.union(2, 5);
        assert_eq!(uf.find(2), 1);
    }

    #[test]
    fn monotone_invariant_holds() {
        let mut uf = MinUF::new();
        for _ in 0..20 {
            uf.make_set();
        }
        let mut s = 7u64;
        for _ in 0..100 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let x = ((s >> 32) % 20) as u32;
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let y = ((s >> 32) % 20) as u32;
            uf.union(x, y);
        }
        for (i, &p) in uf.parents().iter().enumerate() {
            assert!(p as usize <= i);
        }
    }

    #[test]
    fn flatten_consecutive() {
        let mut uf = MinUF::new();
        for _ in 0..5 {
            uf.make_set();
        }
        uf.union(2, 4);
        let k = uf.flatten();
        assert_eq!(k, 3); // {1}, {2,4}, {3}
        assert_eq!(uf.resolve(1), 1);
        assert_eq!(uf.resolve(2), 2);
        assert_eq!(uf.resolve(3), 3);
        assert_eq!(uf.resolve(4), 2);
    }
}
