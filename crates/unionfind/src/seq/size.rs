//! Link-by-size union-find with full path compression — the third classic
//! linking rule in the Patwary–Blair–Manne comparison; included for the
//! union-find ablation bench (A1 in DESIGN.md).

use crate::flatten::flatten_generic;
use crate::{EquivalenceStore, UnionFind};

/// Array-based union-find with union-by-size and full path compression.
#[derive(Debug, Clone, Default)]
pub struct SizeUF {
    p: Vec<u32>,
    size: Vec<u32>,
    flattened: bool,
}

impl SizeUF {
    /// Read-only view of the parent array.
    pub fn parents(&self) -> &[u32] {
        &self.p
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x) as usize;
        self.size[r]
    }
}

impl EquivalenceStore for SizeUF {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(label as usize, self.p.len(), "dense registration");
        self.p.push(label);
        self.size.push(1);
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        self.union(x, y)
    }
}

impl UnionFind for SizeUF {
    fn new() -> Self {
        Self::default()
    }

    fn with_capacity(cap: usize) -> Self {
        SizeUF {
            p: Vec::with_capacity(cap),
            size: Vec::with_capacity(cap),
            flattened: false,
        }
    }

    #[inline]
    fn make_set(&mut self) -> u32 {
        let id = self.p.len() as u32;
        self.p.push(id);
        self.size.push(1);
        id
    }

    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x as usize;
        while self.p[root] as usize != root {
            root = self.p[root] as usize;
        }
        let mut cur = x as usize;
        while self.p[cur] as usize != root {
            let next = self.p[cur] as usize;
            self.p[cur] = root as u32;
            cur = next;
        }
        root as u32
    }

    #[inline]
    fn union(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(!self.flattened, "union after flatten");
        let rx = self.find(x) as usize;
        let ry = self.find(y) as usize;
        if rx == ry {
            return rx as u32;
        }
        let (winner, loser) = if self.size[rx] >= self.size[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.p[loser] = winner as u32;
        self.size[winner] += self.size[loser];
        winner as u32
    }

    fn len(&self) -> usize {
        self.p.len()
    }

    fn flatten(&mut self) -> u32 {
        assert!(!self.flattened, "flatten called twice");
        self.flattened = true;
        flatten_generic(&mut self.p)
    }

    #[inline]
    fn resolve(&self, x: u32) -> u32 {
        debug_assert!(self.flattened, "resolve before flatten");
        self.p[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_accumulate() {
        let mut uf = SizeUF::new();
        for _ in 0..6 {
            uf.make_set();
        }
        uf.union(1, 2);
        assert_eq!(uf.set_size(1), 2);
        uf.union(3, 4);
        uf.union(1, 3);
        assert_eq!(uf.set_size(4), 4);
        assert_eq!(uf.set_size(5), 1);
    }

    #[test]
    fn smaller_tree_links_under_larger() {
        let mut uf = SizeUF::new();
        for _ in 0..5 {
            uf.make_set();
        }
        uf.union(1, 2);
        uf.union(1, 3); // {1,2,3} rooted at 1
        uf.union(4, 1); // singleton 4 must join under 1's root
        let root = uf.find(1);
        assert_eq!(uf.find(4), root);
        assert_eq!(uf.p[4], root);
    }

    #[test]
    fn flatten_respects_minimum_ordering() {
        let mut uf = SizeUF::new();
        for _ in 0..5 {
            uf.make_set();
        }
        // Make {3,4} first so it is bigger when merged with {2}: root
        // stays 3 even though the eventual minimum of the set is 2.
        uf.union(3, 4);
        uf.union(3, 2);
        let k = uf.flatten();
        assert_eq!(k, 2); // {1}, {2,3,4}
        assert_eq!(uf.resolve(1), 1);
        assert_eq!(uf.resolve(2), 2);
        assert_eq!(uf.resolve(3), 2);
        assert_eq!(uf.resolve(4), 2);
    }

    #[test]
    fn count_sets_tracks_unions() {
        let mut uf = SizeUF::new();
        for _ in 0..4 {
            uf.make_set();
        }
        assert_eq!(uf.count_sets(), 4);
        uf.union(0, 1);
        assert_eq!(uf.count_sets(), 3);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.count_sets(), 1);
    }
}
