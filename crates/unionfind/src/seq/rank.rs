//! Link-by-rank union-find — the structure inside CCLLRPC (Wu, Otoo &
//! Suzuki, the paper's ref \[36\]): array-based, union by rank, with path
//! compression. Gupta et al. cite the Patwary–Blair–Manne finding that
//! this is *not* the best choice, which motivates RemSP; we implement it
//! faithfully as the baseline, plus the path-halving / path-splitting
//! compression alternatives for the ablation bench (A1 in DESIGN.md).
//!
//! Rank trees may be rooted at a non-minimal element, so the analysis
//! phase uses [`crate::flatten::flatten_generic`] (the paper's Algorithm 3
//! requires the monotone invariant that rank linking does not maintain).

use crate::flatten::flatten_generic;
use crate::{EquivalenceStore, UnionFind};

/// Path-compression policy applied during [`UnionFind::find`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Two-pass full path compression (the CCLLRPC choice).
    #[default]
    Full,
    /// Path halving: every other node on the path points to its
    /// grandparent (one pass).
    Halving,
    /// Path splitting: every node on the path points to its grandparent
    /// (one pass).
    Splitting,
    /// No compression (for ablation comparisons only).
    None,
}

/// Array-based union-find with union-by-rank.
#[derive(Debug, Clone)]
pub struct RankUF {
    p: Vec<u32>,
    rank: Vec<u8>,
    compression: Compression,
    flattened: bool,
}

impl Default for RankUF {
    fn default() -> Self {
        Self::new_with(Compression::Full)
    }
}

impl RankUF {
    /// Creates an empty structure with the given compression policy.
    pub fn new_with(compression: Compression) -> Self {
        RankUF {
            p: Vec::new(),
            rank: Vec::new(),
            compression,
            flattened: false,
        }
    }

    /// The active compression policy.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// Read-only view of the parent array.
    pub fn parents(&self) -> &[u32] {
        &self.p
    }

    #[inline]
    fn find_root(&self, mut x: usize) -> usize {
        while self.p[x] as usize != x {
            x = self.p[x] as usize;
        }
        x
    }
}

impl EquivalenceStore for RankUF {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(label as usize, self.p.len(), "dense registration");
        self.p.push(label);
        self.rank.push(0);
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        self.union(x, y)
    }
}

impl UnionFind for RankUF {
    fn new() -> Self {
        Self::default()
    }

    fn with_capacity(cap: usize) -> Self {
        RankUF {
            p: Vec::with_capacity(cap),
            rank: Vec::with_capacity(cap),
            compression: Compression::Full,
            flattened: false,
        }
    }

    #[inline]
    fn make_set(&mut self) -> u32 {
        let id = self.p.len() as u32;
        self.p.push(id);
        self.rank.push(0);
        id
    }

    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        let mut x = x as usize;
        match self.compression {
            Compression::Full => {
                let root = self.find_root(x);
                while self.p[x] as usize != root {
                    let next = self.p[x] as usize;
                    self.p[x] = root as u32;
                    x = next;
                }
                root as u32
            }
            Compression::Halving => {
                while self.p[x] as usize != x {
                    let parent = self.p[x] as usize;
                    self.p[x] = self.p[parent];
                    x = self.p[x] as usize;
                }
                x as u32
            }
            Compression::Splitting => {
                while self.p[x] as usize != x {
                    let parent = self.p[x] as usize;
                    self.p[x] = self.p[parent];
                    x = parent;
                }
                x as u32
            }
            Compression::None => self.find_root(x) as u32,
        }
    }

    #[inline]
    fn union(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(!self.flattened, "union after flatten");
        let rx = self.find(x) as usize;
        let ry = self.find(y) as usize;
        if rx == ry {
            return rx as u32;
        }
        let (winner, loser) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.p[loser] = winner as u32;
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        winner as u32
    }

    fn len(&self) -> usize {
        self.p.len()
    }

    fn flatten(&mut self) -> u32 {
        assert!(!self.flattened, "flatten called twice");
        self.flattened = true;
        flatten_generic(&mut self.p)
    }

    #[inline]
    fn resolve(&self, x: u32) -> u32 {
        debug_assert!(self.flattened, "resolve before flatten");
        self.p[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_policies() -> [Compression; 4] {
        [
            Compression::Full,
            Compression::Halving,
            Compression::Splitting,
            Compression::None,
        ]
    }

    #[test]
    fn union_by_rank_keeps_trees_shallow() {
        let mut uf = RankUF::new();
        for _ in 0..8 {
            uf.make_set();
        }
        // balanced merges: rank should never exceed log2(n)
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(4, 5);
        uf.union(6, 7);
        uf.union(0, 2);
        uf.union(4, 6);
        uf.union(0, 4);
        assert_eq!(uf.count_sets(), 1);
        assert!(uf.rank.iter().all(|&r| r <= 3));
    }

    #[test]
    fn all_compression_policies_agree() {
        for comp in all_policies() {
            let mut uf = RankUF::new_with(comp);
            for _ in 0..16 {
                uf.make_set();
            }
            for i in (1..16).step_by(2) {
                uf.union(i - 1, i);
            }
            uf.union(0, 2);
            uf.union(4, 6);
            uf.union(0, 4);
            assert!(uf.same(0, 7), "policy {comp:?}");
            assert!(!uf.same(0, 8), "policy {comp:?}");
            // sets: {0..=7}, {8,9}, {10,11}, {12,13}, {14,15}
            assert_eq!(uf.count_sets(), 5, "policy {comp:?}");
        }
    }

    #[test]
    fn full_compression_flattens_paths() {
        let mut uf = RankUF::new_with(Compression::Full);
        for _ in 0..5 {
            uf.make_set();
        }
        uf.union(0, 1);
        uf.union(0, 2);
        uf.union(0, 3);
        uf.union(0, 4);
        let root = uf.find(4);
        for i in 0..5 {
            assert_eq!(uf.find(i), root);
            assert_eq!(uf.p[i as usize], root);
        }
    }

    #[test]
    fn halving_shortens_path() {
        let mut uf = RankUF::new_with(Compression::Halving);
        for _ in 0..4 {
            uf.make_set();
        }
        // force a chain 3 -> 2 -> 1 -> 0 by hand-crafted unions is not
        // possible with rank linking; emulate by direct parent writes via
        // union on fresh singletons of equal rank.
        uf.union(0, 1); // p[1] = 0, rank[0]=1
        uf.union(2, 3); // p[3] = 2, rank[2]=1
        uf.union(1, 3); // roots 0,2 equal rank -> p[2] = 0 (or p[0]=2)
        let r = uf.find(3);
        assert_eq!(r, uf.find(0));
        assert_eq!(uf.count_sets(), 1);
    }

    #[test]
    fn flatten_orders_by_smallest_member() {
        let mut uf = RankUF::new();
        for _ in 0..6 {
            uf.make_set();
        }
        // Arrange a set whose rank-root is NOT its minimum: union(5, 4)
        // then union(4, 1): root stays 5 (rank 1) even though min is 1.
        uf.union(5, 4);
        uf.union(4, 1);
        uf.union(2, 3);
        let k = uf.flatten();
        assert_eq!(k, 2);
        // {1,4,5} has the smaller minimum -> final label 1; {2,3} -> 2.
        assert_eq!(uf.resolve(1), 1);
        assert_eq!(uf.resolve(4), 1);
        assert_eq!(uf.resolve(5), 1);
        assert_eq!(uf.resolve(2), 2);
        assert_eq!(uf.resolve(3), 2);
        assert_eq!(uf.resolve(0), 0);
    }

    #[test]
    fn merge_is_union() {
        let mut uf = RankUF::new();
        for i in 0..3u32 {
            uf.new_label(i);
        }
        uf.merge(1, 2);
        assert!(uf.same(1, 2));
    }
}
