//! RemSP — Rem's union-find with the splicing compression (the paper's
//! Algorithm 2; originally Dijkstra's presentation of Rem's algorithm).
//!
//! Rem's algorithm links *by index*: parents always have indices ≤ their
//! children, so a set's root is its minimum member — exactly the "smallest
//! equivalent label" CCL wants, which is why FLATTEN (Algorithm 3) can
//! renumber it in one monotone pass. The union walk interleaves an
//! *immediate parent check* (stop as soon as the two walks see the same
//! parent) with *splicing*: while climbing from `rootx`, each visited node
//! is re-pointed at the other walk's (smaller) parent before moving on,
//! compressing the tree as a side effect of the union itself. No separate
//! find pass, no rank/size array — one word of state per element.

use crate::flatten::flatten_monotone;
use crate::{EquivalenceStore, UnionFind};

/// Rem's union-find with splicing. See the module docs.
///
/// ```
/// use ccl_unionfind::{RemSP, UnionFind};
///
/// let mut uf = RemSP::new();
/// for _ in 0..5 {
///     uf.make_set();
/// }
/// uf.union(3, 4);
/// uf.union(1, 3);
/// assert_eq!(uf.find(4), 1); // the root is the set's minimum element
/// assert_eq!(uf.count_sets(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemSP {
    p: Vec<u32>,
    flattened: bool,
}

impl RemSP {
    /// Read-only view of the parent array (post-`flatten`: the final-label
    /// lookup table).
    pub fn parents(&self) -> &[u32] {
        &self.p
    }

    /// The paper's Algorithm 2, operating on a raw parent slice. Exposed
    /// so the scan phases and the parallel chunk views can share one
    /// implementation.
    #[inline]
    pub fn merge_in(p: &mut [u32], x: u32, y: u32) -> u32 {
        let mut rootx = x as usize;
        let mut rooty = y as usize;
        while p[rootx] != p[rooty] {
            if p[rootx] > p[rooty] {
                if rootx == p[rootx] as usize {
                    // rootx is a root: link it under rooty's parent.
                    p[rootx] = p[rooty];
                    return p[rootx];
                }
                // Splicing: re-point rootx at the smaller parent, then
                // continue the walk from rootx's old parent.
                let z = p[rootx] as usize;
                p[rootx] = p[rooty];
                rootx = z;
            } else {
                if rooty == p[rooty] as usize {
                    p[rooty] = p[rootx];
                    return p[rootx];
                }
                let z = p[rooty] as usize;
                p[rooty] = p[rootx];
                rooty = z;
            }
        }
        p[rootx]
    }
}

impl EquivalenceStore for RemSP {
    #[inline]
    fn new_label(&mut self, label: u32) {
        debug_assert_eq!(label as usize, self.p.len(), "dense registration");
        self.p.push(label);
    }

    #[inline]
    fn merge(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(!self.flattened, "merge after flatten");
        Self::merge_in(&mut self.p, x, y)
    }
}

impl UnionFind for RemSP {
    fn new() -> Self {
        Self::default()
    }

    fn with_capacity(cap: usize) -> Self {
        RemSP {
            p: Vec::with_capacity(cap),
            flattened: false,
        }
    }

    #[inline]
    fn make_set(&mut self) -> u32 {
        let id = self.p.len() as u32;
        self.p.push(id);
        id
    }

    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        // Rem's trees are shallow thanks to splicing; a plain chase with
        // path halving keeps find cheap without an extra pass.
        let mut x = x as usize;
        while self.p[x] as usize != x {
            let parent = self.p[x] as usize;
            self.p[x] = self.p[parent];
            x = self.p[x] as usize;
        }
        x as u32
    }

    #[inline]
    fn union(&mut self, x: u32, y: u32) -> u32 {
        self.merge(x, y)
    }

    fn len(&self) -> usize {
        self.p.len()
    }

    fn flatten(&mut self) -> u32 {
        assert!(!self.flattened, "flatten called twice");
        self.flattened = true;
        flatten_monotone(&mut self.p)
    }

    #[inline]
    fn resolve(&self, x: u32) -> u32 {
        debug_assert!(self.flattened, "resolve before flatten");
        self.p[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = RemSP::new();
        for i in 0..5 {
            assert_eq!(uf.make_set(), i);
        }
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert_eq!(uf.count_sets(), 5);
    }

    #[test]
    fn union_links_to_smaller_index() {
        let mut uf = RemSP::new();
        for _ in 0..4 {
            uf.make_set();
        }
        uf.union(2, 3);
        assert_eq!(uf.find(3), 2);
        uf.union(1, 3);
        assert_eq!(uf.find(2), 1);
        assert_eq!(uf.find(3), 1);
        // root of a set is always its minimum member
        assert!(uf.same(1, 2) && uf.same(2, 3));
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn merge_returns_common_representative() {
        let mut uf = RemSP::new();
        for _ in 0..6 {
            uf.make_set();
        }
        let r = uf.merge(4, 5);
        assert_eq!(r, 4);
        let r = uf.merge(5, 2);
        assert!(uf.same(2, 4));
        assert!(r == 2 || r == 4); // a common parent along the walk
    }

    #[test]
    fn monotone_invariant_always_holds() {
        let mut uf = RemSP::new();
        for _ in 0..32 {
            uf.make_set();
        }
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 33) % 32) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = ((state >> 33) % 32) as u32;
            uf.union(x, y);
            for (i, &p) in uf.parents().iter().enumerate() {
                assert!(p as usize <= i, "p[{i}] = {p}");
            }
        }
    }

    #[test]
    fn flatten_produces_consecutive_labels() {
        let mut uf = RemSP::new();
        for _ in 0..7 {
            uf.make_set();
        }
        // sets: {1,2}, {3}, {4,5,6}; 0 is background
        uf.union(1, 2);
        uf.union(4, 5);
        uf.union(5, 6);
        let k = uf.flatten();
        assert_eq!(k, 3);
        assert_eq!(uf.resolve(0), 0);
        assert_eq!(uf.resolve(1), 1);
        assert_eq!(uf.resolve(2), 1);
        assert_eq!(uf.resolve(3), 2);
        assert_eq!(uf.resolve(4), 3);
        assert_eq!(uf.resolve(5), 3);
        assert_eq!(uf.resolve(6), 3);
    }

    #[test]
    #[should_panic(expected = "flatten called twice")]
    fn flatten_twice_panics() {
        let mut uf = RemSP::new();
        uf.make_set();
        uf.flatten();
        uf.flatten();
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = RemSP::new();
        for _ in 0..3 {
            uf.make_set();
        }
        uf.union(2, 2);
        assert_eq!(uf.count_sets(), 3);
    }

    #[test]
    fn equivalence_store_new_label_matches_make_set() {
        let mut a = RemSP::new();
        let mut b = RemSP::new();
        for i in 0..4u32 {
            a.make_set();
            b.new_label(i);
        }
        assert_eq!(a.parents(), b.parents());
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = RemSP::new();
        let n = 1000;
        for _ in 0..n {
            uf.make_set();
        }
        for i in (1..n).rev() {
            uf.union(i - 1, i);
        }
        for i in 0..n {
            assert_eq!(uf.find(i), 0);
        }
        assert_eq!(uf.count_sets(), 1);
    }
}
