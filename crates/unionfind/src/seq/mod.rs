//! Sequential union-find variants.
//!
//! All variants share the element model described at the crate root and
//! implement both [`crate::UnionFind`] and [`crate::EquivalenceStore`].
//! The variants differ along the two axes studied by Patwary, Blair &
//! Manne (the paper's ref \[40\]):
//!
//! | Variant | Linking rule | Compression |
//! |---------|--------------|-------------|
//! | [`rem::RemSP`] | by index (smaller index wins) | splicing, interleaved with the union walk |
//! | [`rank::RankUF`] | by rank | full path compression / halving / splitting |
//! | [`size::SizeUF`] | by size | full path compression |
//! | [`min::MinUF`] | by minimum root | optional full path compression |

pub mod min;
pub mod rank;
pub mod rem;
pub mod size;

#[cfg(test)]
mod cross_tests {
    //! Every sequential variant must produce identical partitions.

    use crate::testing::partition_of;
    use crate::{Compression, MinUF, RankUF, RemSP, SizeUF, UnionFind};

    fn scripted_cases() -> Vec<(u32, Vec<(u32, u32)>)> {
        vec![
            (1, vec![]),
            (5, vec![]),
            (5, vec![(1, 2), (3, 4)]),
            (6, vec![(1, 2), (2, 3), (4, 5), (5, 1)]),
            (8, vec![(7, 1), (6, 2), (5, 3), (1, 2), (3, 7)]),
            // chain unions in both directions
            (10, (1..9).map(|i| (i, i + 1)).collect()),
            (10, (1..9).map(|i| (i + 1, i)).collect()),
            // star
            (10, (2..10).map(|i| (1, i)).collect()),
            // repeated and self unions
            (4, vec![(1, 2), (1, 2), (2, 1), (3, 3)]),
        ]
    }

    fn pseudo_random_case(n: u32, ops: usize, seed: u64) -> (u32, Vec<(u32, u32)>) {
        // splitmix64 — deterministic without external crates
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let unions = (0..ops)
            .map(|_| {
                let x = 1 + (next() % (n as u64 - 1)) as u32;
                let y = 1 + (next() % (n as u64 - 1)) as u32;
                (x, y)
            })
            .collect();
        (n, unions)
    }

    fn all_partitions(n: u32, unions: &[(u32, u32)]) -> Vec<(&'static str, Vec<u32>)> {
        let mut out = vec![
            ("rem", partition_of::<RemSP>(n, unions)),
            ("rank-pc", partition_of::<RankUF>(n, unions)),
            ("size", partition_of::<SizeUF>(n, unions)),
            ("min", partition_of::<MinUF>(n, unions)),
        ];
        for (name, comp) in [
            ("rank-none", Compression::None),
            ("rank-halve", Compression::Halving),
            ("rank-split", Compression::Splitting),
        ] {
            let mut uf = RankUF::new_with(comp);
            for _ in 0..n {
                uf.make_set();
            }
            for &(x, y) in unions {
                uf.union(x, y);
            }
            out.push((name, crate::testing::canonical_partition(&mut uf)));
        }
        out
    }

    #[test]
    fn all_variants_agree_on_scripted_cases() {
        for (n, unions) in scripted_cases() {
            let parts = all_partitions(n, &unions);
            let reference = &parts[0].1;
            for (name, part) in &parts[1..] {
                assert_eq!(part, reference, "{name} diverged on n={n} {unions:?}");
            }
        }
    }

    #[test]
    fn all_variants_agree_on_random_cases() {
        for seed in 0..20u64 {
            let (n, unions) = pseudo_random_case(64, 80, seed);
            let parts = all_partitions(n, &unions);
            let reference = &parts[0].1;
            for (name, part) in &parts[1..] {
                assert_eq!(part, reference, "{name} diverged on seed {seed}");
            }
        }
    }

    #[test]
    fn all_variants_agree_after_flatten() {
        for seed in 0..10u64 {
            let (n, unions) = pseudo_random_case(48, 60, seed);
            let run = |mut uf: Box<dyn FnMut() -> (u32, Vec<u32>)>| uf();
            let flatten_with = |make: &dyn Fn() -> Box<dyn UnionFindDyn>| {
                let mut uf = make();
                for _ in 0..n {
                    uf.make_set_dyn();
                }
                for &(x, y) in &unions {
                    uf.union_dyn(x, y);
                }
                let k = uf.flatten_dyn();
                (k, (0..n).map(|x| uf.resolve_dyn(x)).collect::<Vec<_>>())
            };
            let _ = run; // silence helper if unused
            let reference = flatten_with(&|| Box::new(RemSP::new()));
            for (name, result) in [
                ("rank", flatten_with(&|| Box::new(RankUF::new()))),
                ("size", flatten_with(&|| Box::new(SizeUF::new()))),
                ("min", flatten_with(&|| Box::new(MinUF::new()))),
            ] {
                assert_eq!(result, reference, "{name} flatten diverged, seed {seed}");
            }
        }
    }

    /// Object-safe adapter so the flatten comparison can iterate variants.
    trait UnionFindDyn {
        fn make_set_dyn(&mut self) -> u32;
        fn union_dyn(&mut self, x: u32, y: u32) -> u32;
        fn flatten_dyn(&mut self) -> u32;
        fn resolve_dyn(&self, x: u32) -> u32;
    }

    impl<U: UnionFind> UnionFindDyn for U {
        fn make_set_dyn(&mut self) -> u32 {
            self.make_set()
        }
        fn union_dyn(&mut self, x: u32, y: u32) -> u32 {
            self.union(x, y)
        }
        fn flatten_dyn(&mut self) -> u32 {
            self.flatten()
        }
        fn resolve_dyn(&self, x: u32) -> u32 {
            self.resolve(x)
        }
    }
}
