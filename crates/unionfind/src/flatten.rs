//! The analysis phase: FLATTEN (the paper's Algorithm 3).
//!
//! After the scan phase, the parent array `p` encodes a forest over
//! provisional labels. FLATTEN rewrites `p` in place into a lookup table
//! mapping every provisional label to a *final* label, with final labels
//! consecutive starting at 1 (label 0 stays the background).
//!
//! Algorithm 3 visits labels in increasing order and relies on the
//! **monotone parent invariant** `p[i] ≤ i` (every parent has a smaller or
//! equal index, so a set's root is its minimum member). RemSP, MinUF and
//! He's equivalence table maintain that invariant; rank- and size-linked
//! structures do not, and use [`flatten_generic`] instead.
//!
//! [`flatten_sparse_monotone`] extends Algorithm 3 to the gap-containing
//! label spaces PAREMSP produces (each thread owns a disjoint range of the
//! provisional label space and may not use all of it).

/// Sentinel marking a never-allocated slot in sparse label spaces.
pub const UNUSED: u32 = u32::MAX;

/// Dense FLATTEN (Algorithm 3). `p[0]` is the reserved background and must
/// be its own root. Returns the number of sets among elements `1..p.len()`.
///
/// # Panics
/// Panics (debug only) when the monotone invariant `p[i] ≤ i` is violated.
pub fn flatten_monotone(p: &mut [u32]) -> u32 {
    if p.is_empty() {
        return 0;
    }
    debug_assert_eq!(p[0], 0, "background element must be a root");
    let mut k = 1u32;
    for i in 1..p.len() {
        let pi = p[i];
        debug_assert!(
            (pi as usize) <= i,
            "monotone invariant violated: p[{i}] = {pi}"
        );
        if (pi as usize) < i {
            // Non-root: the parent was already rewritten to its final
            // label, so one hop suffices.
            p[i] = p[pi as usize];
        } else {
            p[i] = k;
            k += 1;
        }
    }
    k - 1
}

/// Sparse FLATTEN: like [`flatten_monotone`] but slots equal to [`UNUSED`]
/// are skipped (left as `UNUSED`). Used after PAREMSP's boundary merge,
/// where each thread's label range may be partially used.
pub fn flatten_sparse_monotone(p: &mut [u32]) -> u32 {
    if p.is_empty() {
        return 0;
    }
    debug_assert_eq!(p[0], 0, "background element must be a root");
    let mut k = 1u32;
    for i in 1..p.len() {
        let pi = p[i];
        if pi == UNUSED {
            continue;
        }
        debug_assert!(
            (pi as usize) <= i,
            "monotone invariant violated: p[{i}] = {pi}"
        );
        if (pi as usize) < i {
            p[i] = p[pi as usize];
        } else {
            p[i] = k;
            k += 1;
        }
    }
    k - 1
}

/// Generic flatten for arbitrary tree shapes (e.g. link-by-rank, where a
/// root may have a larger index than its children). Two passes:
/// full path compression, then consecutive renumbering in order of each
/// set's smallest member — producing exactly the same final labels as
/// [`flatten_monotone`] does for monotone forests.
pub fn flatten_generic(p: &mut [u32]) -> u32 {
    if p.is_empty() {
        return 0;
    }
    assert_eq!(p[0], 0, "background element must be a root");
    // Pass 1: point every element directly at its root.
    for i in 0..p.len() {
        let mut root = i as u32;
        while p[root as usize] != root {
            root = p[root as usize];
        }
        // compress the whole path
        let mut cur = i as u32;
        while p[cur as usize] != root {
            let next = p[cur as usize];
            p[cur as usize] = root;
            cur = next;
        }
    }
    // Pass 2: assign consecutive labels in order of smallest member.
    // Visiting i ascending, the first time we see a root it is via its
    // smallest member (or itself), so numbering follows minima.
    let mut final_label = vec![UNUSED; p.len()];
    final_label[0] = 0;
    let mut k = 1u32;
    for pi in p.iter_mut().skip(1) {
        let r = *pi as usize;
        if final_label[r] == UNUSED {
            final_label[r] = k;
            k += 1;
        }
        *pi = final_label[r];
    }
    k - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_monotone_singletons() {
        let mut p = vec![0, 1, 2, 3];
        let k = flatten_monotone(&mut p);
        assert_eq!(k, 3);
        assert_eq!(p, vec![0, 1, 2, 3]);
    }

    #[test]
    fn flatten_monotone_chain() {
        // 1 <- 2 <- 3 (all one set), 4 alone
        let mut p = vec![0, 1, 1, 2, 4];
        let k = flatten_monotone(&mut p);
        assert_eq!(k, 2);
        assert_eq!(p, vec![0, 1, 1, 1, 2]);
    }

    #[test]
    fn flatten_monotone_makes_labels_consecutive() {
        // sets {1,3}, {2}, {4,5}
        let mut p = vec![0, 1, 2, 1, 4, 4];
        let k = flatten_monotone(&mut p);
        assert_eq!(k, 3);
        assert_eq!(p, vec![0, 1, 2, 1, 3, 3]);
    }

    #[test]
    fn flatten_empty() {
        assert_eq!(flatten_monotone(&mut []), 0);
        assert_eq!(flatten_sparse_monotone(&mut []), 0);
        assert_eq!(flatten_generic(&mut []), 0);
    }

    #[test]
    fn flatten_sparse_skips_unused() {
        // slots 2 and 5 never allocated
        let mut p = vec![0, 1, UNUSED, 3, 3, UNUSED, 6];
        let k = flatten_sparse_monotone(&mut p);
        assert_eq!(k, 3);
        assert_eq!(p, vec![0, 1, UNUSED, 2, 2, UNUSED, 3]);
    }

    #[test]
    fn flatten_sparse_all_unused() {
        let mut p = vec![0, UNUSED, UNUSED];
        assert_eq!(flatten_sparse_monotone(&mut p), 0);
    }

    #[test]
    fn flatten_generic_handles_non_monotone_roots() {
        // link-by-rank style: set {1,2} rooted at 2, set {3} singleton.
        let mut p = vec![0, 2, 2, 3];
        let k = flatten_generic(&mut p);
        assert_eq!(k, 2);
        // smallest member of {1,2} is 1 -> final label 1; {3} -> 2.
        assert_eq!(p, vec![0, 1, 1, 2]);
    }

    #[test]
    fn flatten_generic_deep_chain_upward() {
        // 1 -> 2 -> 3 -> 4 (root 4)
        let mut p = vec![0, 2, 3, 4, 4];
        let k = flatten_generic(&mut p);
        assert_eq!(k, 1);
        assert_eq!(p, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn flatten_generic_matches_monotone_on_monotone_input() {
        let inputs: Vec<Vec<u32>> = vec![
            vec![0, 1, 1, 2, 4, 4, 1],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 1, 1, 1],
        ];
        for input in inputs {
            let mut a = input.clone();
            let mut b = input.clone();
            let ka = flatten_monotone(&mut a);
            let kb = flatten_generic(&mut b);
            assert_eq!(ka, kb);
            assert_eq!(a, b, "input {input:?}");
        }
    }

    #[test]
    #[should_panic(expected = "background")]
    fn flatten_generic_rejects_merged_background() {
        let mut p = vec![1u32, 1];
        flatten_generic(&mut p);
    }
}
