//! # ccl-unionfind
//!
//! Union-find (disjoint-set) structures for the PAREMSP reproduction
//! (Gupta et al., IPPS 2014).
//!
//! Two-pass CCL algorithms record *label equivalences* discovered during
//! the scan phase and resolve them before the labeling pass. The paper's
//! contribution rests on using **REM's union-find with splicing (RemSP)**
//! — the fastest variant in the Patwary–Blair–Manne study (the paper's
//! ref \[40\]) — instead of the structures used by the prior CCLLRPC and
//! ARUN algorithms. This crate implements the full comparison suite:
//!
//! * [`RemSP`] — Rem's algorithm with the splicing (SP) compression, the
//!   paper's Algorithm 2,
//! * [`RankUF`] — array-based link-by-rank with path compression (the
//!   union-find inside CCLLRPC, ref \[36\]); path-halving and path-splitting
//!   compression options are included for the ablation benches,
//! * [`SizeUF`] — link-by-size with path compression,
//! * [`MinUF`] — link-by-minimum-root (keeps the smallest provisional
//!   label as representative, the classic CCL choice),
//! * [`HeEquivalence`] — the `rtable`/`next`/`tail` three-array structure
//!   of He–Chao–Suzuki (refs \[37\], \[43\]) used by the ARUN baseline,
//! * [`par`] — the shared-memory structures for PAREMSP: a lock-guarded
//!   MERGER faithful to the paper's Algorithm 8 and a CAS-only variant.
//!
//! The analysis phase (the paper's FLATTEN, Algorithm 3) lives in
//! [`flatten`], with dense and sparse forms; the sparse form supports the
//! gap-containing provisional label spaces PAREMSP produces.
//!
//! ## Element model
//!
//! Elements are `u32` indices created consecutively. CCL reserves element
//! `0` for the background: it is registered up front and never merged, and
//! [`UnionFind::flatten`] keeps it mapped to `0` while assigning the
//! consecutive final labels `1..=k` to the remaining sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod flatten;
pub mod par;
pub mod seq;

pub use equivalence::HeEquivalence;
pub use seq::min::MinUF;
pub use seq::rank::{Compression, RankUF};
pub use seq::rem::RemSP;
pub use seq::size::SizeUF;

/// The minimal interface the CCL scan phases need from a label-equivalence
/// backend — shaped exactly like the paper's pseudocode:
/// `p[count] ← count` ([`EquivalenceStore::new_label`]) and
/// `merge(p, x, y)` ([`EquivalenceStore::merge`]).
pub trait EquivalenceStore {
    /// Registers a fresh provisional label. Dense backends require labels
    /// to be registered consecutively (`label == len`); sparse backends
    /// (the parallel chunk views) accept any unused slot.
    fn new_label(&mut self, label: u32);

    /// Merges the equivalence classes of `x` and `y`, returning a common
    /// representative (not necessarily the final root).
    fn merge(&mut self, x: u32, y: u32) -> u32;
}

/// Full sequential union-find interface used by the benchmarks, tests and
/// the analysis phase.
pub trait UnionFind: EquivalenceStore {
    /// An empty structure.
    fn new() -> Self;

    /// An empty structure with room for `cap` elements pre-allocated.
    fn with_capacity(cap: usize) -> Self;

    /// Creates a singleton set, returning its element id (`0, 1, 2, …`).
    fn make_set(&mut self) -> u32;

    /// Returns the representative (root) of `x`'s set. May compress paths.
    fn find(&mut self, x: u32) -> u32;

    /// Unites the sets of `x` and `y`; returns the surviving root.
    fn union(&mut self, x: u32, y: u32) -> u32;

    /// Number of elements created so far.
    fn len(&self) -> usize;

    /// True when no elements exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `x` and `y` are currently in the same set.
    fn same(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets among all created elements.
    fn count_sets(&mut self) -> usize {
        let n = self.len() as u32;
        (0..n).filter(|&x| self.find(x) == x).count()
    }

    /// CCL analysis phase: replaces the internal parent array with a
    /// provisional-label → final-label lookup table. Element 0 (the
    /// reserved background) keeps final label 0; the remaining sets
    /// receive consecutive final labels `1..=k` in order of their smallest
    /// member. Returns `k`, the number of connected components.
    ///
    /// After `flatten`, only [`UnionFind::resolve`] may be used; the
    /// union/find operations are no longer meaningful.
    ///
    /// # Panics
    /// Panics if element 0 was merged with another set (CCL never does).
    fn flatten(&mut self) -> u32;

    /// Post-[`UnionFind::flatten`] lookup of the final label of `x`.
    fn resolve(&self, x: u32) -> u32;
}

/// Cross-variant partition helpers shared by this crate's tests (kept
/// public so `ccl-core` and the integration tests can reuse them).
pub mod testing {
    use super::UnionFind;

    /// Drives a fresh `U` through a scripted sequence: `n` singletons,
    /// then the given unions; returns the canonical partition.
    pub fn partition_of<U: UnionFind>(n: u32, unions: &[(u32, u32)]) -> Vec<u32> {
        let mut uf = U::with_capacity(n as usize);
        for _ in 0..n {
            uf.make_set();
        }
        for &(x, y) in unions {
            uf.union(x, y);
        }
        canonical_partition(&mut uf)
    }

    /// Canonical form of the current partition: each element mapped to the
    /// smallest element of its set.
    pub fn canonical_partition<U: UnionFind>(uf: &mut U) -> Vec<u32> {
        let n = uf.len() as u32;
        let mut smallest = vec![u32::MAX; n as usize];
        for x in 0..n {
            let r = uf.find(x) as usize;
            if smallest[r] == u32::MAX {
                smallest[r] = x; // first visit in ascending order = minimum
            }
        }
        (0..n).map(|x| smallest[uf.find(x) as usize]).collect()
    }
}
