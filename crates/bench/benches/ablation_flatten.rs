//! Ablation A5 — sequential vs parallel FLATTEN (our extension; the
//! paper's Algorithm 7 flattens sequentially). The label forest is the
//! real one produced by PAREMSP's scan + merge phases on a label-heavy
//! image, restored from a snapshot between iterations.
//!
//! Expected shape: flatten is a small fraction of total time (Figure
//! 5a ≈ 5b), so the parallel version only pays off on label spaces in
//! the tens of millions — the bench shows where the crossover sits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ccl_core::par::partition::{partition_rows, total_label_slots};
use ccl_core::scan::scan_two_line;
use ccl_datasets::synth::noise::bernoulli;
use ccl_unionfind::par::ConcurrentParents;

/// Builds the post-scan parent forest for a dense noise image (noise
/// maximizes provisional label counts).
fn build_forest(side: usize) -> Vec<u32> {
    let img = bernoulli(side, side, 0.48, 61);
    let chunks = partition_rows(side, side, 8);
    let parents = ConcurrentParents::new(total_label_slots(&chunks));
    let mut labels = vec![0u32; side * side];
    let mut rest: &mut [u32] = &mut labels;
    for chunk in &chunks {
        let (mine, tail) = rest.split_at_mut(chunk.num_rows() * side);
        rest = tail;
        let mut store = parents.chunk_store();
        scan_two_line(
            &img,
            chunk.rows.clone(),
            mine,
            &mut store,
            chunk.label_offset,
        );
    }
    parents.snapshot()
}

fn bench_flatten(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_flatten");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for side in [1024usize, 2048] {
        let snapshot = build_forest(side);
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{side}x{side}")),
            &snapshot,
            |b, snap| {
                b.iter_batched(
                    || ConcurrentParents::from_snapshot(snap),
                    |mut p| black_box(p.flatten_sparse()),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        for threads in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel-{threads}"), format!("{side}x{side}")),
                &snapshot,
                |b, snap| {
                    b.iter_batched(
                        || ConcurrentParents::from_snapshot(snap),
                        |mut p| black_box(p.flatten_sparse_parallel(threads)),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flatten);
criterion_main!(benches);
