//! Fused vs sequential accumulation: the cost of the analysis fold,
//! across band heights and in-band thread counts.
//!
//! The sequential fold walks every pixel a second time on one thread
//! after the seams; the fused fold accumulates per-chunk partial tables
//! inside the scan workers and merges them per *label* at the seam, so
//! the serial stage shrinks from O(pixels) to O(labels + width).
//! Expected shape: parity at 1 thread (same work, different placement),
//! a widening fused win as threads grow (the pass parallelizes) and at
//! small bands (per-band fold overheads amortize), and the same effect
//! on the tile-grid labeler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_stream::{label_stream, CountComponents, FoldMode, MemorySource, StripConfig};
use ccl_tiles::{label_tiles, GridSource, TileGridConfig};

fn bench_accum_fold(c: &mut Criterion) {
    let img = landcover(1024, 4096, LandcoverParams::default(), 23);
    let mut group = c.benchmark_group("accum_fold");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Bytes(img.raster_bytes() as u64));

    for fold in [FoldMode::Sequential, FoldMode::Fused] {
        for band in [64usize, 256, 1024] {
            for threads in [1usize, 2, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("strip-{fold}"), format!("band{band}-{threads}t")),
                    &(band, threads),
                    |b, &(band, threads)| {
                        let cfg = StripConfig::parallel(threads).with_fold(fold);
                        b.iter(|| {
                            let mut src = MemorySource::new(&img);
                            let mut sink = CountComponents::default();
                            label_stream(&mut src, band, cfg.clone(), &mut sink).unwrap();
                            black_box(sink.count)
                        })
                    },
                );
            }
        }
        for threads in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("tiles-{fold}"), format!("256x256-{threads}t")),
                &threads,
                |b, &threads| {
                    let cfg = TileGridConfig::parallel(threads).with_fold(fold);
                    b.iter(|| {
                        let mut src = GridSource::from_image(&img, 256, 256);
                        let mut sink = CountComponents::default();
                        label_tiles(&mut src, cfg.clone(), &mut sink).unwrap();
                        black_box(sink.count)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_accum_fold);
criterion_main!(benches);
