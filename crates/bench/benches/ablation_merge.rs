//! Ablation A3 — the boundary-merge implementation: the paper's
//! lock-guarded MERGER (Algorithm 8) vs the CAS-only variant, plus lock
//! stripe-count sensitivity, at 24 threads on a boundary-merge-heavy
//! image (fine vertical structure maximizes cross-chunk merges).
//!
//! Expected shape: near-identical (Figure 5a ≈ 5b — merging is a tiny
//! fraction of the work); tiny stripe counts degrade the locked merger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::par::{paremsp_with, MergerKind, ParemspConfig};
use ccl_datasets::synth::adversarial::comb;
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};

fn bench_merge(c: &mut Criterion) {
    let images = vec![
        ("comb", comb(2048, 1024, 512)),
        (
            "landcover",
            landcover(2048, 1024, LandcoverParams::default(), 41),
        ),
    ];
    let mut group = c.benchmark_group("ablation_merge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    let threads = 24;
    for (name, img) in &images {
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        for (label, merger, stripes) in [
            ("locked-64k", MergerKind::Locked, None),
            ("locked-16", MergerKind::Locked, Some(16)),
            ("cas", MergerKind::Cas, None),
        ] {
            let cfg = ParemspConfig {
                threads,
                merger,
                lock_stripes: stripes,
                parallel_flatten: false,
            };
            group.bench_with_input(BenchmarkId::new(label, name), img, |b, img| {
                b.iter(|| black_box(paremsp_with(img, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
