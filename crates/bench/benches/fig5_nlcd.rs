//! Criterion companion to Figure 5: PAREMSP thread sweep on NLCD-like
//! images of increasing size (Table III indices 1, 3 and 6 at bench
//! scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::par::paremsp;
use ccl_datasets::suite::nlcd_image;

fn bench_fig5(c: &mut Criterion) {
    // scale 0.02 → image 1 ≈ 0.24 Mpixel … image 6 ≈ 9.3 Mpixel
    let images: Vec<_> = [1usize, 3, 6]
        .iter()
        .map(|&i| nlcd_image(i, 0.02))
        .collect();
    let mut group = c.benchmark_group("fig5_nlcd");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for img in &images {
        group.throughput(Throughput::Bytes(img.image.raster_bytes() as u64));
        for threads in [1usize, 4, 12, 24] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads-{threads}"), &img.name),
                &img.image,
                |b, image| b.iter(|| black_box(paremsp(image, threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
