//! Criterion companion to Figure 4: sequential AREMSP vs PAREMSP at the
//! figure's thread counts on one ≤ 1 Mpixel image per small family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_bench::FIG4_THREADS;
use ccl_core::par::paremsp;
use ccl_core::seq::aremsp;
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::shapes::text_page;
use ccl_datasets::synth::texture::grating;

fn bench_fig4(c: &mut Criterion) {
    let images = vec![
        (
            "aerial",
            blob_field(
                1024,
                1024,
                BlobParams {
                    coverage: 0.3,
                    min_radius: 3,
                    max_radius: 24,
                },
                11,
            ),
        ),
        ("texture", grating(1024, 1024, 0.23, 0.31, 0.0)),
        ("misc", text_page(1024, 1024, 2, 12)),
    ];
    let mut group = c.benchmark_group("fig4_speedup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (name, img) in &images {
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        group.bench_with_input(BenchmarkId::new("seq-aremsp", name), img, |b, img| {
            b.iter(|| black_box(aremsp(img)))
        });
        for &threads in &FIG4_THREADS {
            group.bench_with_input(
                BenchmarkId::new(format!("par-{threads}"), name),
                img,
                |b, img| b.iter(|| black_box(paremsp(img, threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
