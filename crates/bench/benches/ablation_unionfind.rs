//! Ablation A1 — the union-find choice (the paper's central design
//! decision): the same two-line scan over RemSP, link-by-rank+PC,
//! link-by-size, link-by-min and He's equivalence table, on a merge-heavy
//! noise image and a region-heavy landcover image.
//!
//! Expected shape: RemSP fastest (the paper's claim, after
//! Patwary–Blair–Manne); He's table competitive on few-merge inputs but
//! degrading with merge rate; rank/size paying for the extra array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::seq::{two_pass_with, ScanStrategy};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_unionfind::{HeEquivalence, MinUF, RankUF, RemSP, SizeUF};

fn bench_unionfind(c: &mut Criterion) {
    let images = vec![
        ("noise-d45", bernoulli(768, 768, 0.45, 21)),
        ("noise-d70", bernoulli(768, 768, 0.70, 22)),
        (
            "landcover",
            landcover(768, 768, LandcoverParams::default(), 23),
        ),
    ];
    let mut group = c.benchmark_group("ablation_unionfind");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (name, img) in &images {
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        group.bench_with_input(BenchmarkId::new("remsp", name), img, |b, img| {
            b.iter(|| black_box(two_pass_with::<RemSP>(img, ScanStrategy::TwoLine)))
        });
        group.bench_with_input(BenchmarkId::new("rank-pc", name), img, |b, img| {
            b.iter(|| black_box(two_pass_with::<RankUF>(img, ScanStrategy::TwoLine)))
        });
        group.bench_with_input(BenchmarkId::new("size-pc", name), img, |b, img| {
            b.iter(|| black_box(two_pass_with::<SizeUF>(img, ScanStrategy::TwoLine)))
        });
        group.bench_with_input(BenchmarkId::new("min", name), img, |b, img| {
            b.iter(|| black_box(two_pass_with::<MinUF>(img, ScanStrategy::TwoLine)))
        });
        group.bench_with_input(BenchmarkId::new("he-table", name), img, |b, img| {
            b.iter(|| black_box(two_pass_with::<HeEquivalence>(img, ScanStrategy::TwoLine)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unionfind);
criterion_main!(benches);
