//! Ablation A4 — prior-art parallel baseline: PAREMSP vs the
//! strip-parallel repeated-pass algorithm (the Suzuki-style OpenMP
//! parallelization of the paper's §II, which peaked at 2.5× on 4
//! threads). Same images, same thread counts.
//!
//! Expected shape: multipass is drastically slower sequentially and its
//! speedup saturates almost immediately, while PAREMSP keeps scaling —
//! the gap is the paper's raison d'être for two-pass parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::par::{multipass_parallel, paremsp};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};

fn bench_prior_art(c: &mut Criterion) {
    let img = landcover(1024, 768, LandcoverParams::default(), 51);
    let mut group = c.benchmark_group("ablation_prior_art");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
    for threads in [1usize, 4, 16, 24] {
        group.bench_with_input(BenchmarkId::new("paremsp", threads), &img, |b, img| {
            b.iter(|| black_box(paremsp(img, threads)))
        });
        group.bench_with_input(
            BenchmarkId::new("multipass-par", threads),
            &img,
            |b, img| b.iter(|| black_box(multipass_parallel(img, threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prior_art);
criterion_main!(benches);
