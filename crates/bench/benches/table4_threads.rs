//! Criterion companion to Table IV: PAREMSP at the paper's thread counts
//! (2, 6, 16, 24) on a small and a mid-size image.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_bench::TABLE4_THREADS;
use ccl_core::par::paremsp;
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};

fn bench_table4(c: &mut Criterion) {
    let images = vec![
        (
            "small-0.27MB",
            landcover(640, 416, LandcoverParams::default(), 5),
        ),
        (
            "mid-2.4MB",
            landcover(1792, 1344, LandcoverParams::default(), 6),
        ),
    ];
    let mut group = c.benchmark_group("table4_paremsp");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (name, img) in &images {
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        for &threads in &TABLE4_THREADS {
            group.bench_with_input(
                BenchmarkId::new(format!("threads-{threads}"), name),
                img,
                |b, img| b.iter(|| black_box(paremsp(img, threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
