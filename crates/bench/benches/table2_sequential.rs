//! Criterion companion to Table II: the four sequential algorithms on one
//! representative image per family (scaled down so `cargo bench` stays
//! quick; the `table2` binary runs the full-size sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::Algorithm;
use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_datasets::synth::shapes::shape_scene;
use ccl_datasets::synth::texture::stripes;

fn bench_table2(c: &mut Criterion) {
    let images = vec![
        (
            "aerial",
            blob_field(
                512,
                512,
                BlobParams {
                    coverage: 0.3,
                    min_radius: 2,
                    max_radius: 20,
                },
                1,
            ),
        ),
        ("texture", stripes(512, 512, 8, 4, (1, 1))),
        ("misc", shape_scene(512, 512, 80, 2)),
        ("nlcd", landcover(768, 576, LandcoverParams::default(), 3)),
    ];
    let mut group = c.benchmark_group("table2_sequential");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (name, img) in &images {
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        for algo in Algorithm::table2() {
            group.bench_with_input(BenchmarkId::new(algo.name(), name), img, |b, img| {
                b.iter(|| black_box(algo.run(img)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
