//! Streaming-engine scaling: strip-labeled analysis vs whole-image
//! AREMSP + analysis, across band heights and in-band thread counts.
//!
//! Expected shape: the strip labeler tracks whole-image AREMSP closely at
//! large bands (same scan, one extra seam per band plus the per-band
//! compaction), degrades gracefully toward 1-row bands (seam merges and
//! carry-row compaction per row), and the parallel in-band mode helps
//! once bands are tall enough to amortize task spawning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::analysis::region_properties;
use ccl_core::seq::aremsp;
use ccl_datasets::synth::landcover::{landcover, LandcoverParams};
use ccl_stream::{label_stream, CountComponents, MemorySource, StripConfig};

fn bench_stream_scaling(c: &mut Criterion) {
    let img = landcover(1024, 4096, LandcoverParams::default(), 23);
    let mut group = c.benchmark_group("stream_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Bytes(img.raster_bytes() as u64));

    group.bench_with_input(
        BenchmarkId::new("whole-image", "aremsp+analysis"),
        &img,
        |b, img| {
            b.iter(|| {
                let labels = aremsp(img);
                black_box(region_properties(&labels))
            })
        },
    );

    for band in [64usize, 256, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("strip-seq", band), &band, |b, &band| {
            b.iter(|| {
                let mut src = MemorySource::new(&img);
                let mut sink = CountComponents::default();
                label_stream(&mut src, band, StripConfig::sequential(), &mut sink).unwrap();
                black_box(sink.count)
            })
        });
    }

    for threads in [2usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("strip-par-1024band", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut src = MemorySource::new(&img);
                    let mut sink = CountComponents::default();
                    label_stream(&mut src, 1024, StripConfig::parallel(threads), &mut sink)
                        .unwrap();
                    black_box(sink.count)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream_scaling);
criterion_main!(benches);
