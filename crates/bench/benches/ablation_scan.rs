//! Ablation A2 — the scan strategy: decision tree (one line) vs two-line
//! scan at a fixed union-find (RemSP), across a foreground-density sweep.
//! This isolates the CCLREMSP-vs-AREMSP difference of Table II.
//!
//! Expected shape: two-line ahead everywhere (half the line traversals);
//! the gap widens at high density where the two-pixel step pays most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccl_core::seq::{two_pass_with, ScanStrategy};
use ccl_datasets::synth::noise::bernoulli;
use ccl_unionfind::RemSP;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scan");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for density in [10u64, 30, 50, 70, 90] {
        let img = bernoulli(768, 768, density as f64 / 100.0, 31 + density);
        group.throughput(Throughput::Bytes(img.raster_bytes() as u64));
        group.bench_with_input(
            BenchmarkId::new("decision-tree", format!("d{density}")),
            &img,
            |b, img| b.iter(|| black_box(two_pass_with::<RemSP>(img, ScanStrategy::DecisionTree))),
        );
        group.bench_with_input(
            BenchmarkId::new("two-line", format!("d{density}")),
            &img,
            |b, img| b.iter(|| black_box(two_pass_with::<RemSP>(img, ScanStrategy::TwoLine))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
