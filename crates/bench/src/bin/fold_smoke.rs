//! Fold smoke test — fused vs sequential accumulation equivalence, fast
//! enough for every push (CI's `fold-smoke` step, `just fold-smoke`).
//!
//! Runs the strip and tile-grid analyzers over a few synthetic rasters in
//! both fold modes (sequential per-pixel pass vs fused per-chunk
//! partials), synchronous and pipelined, sequential and multi-threaded,
//! and compares every [`ComponentRecord`] **field by field** — id, area,
//! bbox, centroid, anchor, perimeter, holes — plus emission order. Any
//! mismatch prints the offending record pair and exits non-zero.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin fold_smoke
//! ```

use ccl_datasets::synth::blobs::{blob_field, BlobParams};
use ccl_datasets::synth::noise::bernoulli;
use ccl_datasets::synth::texture::rings;
use ccl_image::BinaryImage;
use ccl_stream::{
    analyze_stream, analyze_stream_pipelined, ComponentRecord, FoldMode, OwnedMemorySource,
    StripConfig,
};
use ccl_tiles::{analyze_tiles, analyze_tiles_pipelined, GridSource, TileGridConfig};

/// Compares two record lists field by field, reporting the first
/// divergence (records are emitted in a deterministic order, so index i
/// must match index i).
fn compare(label: &str, seq: &[ComponentRecord], fused: &[ComponentRecord]) -> bool {
    if seq.len() != fused.len() {
        eprintln!(
            "FAIL {label}: {} components sequential vs {} fused",
            seq.len(),
            fused.len()
        );
        return false;
    }
    for (i, (s, f)) in seq.iter().zip(fused).enumerate() {
        let fields: [(&str, bool); 7] = [
            ("id", s.id == f.id),
            ("area", s.area == f.area),
            ("bbox", s.bbox == f.bbox),
            ("centroid", s.centroid == f.centroid),
            ("anchor", s.anchor == f.anchor),
            ("perimeter", s.perimeter == f.perimeter),
            ("holes", s.holes == f.holes),
        ];
        if let Some((field, _)) = fields.iter().find(|(_, ok)| !ok) {
            eprintln!(
                "FAIL {label}: record {i} differs in `{field}`:\n  seq   {s:?}\n  fused {f:?}"
            );
            return false;
        }
    }
    true
}

fn main() {
    let images: Vec<(&str, BinaryImage)> = vec![
        ("bernoulli", bernoulli(96, 160, 0.5, 11)),
        (
            "blobs",
            blob_field(
                96,
                160,
                BlobParams {
                    coverage: 0.35,
                    min_radius: 1,
                    max_radius: 5,
                },
                7,
            ),
        ),
        ("rings", rings(96, 160, 5.0)),
    ];

    let mut checks = 0usize;
    let mut ok = true;
    for (name, img) in &images {
        for threads in [1usize, 4] {
            let strip = |fold| StripConfig::parallel(threads).with_fold(fold);
            let grid = |fold| TileGridConfig::parallel(threads).with_fold(fold);

            // strip labeler, synchronous
            let run_strip = |fold| {
                let mut src = OwnedMemorySource::new(img.clone());
                analyze_stream(&mut src, 32, strip(fold)).expect("in-memory stream")
            };
            let (seq, _) = run_strip(FoldMode::Sequential);
            let (fused, _) = run_strip(FoldMode::Fused);
            ok &= compare(&format!("{name} strip {threads}t"), &seq, &fused);
            checks += 1;

            // strip labeler, pipelined (scan ∥ merge)
            let run_strip_pipe = |fold| {
                let mut src = OwnedMemorySource::new(img.clone());
                analyze_stream_pipelined(&mut src, 32, strip(fold)).expect("in-memory stream")
            };
            let (pseq, _) = run_strip_pipe(FoldMode::Sequential);
            let (pfused, _) = run_strip_pipe(FoldMode::Fused);
            ok &= compare(
                &format!("{name} strip-pipelined {threads}t"),
                &pseq,
                &pfused,
            );
            ok &= compare(
                &format!("{name} strip sync-vs-pipelined {threads}t"),
                &seq,
                &pfused,
            );
            checks += 2;

            // tile grid, synchronous + pipelined
            let run_tiles = |fold| {
                let mut src = GridSource::from_image(img, 24, 24);
                analyze_tiles(&mut src, grid(fold)).expect("in-memory grid")
            };
            let (tseq, _) = run_tiles(FoldMode::Sequential);
            let (tfused, _) = run_tiles(FoldMode::Fused);
            ok &= compare(&format!("{name} tiles {threads}t"), &tseq, &tfused);
            checks += 1;

            let run_tiles_pipe = |fold| {
                let mut src = GridSource::from_image(img, 24, 24);
                analyze_tiles_pipelined(&mut src, grid(fold)).expect("in-memory grid")
            };
            let (tpseq, _) = run_tiles_pipe(FoldMode::Sequential);
            let (tpfused, _) = run_tiles_pipe(FoldMode::Fused);
            ok &= compare(
                &format!("{name} tiles-pipelined {threads}t"),
                &tpseq,
                &tpfused,
            );
            ok &= compare(
                &format!("{name} tiles sync-vs-pipelined {threads}t"),
                &tseq,
                &tpfused,
            );
            checks += 2;
        }
    }

    if ok {
        println!("fold-smoke PASS: {checks} fused-vs-sequential comparisons, records identical field by field");
    } else {
        eprintln!("fold-smoke FAILED");
        std::process::exit(1);
    }
}
