//! Runs the full reproduction sweep (Tables II–IV, Figures 4–5) in one
//! process and writes JSON results under `results/`.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin repro_all [--scale F] [--reps N]
//! ```

use std::process::Command;

use ccl_bench::BinArgs;

const USAGE: &str = "repro_all: run table2, table4, fig4 and fig5 with shared settings
  --scale F    NLCD size factor vs Table III (default 0.05)
  --reps N     repetitions per timing cell (default 3)";

fn main() {
    let args = BinArgs::parse(USAGE);
    std::fs::create_dir_all("results").expect("create results dir");
    let exe = std::env::current_exe().expect("current exe path");
    let bindir = exe.parent().expect("bin dir").to_path_buf();
    let scale = args.scale.to_string();
    let reps = args.reps.to_string();
    for (bin, needs_scale) in [
        ("table2", true),
        ("table4", true),
        ("fig4", false),
        ("fig5", true),
    ] {
        let mut cmd = Command::new(bindir.join(bin));
        cmd.arg("--reps").arg(&reps);
        if needs_scale {
            cmd.arg("--scale").arg(&scale);
        }
        cmd.arg("--json").arg(format!("results/{bin}.json"));
        println!("==> {bin}");
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!(
                "failed to launch {bin}: {e}\n(build all bins first: \
                 cargo build --release -p ccl-bench --bins)"
            );
            std::process::exit(1);
        });
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("all experiments complete; JSON in results/");
}
