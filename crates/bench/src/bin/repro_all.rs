//! Runs the full reproduction sweep (Tables II–IV, Figures 4–5) plus the
//! streaming and tile-grid demos in one process, and writes JSON results
//! under `results/` — including the trajectory snapshots the repo tracks
//! across commits: `BENCH_paremsp.json` (PAREMSP phase-timed thread
//! sweep), `BENCH_stream.json` / `BENCH_tiles.json` (bounded-memory
//! out-of-core throughput, written by the demo children) and the
//! append-only `BENCH_HISTORY.jsonl` line log behind all of them.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin repro_all [--scale F] [--reps N]
//! ```

use std::process::Command;

use ccl_bench::{paremsp_phase_ms_best_of, BinArgs, PhaseMsBest};
use ccl_core::par::ParemspConfig;
use ccl_datasets::report::write_json;
use ccl_datasets::suite::nlcd_image;
use serde::Serialize;

const USAGE: &str = "repro_all: run table2, table4, fig4, fig5 and stream_demo with shared settings
  --scale F    NLCD size factor vs Table III (default 0.05)
  --reps N     repetitions per timing cell (default 3)";

/// One thread count of the `BENCH_paremsp.json` snapshot.
#[derive(Serialize)]
struct ParemspPoint {
    threads: usize,
    /// Best-of-reps wall milliseconds, per phase and combined.
    phases_ms: PhaseMsBest,
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct ParemspBench {
    image: String,
    width: usize,
    height: usize,
    megapixels: f64,
    scale: f64,
    reps: usize,
    points: Vec<ParemspPoint>,
}

/// Phase-timed PAREMSP thread sweep on one NLCD-class image — the perf
/// snapshot tracked commit to commit.
fn paremsp_snapshot(scale: f64, reps: usize) -> ParemspBench {
    let img = nlcd_image(3, scale);
    let (w, h) = (img.image.width(), img.image.height());
    let mut points = Vec::new();
    let mut base_total = f64::NAN;
    for threads in [1usize, 2, 4, 8, 16, 24] {
        let cfg = ParemspConfig::with_threads(threads);
        let phases_ms = paremsp_phase_ms_best_of(&img.image, &cfg, reps);
        if threads == 1 {
            base_total = phases_ms.total;
        }
        points.push(ParemspPoint {
            threads,
            phases_ms,
            speedup_vs_1: base_total / phases_ms.total,
        });
    }
    ParemspBench {
        image: img.name,
        width: w,
        height: h,
        megapixels: (w * h) as f64 / 1e6,
        scale,
        reps,
        points,
    }
}

fn main() {
    let args = BinArgs::parse(USAGE);
    std::fs::create_dir_all("results").expect("create results dir");
    let exe = std::env::current_exe().expect("current exe path");
    let bindir = exe.parent().expect("bin dir").to_path_buf();
    let scale = args.scale.to_string();
    let reps = args.reps.to_string();
    for (bin, needs_scale, json) in [
        ("table2", true, "results/table2.json".to_string()),
        ("table4", true, "results/table4.json".to_string()),
        ("fig4", false, "results/fig4.json".to_string()),
        ("fig5", true, "results/fig5.json".to_string()),
        (
            "stream_demo",
            false,
            "results/BENCH_stream.json".to_string(),
        ),
        ("tiles_demo", false, "results/BENCH_tiles.json".to_string()),
    ] {
        let mut cmd = Command::new(bindir.join(bin));
        cmd.arg("--reps").arg(&reps);
        if needs_scale {
            cmd.arg("--scale").arg(&scale);
        }
        cmd.arg("--json").arg(json);
        println!("==> {bin}");
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!(
                "failed to launch {bin}: {e}\n(build all bins first: \
                 cargo build --release -p ccl-bench --bins)"
            );
            std::process::exit(1);
        });
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }

    println!("==> BENCH_paremsp.json (phase-timed thread sweep)");
    let snapshot = paremsp_snapshot(args.scale, args.reps);
    write_json("results/BENCH_paremsp.json", &snapshot).expect("write BENCH_paremsp.json");
    ccl_bench::append_history("repro_all/paremsp", &snapshot).expect("append history");
    println!(
        "  {} ({:.1} Mpixel): 1t {:.1} ms -> 24t {:.1} ms",
        snapshot.image,
        snapshot.megapixels,
        snapshot.points.first().map_or(0.0, |p| p.phases_ms.total),
        snapshot.points.last().map_or(0.0, |p| p.phases_ms.total),
    );
    println!("all experiments complete; JSON in results/");
}
