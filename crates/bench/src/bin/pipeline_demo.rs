//! Pipeline demo — the overlap win on a generation-bound workload.
//!
//! Out-of-core inputs are generation-bound in practice: the next band
//! waits on a disk seek, an object-store GET or a sensor readout before
//! any pixel can be scanned. This demo models that decode latency
//! explicitly with `ccl-pipeline`'s device-paced wrappers (a fixed stall
//! per delivered band/tile row — hiding *latency* needs no spare core,
//! so the win is measurable on any machine, single-core CI included) and
//! runs the same raster through every execution mode:
//!
//! * rows: synchronous vs `PrefetchRows` (decode ∥ label);
//! * tiles: synchronous vs the pipelined executor (scan ∥ merge) vs the
//!   full three-stage stack `PrefetchTiles` + pipelined
//!   (decode ∥ scan ∥ merge);
//!
//! asserting identical component counts throughout and reporting wall
//! time + speedup per mode. The JSON snapshot
//! (`results/BENCH_pipeline.json`) and the committed
//! `results/BENCH_HISTORY.jsonl` line record the prefetch-on/off pair so
//! the overlap win is visible in the perf trajectory.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin pipeline_demo \
//!     [--reps N] [--depth N] [--json PATH]
//! ```

use std::time::Duration;

use ccl_bench::BinArgs;
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{write_json, Table};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_pipeline::{PacedRows, PrefetchRows, PrefetchTiles};
use ccl_stream::{label_stream, label_stream_pipelined, CountComponents, StripConfig};
use ccl_tiles::{label_tiles, label_tiles_pipelined, GridSource, TileGridConfig};
use serde::Serialize;

const USAGE: &str = "pipeline_demo: decode/scan/merge overlap on a generation-bound workload
  --reps N         repetitions per mode (default 3)
  --fold MODE      accumulation strategy: fused (default) or seq
  --depth N        prefetch queue depth (default 2)
  --json PATH      snapshot path (default results/BENCH_pipeline.json)";

const WIDTH: usize = 512;
const HEIGHT: usize = 6144;
const BAND: usize = 256;
const TILE: usize = 256;
/// Stall per delivered band/tile row: a 128 KiB band from a ~40 MB/s
/// device. 24 bands → ~72 ms of pure decode latency per run.
const DEVICE_LATENCY: Duration = Duration::from_millis(3);

fn source() -> PacedRows<ccl_datasets::synth::stream::RowStream> {
    PacedRows::new(bernoulli_stream(WIDTH, HEIGHT, 0.5, 77), DEVICE_LATENCY)
}

#[derive(Serialize)]
struct Mode {
    name: String,
    ms: f64,
    speedup_vs_sync: f64,
    components: u64,
}

#[derive(Serialize)]
struct PipelineBench {
    width: usize,
    height: usize,
    band: usize,
    tile: usize,
    depth: usize,
    device_latency_ms: f64,
    /// Accumulation strategy (`--fold`): `fused` folds component analysis
    /// into the scan stage, `seq` is the sequential per-pixel baseline.
    fold: String,
    rows_modes: Vec<Mode>,
    tiles_modes: Vec<Mode>,
}

fn main() {
    let args = BinArgs::parse(USAGE);
    let fold = args.fold_or_default();
    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let mpix = (WIDTH * HEIGHT) as f64 / 1e6;
    println!(
        "{WIDTH}x{HEIGHT} Bernoulli raster ({mpix:.1} Mpixel) behind a device-paced \
         decoder ({:.0} ms per {BAND}-row band), prefetch depth {}\n",
        DEVICE_LATENCY.as_secs_f64() * 1e3,
        args.depth
    );

    let mut table = Table::new(
        ["Mode", "ms", "vs sync", "Mpx/s"]
            .into_iter()
            .map(str::to_string)
            .collect::<Vec<_>>(),
    );
    let mut measure = |name: &str, sync_ms: Option<f64>, f: &mut dyn FnMut() -> u64| {
        let mut components = 0;
        let ms = time_best_of(args.reps, || components = f());
        let speedup = sync_ms.map_or(1.0, |s| s / ms);
        table.push_row(vec![
            name.to_string(),
            format!("{ms:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.1}", mpix / (ms / 1e3)),
        ]);
        Mode {
            name: name.to_string(),
            ms,
            speedup_vs_sync: speedup,
            components,
        }
    };

    // --- row bands ---
    let strip_cfg = || StripConfig::default().with_fold(fold);
    let rows_sync = measure("rows sync", None, &mut || {
        let mut src = source();
        let mut sink = CountComponents::default();
        label_stream(&mut src, BAND, strip_cfg(), &mut sink).expect("infallible");
        sink.count
    });
    let rows_pf = measure("rows decode∥label", Some(rows_sync.ms), &mut || {
        let mut src = PrefetchRows::with_depth(source(), BAND, args.depth);
        let mut sink = CountComponents::default();
        label_stream(&mut src, BAND, strip_cfg(), &mut sink).expect("infallible");
        sink.count
    });
    let rows_pipe = measure("rows scan∥merge", Some(rows_sync.ms), &mut || {
        let mut src = source();
        let mut sink = CountComponents::default();
        label_stream_pipelined(&mut src, BAND, strip_cfg(), &mut sink).expect("infallible");
        sink.count
    });
    let rows_full = measure(
        "rows decode∥scan∥merge",
        Some(rows_sync.ms),
        &mut || {
            let mut src = PrefetchRows::with_depth(source(), BAND, args.depth);
            let mut sink = CountComponents::default();
            label_stream_pipelined(&mut src, BAND, strip_cfg(), &mut sink).expect("infallible");
            sink.count
        },
    );
    assert_eq!(rows_pf.components, rows_sync.components);
    assert_eq!(rows_pipe.components, rows_sync.components);
    assert_eq!(rows_full.components, rows_sync.components);

    // --- tile grid ---
    let tile_cfg = || TileGridConfig::default().with_fold(fold);
    let tiles_sync = measure("tiles sync", None, &mut || {
        let mut grid = GridSource::new(source(), TILE, TILE);
        let mut sink = CountComponents::default();
        label_tiles(&mut grid, tile_cfg(), &mut sink).expect("infallible");
        sink.count
    });
    let tiles_pipe = measure("tiles scan∥merge", Some(tiles_sync.ms), &mut || {
        let mut grid = GridSource::new(source(), TILE, TILE);
        let mut sink = CountComponents::default();
        label_tiles_pipelined(&mut grid, tile_cfg(), &mut sink).expect("infallible");
        sink.count
    });
    let tiles_full = measure(
        "tiles decode∥scan∥merge",
        Some(tiles_sync.ms),
        &mut || {
            let grid = GridSource::new(source(), TILE, TILE);
            let mut staged = PrefetchTiles::with_depth(grid, args.depth);
            let mut sink = CountComponents::default();
            label_tiles_pipelined(&mut staged, tile_cfg(), &mut sink).expect("infallible");
            sink.count
        },
    );
    assert_eq!(tiles_pipe.components, tiles_sync.components);
    assert_eq!(tiles_full.components, tiles_sync.components);

    println!("{}", table.render());
    println!(
        "Identical component counts in every mode ({}); the overlap modes hide \
         the decode latency behind labeling.",
        tiles_sync.components
    );

    let result = PipelineBench {
        width: WIDTH,
        height: HEIGHT,
        band: BAND,
        tile: TILE,
        depth: args.depth,
        device_latency_ms: DEVICE_LATENCY.as_secs_f64() * 1e3,
        fold: fold.to_string(),
        rows_modes: vec![rows_sync, rows_pf, rows_pipe, rows_full],
        tiles_modes: vec![tiles_sync, tiles_pipe, tiles_full],
    };
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    write_json(&json_path, &result).expect("write json");
    ccl_bench::append_history("pipeline_demo", &result).expect("append history");
    eprintln!("wrote {json_path} (+ {})", ccl_bench::HISTORY_PATH);
}
