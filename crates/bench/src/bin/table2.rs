//! Table II — sequential execution times (min/avg/max, ms) of CCLLRPC,
//! CCLREMSP, ARUN and AREMSP over the four dataset families.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin table2 [--scale F] [--reps N] [--json PATH]
//! ```

use ccl_bench::BinArgs;
use ccl_core::Algorithm;
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{write_json, Table};
use ccl_datasets::stats::Summary;
use ccl_datasets::suite::{nlcd, small_families, Family};
use serde::Serialize;

const USAGE: &str = "table2: reproduce Table II (sequential algorithm comparison)
  --scale F    NLCD size factor vs Table III (default 0.05)
  --reps N     repetitions per timing cell (default 3)
  --json PATH  write machine-readable results";

#[derive(Serialize)]
struct FamilyResult {
    family: String,
    /// per-algorithm min/avg/max in paper column order
    summaries: Vec<(String, Summary)>,
}

fn measure_family(family: &Family, reps: usize) -> FamilyResult {
    let algos = Algorithm::table2();
    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
    for img in &family.images {
        for (ai, algo) in algos.iter().enumerate() {
            let ms = time_best_of(reps, || algo.run(&img.image));
            per_algo[ai].push(ms);
        }
    }
    FamilyResult {
        family: family.name.to_string(),
        summaries: algos
            .iter()
            .zip(per_algo)
            .map(|(a, times)| (a.name(), Summary::of(&times).expect("non-empty family")))
            .collect(),
    }
}

fn main() {
    let args = BinArgs::parse(USAGE);
    let mut families = small_families();
    families.push(nlcd(args.scale));

    println!("Table II: comparison of sequential execution times [ms]");
    println!(
        "(synthetic stand-in datasets; NLCD at scale {} of Table III)\n",
        args.scale
    );

    let algos = Algorithm::table2();
    let mut table = Table::new(
        std::iter::once("Image type / stat".to_string())
            .chain(algos.iter().map(|a| a.name()))
            .collect::<Vec<_>>(),
    );
    let mut results = Vec::new();
    for family in &families {
        eprintln!(
            "measuring {} ({} images)…",
            family.name,
            family.images.len()
        );
        let res = measure_family(family, args.reps);
        for (row_idx, label) in Summary::ROW_LABELS.iter().enumerate() {
            let mut row = vec![format!("{} {}", res.family, label)];
            for (_, summary) in &res.summaries {
                row.push(format!("{:.2}", summary.row(row_idx)));
            }
            table.push_row(row);
        }
        results.push(res);
    }
    println!("{}", table.render());

    // headline claim check: AREMSP vs CCLLRPC and ARUN on averages
    let mut rel_lrpc = Vec::new();
    let mut rel_arun = Vec::new();
    for res in &results {
        let avg = |name: &str| {
            res.summaries
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.avg)
                .unwrap()
        };
        rel_lrpc.push(avg("CCLLRPC") / avg("ARemSP"));
        rel_arun.push(avg("ARun") / avg("ARemSP"));
    }
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "ARemSP vs CCLLRPC: {:.1}% faster (geo-mean of family averages; paper: 39%)",
        (gm(&rel_lrpc) - 1.0) * 100.0
    );
    println!(
        "ARemSP vs ARun:    {:.1}% faster (geo-mean of family averages; paper: 4%)",
        (gm(&rel_arun) - 1.0) * 100.0
    );

    if let Some(path) = &args.json {
        write_json(path, &results).expect("write json");
        eprintln!("wrote {path}");
    }
}
