//! Figure 4 — PAREMSP speedup vs thread count for the three small
//! (≤ 1 Mpixel) dataset families.
//!
//! Speedup is the family's total sequential AREMSP time divided by its
//! total PAREMSP time. The paper's expected shape: modest speedups
//! (≤ ~10) that flatten or regress as threads grow, because per-thread
//! work becomes too small on ≤ 1 MB images.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin fig4 [--reps N] \
//!     [--threads 2,6,8,16,24] [--json PATH]
//! ```

use ccl_bench::{BinArgs, FIG4_THREADS};
use ccl_core::par::paremsp;
use ccl_core::seq::aremsp;
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{ascii_chart, write_json, Table};
use ccl_datasets::speedup::SpeedupSeries;
use ccl_datasets::suite::small_families;

const USAGE: &str = "fig4: reproduce Figure 4 (speedup on small datasets)
  --reps N         repetitions per timing cell (default 3)
  --threads CSV    thread counts (default 2,6,8,16,24)
  --json PATH      write machine-readable results";

fn main() {
    let args = BinArgs::parse(USAGE);
    let threads = args.threads.clone().unwrap_or(FIG4_THREADS.to_vec());
    let families = small_families();

    println!("Figure 4: PAREMSP speedup, Aerial / Texture / Miscellaneous\n");
    let mut series = Vec::new();
    for family in &families {
        eprintln!("measuring {}…", family.name);
        let seq_total: f64 = family
            .images
            .iter()
            .map(|img| time_best_of(args.reps, || aremsp(&img.image)))
            .sum();
        let per_thread: Vec<(usize, f64)> = threads
            .iter()
            .map(|&t| {
                let total: f64 = family
                    .images
                    .iter()
                    .map(|img| time_best_of(args.reps, || paremsp(&img.image, t)))
                    .sum();
                (t, total)
            })
            .collect();
        series.push(SpeedupSeries::from_times(
            family.name,
            seq_total,
            &per_thread,
        ));
    }

    let mut table = Table::new(
        std::iter::once("#Threads".to_string())
            .chain(series.iter().map(|s| s.label.clone()))
            .collect::<Vec<_>>(),
    );
    for (ti, &t) in threads.iter().enumerate() {
        let mut row = vec![t.to_string()];
        for s in &series {
            row.push(format!("{:.2}", s.speedups[ti]));
        }
        table.push_row(row);
    }
    println!("{}", table.render());

    let chart_series: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|s| {
            (
                s.label.clone(),
                s.threads
                    .iter()
                    .zip(&s.speedups)
                    .map(|(&t, &sp)| (t as f64, sp))
                    .collect(),
            )
        })
        .collect();
    println!("{}", ascii_chart(&chart_series, 48, 14));
    println!(
        "Expected shape (paper): peaks of ~4-10x; speedup can *decrease* at high \
         thread counts on these small images (thread overhead dominates)."
    );

    if let Some(path) = &args.json {
        write_json(path, &series).expect("write json");
        eprintln!("wrote {path}");
    }
}
