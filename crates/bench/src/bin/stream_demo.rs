//! Streaming demo — flat labeler memory vs image height.
//!
//! Streams Bernoulli-noise rasters of growing height (fixed width, fixed
//! band height) through the `ccl-stream` strip labeler and reports wall
//! time, throughput, component count and the labeler's peak resident
//! rows: the resident fraction shrinks as the image grows while
//! throughput stays flat — the bounded-memory claim, measured.
//!
//! Timings include row generation (the stream is produced on the fly and
//! never materialized), so the metric is end-to-end pipeline throughput —
//! stable across runs and comparable across commits via the JSON
//! snapshot (`results/BENCH_stream.json` by default).
//!
//! ```text
//! cargo run --release -p ccl-bench --bin stream_demo \
//!     [--reps N] [--threads CSV] [--merger locked|cas] [--json PATH]
//! ```

use ccl_bench::BinArgs;
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{write_json, Table};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_pipeline::PrefetchRows;
use ccl_stream::{label_stream, label_stream_pipelined, CountComponents, StripConfig};
use serde::Serialize;

const USAGE: &str = "stream_demo: bounded-memory streaming throughput vs image height
  --reps N         repetitions per cell (default 3)
  --threads CSV    in-band scan thread counts (default 1,4)
  --merger KIND    boundary merger for parallel mode: locked (default) or cas
  --fold MODE      accumulation strategy: fused (default) or seq
  --prefetch       generate bands on a worker thread (ccl-pipeline adapter)
  --pipeline       overlap band k's carry seam/fold with band k+1's scan
  --depth N        prefetch queue depth (default 2)
  --json PATH      snapshot path (default results/BENCH_stream.json)";

const WIDTH: usize = 1024;
const BAND_ROWS: usize = 1024;
const HEIGHTS: [usize; 3] = [8_192, 32_768, 131_072];
const DENSITY: f64 = 0.5;

#[derive(Serialize)]
struct StreamRow {
    height: usize,
    megapixels: f64,
    components: u64,
    peak_resident_rows: usize,
    /// Peak resident rows as a fraction of the image height — the
    /// bounded-memory signal (halves every time the height doubles).
    resident_fraction: f64,
    /// Best-of wall milliseconds per thread count, `threads` order.
    ms: Vec<f64>,
    /// End-to-end throughput (generate + label + analyze) at the best
    /// thread count, megapixels per second.
    best_mpix_per_s: f64,
}

#[derive(Serialize)]
struct StreamBench {
    width: usize,
    band_rows: usize,
    density: f64,
    threads: Vec<usize>,
    merger: String,
    /// Accumulation strategy (`--fold`): `fused` folds component analysis
    /// into the scan workers, `seq` is the sequential per-pixel baseline.
    fold: String,
    /// Whether band generation ran on a `ccl-pipeline` prefetch worker
    /// (`--prefetch`), overlapping generation with labeling.
    prefetch: bool,
    /// Whether the pipelined scan ∥ merge strip executor ran
    /// (`--pipeline`).
    pipeline: bool,
    rows: Vec<StreamRow>,
}

fn main() {
    let args = BinArgs::parse(USAGE);
    let threads = args.threads.clone().unwrap_or_else(|| vec![1, 4]);
    let merger = args.merger_or_default();
    let fold = args.fold_or_default();
    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/BENCH_stream.json".to_string());

    let mode = match (args.prefetch, args.pipeline) {
        (true, true) => ", decode∥scan∥merge",
        (true, false) => ", prefetched",
        (false, true) => ", scan∥merge",
        (false, false) => "",
    };
    println!(
        "Streaming {WIDTH}-wide Bernoulli rasters in {BAND_ROWS}-row bands \
         (density {DENSITY}, merger {merger}, fold {fold}{mode})\n"
    );
    let mut table = Table::new(
        [
            "Height",
            "Mpixel",
            "Components",
            "Resident rows",
            "Resident",
        ]
        .into_iter()
        .map(str::to_string)
        .chain(threads.iter().map(|t| format!("{t}t [ms]")))
        .chain(std::iter::once("best [Mpx/s]".to_string()))
        .collect::<Vec<_>>(),
    );

    let mut rows = Vec::new();
    for &height in &HEIGHTS {
        let mpix = (WIDTH * height) as f64 / 1e6;
        let mut ms = Vec::new();
        let mut components = 0u64;
        let mut peak = 0usize;
        for &t in &threads {
            let cfg = StripConfig::parallel(t).with_merger(merger).with_fold(fold);
            let best = time_best_of(args.reps, || {
                let source = bernoulli_stream(WIDTH, height, DENSITY, height as u64);
                let mut sink = CountComponents::default();
                let stats = match (args.prefetch, args.pipeline) {
                    (true, true) => {
                        let mut staged = PrefetchRows::with_depth(source, BAND_ROWS, args.depth);
                        label_stream_pipelined(&mut staged, BAND_ROWS, cfg.clone(), &mut sink)
                    }
                    (true, false) => {
                        let mut staged = PrefetchRows::with_depth(source, BAND_ROWS, args.depth);
                        label_stream(&mut staged, BAND_ROWS, cfg.clone(), &mut sink)
                    }
                    (false, true) => {
                        let mut source = source;
                        label_stream_pipelined(&mut source, BAND_ROWS, cfg.clone(), &mut sink)
                    }
                    (false, false) => {
                        let mut source = source;
                        label_stream(&mut source, BAND_ROWS, cfg.clone(), &mut sink)
                    }
                }
                .expect("generator streams are infallible");
                components = stats.components;
                peak = stats.peak_resident_rows;
                stats
            });
            ms.push(best);
        }
        let best_ms = ms.iter().cloned().fold(f64::INFINITY, f64::min);
        let row = StreamRow {
            height,
            megapixels: mpix,
            components,
            peak_resident_rows: peak,
            resident_fraction: peak as f64 / height as f64,
            ms: ms.clone(),
            best_mpix_per_s: mpix / (best_ms / 1e3),
        };
        table.push_row(
            [
                height.to_string(),
                format!("{mpix:.1}"),
                row.components.to_string(),
                row.peak_resident_rows.to_string(),
                format!("{:.3}%", row.resident_fraction * 100.0),
            ]
            .into_iter()
            .chain(row.ms.iter().map(|m| format!("{m:.1}")))
            .chain(std::iter::once(format!("{:.1}", row.best_mpix_per_s)))
            .collect::<Vec<_>>(),
        );
        rows.push(row);
    }
    println!("{}", table.render());
    if args.pipeline {
        println!(
            "Resident rows stay at {} (two bands + carry row) at every \
             height: labeling memory is O(band), not O(image).",
            2 * BAND_ROWS + 1
        );
    } else {
        println!(
            "Resident rows stay at {} (band + carry row) at every height: \
             labeling memory is O(band), not O(image).",
            BAND_ROWS + 1
        );
    }

    let result = StreamBench {
        width: WIDTH,
        band_rows: BAND_ROWS,
        density: DENSITY,
        threads,
        merger: merger.to_string(),
        fold: fold.to_string(),
        prefetch: args.prefetch,
        pipeline: args.pipeline,
        rows,
    };
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    write_json(&json_path, &result).expect("write json");
    ccl_bench::append_history("stream_demo", &result).expect("append history");
    eprintln!("wrote {json_path} (+ {})", ccl_bench::HISTORY_PATH);
}
