//! Table IV — PAREMSP execution times (min/avg/max, ms) for 2/6/16/24
//! threads over the four dataset families.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin table4 [--scale F] [--reps N] \
//!     [--threads 2,6,16,24] [--json PATH]
//! ```

use ccl_bench::{BinArgs, TABLE4_THREADS};
use ccl_core::par::{paremsp_with, ParemspConfig};
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{write_json, Table};
use ccl_datasets::stats::Summary;
use ccl_datasets::suite::{nlcd, small_families};
use serde::Serialize;

const USAGE: &str = "table4: reproduce Table IV (PAREMSP times per thread count)
  --scale F        NLCD size factor vs Table III (default 0.05)
  --reps N         repetitions per timing cell (default 3)
  --threads CSV    thread counts (default 2,6,16,24)
  --merger KIND    boundary merger: locked (default) or cas
  --json PATH      write machine-readable results";

#[derive(Serialize)]
struct FamilyResult {
    family: String,
    threads: Vec<usize>,
    /// min/avg/max per thread count, same order as `threads`
    summaries: Vec<Summary>,
}

fn main() {
    let args = BinArgs::parse(USAGE);
    let threads = args.threads.clone().unwrap_or(TABLE4_THREADS.to_vec());
    let merger = args.merger_or_default();
    let mut families = small_families();
    families.push(nlcd(args.scale));

    println!("Table IV: execution time [ms] of PAREMSP for various # threads");
    println!(
        "(synthetic stand-in datasets; NLCD at scale {} of Table III)\n",
        args.scale
    );

    let mut table = Table::new(
        std::iter::once("Image type / stat".to_string())
            .chain(threads.iter().map(|t| t.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut results = Vec::new();
    for family in &families {
        eprintln!(
            "measuring {} ({} images)…",
            family.name,
            family.images.len()
        );
        let mut per_thread: Vec<Vec<f64>> = vec![Vec::new(); threads.len()];
        for img in &family.images {
            for (ti, &t) in threads.iter().enumerate() {
                let cfg = ParemspConfig::with_threads(t).with_merger(merger);
                let ms = time_best_of(args.reps, || paremsp_with(&img.image, &cfg));
                per_thread[ti].push(ms);
            }
        }
        let summaries: Vec<Summary> = per_thread
            .iter()
            .map(|times| Summary::of(times).expect("non-empty family"))
            .collect();
        for (row_idx, label) in Summary::ROW_LABELS.iter().enumerate() {
            let mut row = vec![format!("{} {}", family.name, label)];
            for s in &summaries {
                row.push(format!("{:.2}", s.row(row_idx)));
            }
            table.push_row(row);
        }
        results.push(FamilyResult {
            family: family.name.to_string(),
            threads: threads.clone(),
            summaries,
        });
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper): small families stop improving (or regress) past ~16 \
         threads; NLCD keeps improving through 24."
    );

    if let Some(path) = &args.json {
        write_json(path, &results).expect("write json");
        eprintln!("wrote {path}");
    }
}
