//! Figure 5 — PAREMSP speedup on the six NLCD images: (a) local phase
//! only, (b) local + merge. Also prints Table III (the image sizes).
//!
//! Baseline is PAREMSP at one thread (identical code path to AREMSP plus
//! negligible partition overhead), phase-timed, so both subfigures
//! compare like with like.
//!
//! ```text
//! cargo run --release -p ccl-bench --bin fig5 [--scale F] [--reps N] \
//!     [--threads 1,2,4,8,12,16,20,24] [--json PATH] [--print-sizes]
//! ```

use ccl_bench::{paremsp_phase_ms_best_of, BinArgs, FIG5_THREADS};
use ccl_core::par::ParemspConfig;
use ccl_datasets::report::{ascii_chart, write_json, Table};
use ccl_datasets::speedup::SpeedupSeries;
use ccl_datasets::suite::{nlcd, NLCD_SIZES_MB};
use serde::Serialize;

const USAGE: &str = "fig5: reproduce Figure 5 (NLCD speedups) and Table III (sizes)
  --scale F        NLCD size factor vs Table III (default 0.05)
  --reps N         repetitions per timing cell (default 3)
  --threads CSV    thread counts (default 1,2,4,8,12,16,20,24)
  --merger KIND    boundary merger: locked (default) or cas
  --json PATH      write machine-readable results
  --print-sizes    print Table III only and exit";

#[derive(Serialize)]
struct Fig5Results {
    scale: f64,
    local: Vec<SpeedupSeries>,
    local_plus_merge: Vec<SpeedupSeries>,
    total: Vec<SpeedupSeries>,
}

fn print_table3(scale: f64) {
    let mut t3 = Table::new(["Image name", "Table III size [MB]", "generated [MB]"]);
    let fam = nlcd(scale);
    for (img, &mb) in fam.images.iter().zip(&NLCD_SIZES_MB) {
        t3.push_row([
            img.name.clone(),
            format!("{mb}"),
            format!("{:.2}", img.size_mb()),
        ]);
    }
    println!("Table III: images and their sizes (scale {scale})\n");
    println!("{}", t3.render());
}

fn main() {
    let args = BinArgs::parse(USAGE);
    if args.print_sizes {
        print_table3(args.scale);
        return;
    }
    let threads = args.threads.clone().unwrap_or(FIG5_THREADS.to_vec());
    let merger = args.merger_or_default();
    print_table3(args.scale);

    let fam = nlcd(args.scale);
    let mut local = Vec::new();
    let mut local_merge = Vec::new();
    let mut total = Vec::new();
    for img in &fam.images {
        eprintln!("measuring {} ({:.1} MB)…", img.name, img.size_mb());
        // phase-timed best-of-reps at each thread count
        let time_at = |t: usize| {
            let cfg = ParemspConfig::with_threads(t).with_merger(merger);
            let best = paremsp_phase_ms_best_of(&img.image, &cfg, args.reps);
            (best.scan, best.local_plus_merge, best.total)
        };
        let base = time_at(1);
        let mut pts_local = Vec::new();
        let mut pts_lm = Vec::new();
        let mut pts_total = Vec::new();
        for &t in &threads {
            let (scan, lm, tot) = if t == 1 { base } else { time_at(t) };
            pts_local.push((t, scan));
            pts_lm.push((t, lm));
            pts_total.push((t, tot));
        }
        local.push(SpeedupSeries::from_times(&img.name, base.0, &pts_local));
        local_merge.push(SpeedupSeries::from_times(&img.name, base.1, &pts_lm));
        total.push(SpeedupSeries::from_times(&img.name, base.2, &pts_total));
    }

    for (title, series) in [
        ("Figure 5a: speedup, local phase (scan) only", &local),
        ("Figure 5b: speedup, local + merge", &local_merge),
        ("(extra) overall speedup incl. flatten + relabel", &total),
    ] {
        println!("\n{title}\n");
        let mut table = Table::new(
            std::iter::once("#Threads".to_string())
                .chain(series.iter().map(|s| s.label.clone()))
                .collect::<Vec<_>>(),
        );
        for (ti, &t) in threads.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for s in series.iter() {
                row.push(format!("{:.2}", s.speedups[ti]));
            }
            table.push_row(row);
        }
        println!("{}", table.render());
        let chart: Vec<(String, Vec<(f64, f64)>)> = series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.threads
                        .iter()
                        .zip(&s.speedups)
                        .map(|(&t, &sp)| (t as f64, sp))
                        .collect(),
                )
            })
            .collect();
        println!("{}", ascii_chart(&chart, 48, 14));
    }
    let peak = local_merge.last().map(|s| s.peak()).unwrap_or(0.0);
    println!(
        "Peak local+merge speedup on the largest image: {peak:.1} \
         (paper: 20.1 at 24 threads on the 465.20 MB image)"
    );
    println!(
        "Expected shape (paper): 5a ≈ 5b (merge overhead negligible); speedup \
         increases with image size; near-linear for the largest images."
    );

    if let Some(path) = &args.json {
        write_json(
            path,
            &Fig5Results {
                scale: args.scale,
                local,
                local_plus_merge: local_merge,
                total,
            },
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
}
