//! Tile-grid demo — 2-D out-of-core labeling throughput and memory.
//!
//! Streams Bernoulli-noise rasters of growing height through the
//! `ccl-tiles` grid labeler (generator → tile windows → per-tile RemSP →
//! dual-orientation seam merges → on-the-fly analysis) and reports wall
//! time, throughput, component count and the labeler's peak resident
//! rows — at most one tile row plus the carry row, however tall the
//! image grows. A final column times the fully out-of-core pipeline
//! (labels *spilled to disk* as raw `u32` tiles with a sidecar merge
//! table, patched on close) at the smallest height.
//!
//! Timings include row generation, so the metric is end-to-end pipeline
//! throughput, comparable across commits via the JSON snapshot
//! (`results/BENCH_tiles.json`) and the committed history line
//! (`results/BENCH_HISTORY.jsonl`).
//!
//! ```text
//! cargo run --release -p ccl-bench --bin tiles_demo \
//!     [--reps N] [--threads CSV] [--merger locked|cas] [--json PATH]
//! ```

use ccl_bench::BinArgs;
use ccl_datasets::harness::time_best_of;
use ccl_datasets::report::{write_json, Table};
use ccl_datasets::synth::stream::bernoulli_stream;
use ccl_pipeline::PrefetchTiles;
use ccl_stream::CountComponents;
use ccl_tiles::{
    label_tiles, label_tiles_pipelined, spill_tiles, spill_tiles_pipelined, GridSource,
    SpillFormat, TileGridConfig, TileGridStats, TilesError,
};
use serde::Serialize;

const USAGE: &str = "tiles_demo: 2-D tile-grid out-of-core labeling throughput vs image height
  --reps N         repetitions per cell (default 3)
  --threads CSV    in-row scan thread counts (default 1,4)
  --merger KIND    boundary merger for parallel mode: locked (default) or cas
  --fold MODE      accumulation strategy: fused (default) or seq
  --prefetch       generate tile rows on a worker thread (ccl-pipeline adapter)
  --pipeline       overlap row k's merge/spill with row k+1's scans
  --depth N        prefetch queue depth (default 2)
  --json PATH      snapshot path (default results/BENCH_tiles.json)";

const WIDTH: usize = 1024;
const TILE: usize = 256;
const HEIGHTS: [usize; 3] = [4_096, 16_384, 65_536];
const DENSITY: f64 = 0.5;

#[derive(Serialize)]
struct TilesRow {
    height: usize,
    megapixels: f64,
    components: u64,
    peak_resident_rows: usize,
    /// Peak resident rows as a fraction of the image height — the
    /// bounded-memory signal (quarters every time the height quadruples).
    resident_fraction: f64,
    /// Best-of wall milliseconds per thread count, `threads` order.
    ms: Vec<f64>,
    /// End-to-end throughput (generate + tile + label + analyze) at the
    /// best thread count, megapixels per second.
    best_mpix_per_s: f64,
}

#[derive(Serialize)]
struct TilesBench {
    width: usize,
    tile: usize,
    density: f64,
    threads: Vec<usize>,
    merger: String,
    /// Accumulation strategy (`--fold`): `fused` folds component analysis
    /// into the tile scans, `seq` is the sequential per-pixel baseline.
    fold: String,
    /// Whether tile-row generation ran on a `ccl-pipeline` prefetch
    /// worker (`--prefetch`).
    prefetch: bool,
    /// Whether the pipelined scan ∥ merge executor ran (`--pipeline`).
    pipeline: bool,
    rows: Vec<TilesRow>,
    /// Wall milliseconds of the fully out-of-core pipeline (label +
    /// spill raw-u32 tiles to disk + patch on close) at the smallest
    /// height, sequential mode.
    spill_ms: f64,
    spill_height: usize,
}

/// Labels one generated grid with the mode the flags selected.
fn run_labeling(
    args: &BinArgs,
    cfg: &TileGridConfig,
    height: usize,
) -> Result<TileGridStats, TilesError> {
    let source = bernoulli_stream(WIDTH, height, DENSITY, height as u64);
    let grid = GridSource::new(source, TILE, TILE);
    let mut sink = CountComponents::default();
    match (args.prefetch, args.pipeline) {
        (true, true) => {
            let mut staged = PrefetchTiles::with_depth(grid, args.depth);
            label_tiles_pipelined(&mut staged, cfg.clone(), &mut sink)
        }
        (true, false) => {
            let mut staged = PrefetchTiles::with_depth(grid, args.depth);
            label_tiles(&mut staged, cfg.clone(), &mut sink)
        }
        (false, true) => {
            let mut grid = grid;
            label_tiles_pipelined(&mut grid, cfg.clone(), &mut sink)
        }
        (false, false) => {
            let mut grid = grid;
            label_tiles(&mut grid, cfg.clone(), &mut sink)
        }
    }
}

fn main() {
    let args = BinArgs::parse(USAGE);
    let threads = args.threads.clone().unwrap_or_else(|| vec![1, 4]);
    let merger = args.merger_or_default();
    let fold = args.fold_or_default();
    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/BENCH_tiles.json".to_string());

    let mode = match (args.prefetch, args.pipeline) {
        (true, true) => ", decode∥scan∥merge",
        (true, false) => ", prefetched",
        (false, true) => ", scan∥merge",
        (false, false) => "",
    };
    println!(
        "Tiling {WIDTH}-wide Bernoulli rasters into {TILE}x{TILE} tiles \
         (density {DENSITY}, merger {merger}, fold {fold}{mode})\n"
    );
    let mut table = Table::new(
        [
            "Height",
            "Mpixel",
            "Components",
            "Resident rows",
            "Resident",
        ]
        .into_iter()
        .map(str::to_string)
        .chain(threads.iter().map(|t| format!("{t}t [ms]")))
        .chain(std::iter::once("best [Mpx/s]".to_string()))
        .collect::<Vec<_>>(),
    );

    let mut rows = Vec::new();
    for &height in &HEIGHTS {
        let mpix = (WIDTH * height) as f64 / 1e6;
        let mut ms = Vec::new();
        let mut components = 0u64;
        let mut peak = 0usize;
        for &t in &threads {
            let cfg = TileGridConfig::parallel(t)
                .with_merger(merger)
                .with_fold(fold);
            let best = time_best_of(args.reps, || {
                let stats =
                    run_labeling(&args, &cfg, height).expect("generator streams are infallible");
                components = stats.components;
                peak = stats.peak_resident_rows;
                stats
            });
            ms.push(best);
        }
        let best_ms = ms.iter().cloned().fold(f64::INFINITY, f64::min);
        let row = TilesRow {
            height,
            megapixels: mpix,
            components,
            peak_resident_rows: peak,
            resident_fraction: peak as f64 / height as f64,
            ms: ms.clone(),
            best_mpix_per_s: mpix / (best_ms / 1e3),
        };
        table.push_row(
            [
                height.to_string(),
                format!("{mpix:.1}"),
                row.components.to_string(),
                row.peak_resident_rows.to_string(),
                format!("{:.3}%", row.resident_fraction * 100.0),
            ]
            .into_iter()
            .chain(row.ms.iter().map(|m| format!("{m:.1}")))
            .chain(std::iter::once(format!("{:.1}", row.best_mpix_per_s)))
            .collect::<Vec<_>>(),
        );
        rows.push(row);
    }
    println!("{}", table.render());
    if args.pipeline {
        println!(
            "Resident rows stay at {} (two tile rows + carry row) at every \
             height: labeling memory is O(tile row), not O(image).",
            2 * TILE + 1
        );
    } else {
        println!(
            "Resident rows stay at {} (tile row + carry row) at every height: \
             labeling memory is O(tile row), not O(image).",
            TILE + 1
        );
    }

    // The fully out-of-core pipeline: spill labeled tiles to disk and
    // patch final ids on close (pipelined overlaps the spill writes with
    // the next row's scans when --pipeline is set).
    let spill_height = HEIGHTS[0];
    let spill_dir = ccl_tiles::temp_spill_dir("demo");
    let spill_ms = time_best_of(args.reps, || {
        let _ = std::fs::remove_dir_all(&spill_dir);
        let source = bernoulli_stream(WIDTH, spill_height, DENSITY, spill_height as u64);
        let mut grid = GridSource::new(source, TILE, TILE);
        if args.pipeline {
            spill_tiles_pipelined(
                &mut grid,
                TileGridConfig::default(),
                &spill_dir,
                SpillFormat::RawU32,
            )
        } else {
            spill_tiles(
                &mut grid,
                TileGridConfig::default(),
                &spill_dir,
                SpillFormat::RawU32,
            )
        }
        .expect("spill to temp dir")
    });
    let _ = std::fs::remove_dir_all(&spill_dir);
    let spill_mpix = (WIDTH * spill_height) as f64 / 1e6;
    println!(
        "\nOut-of-core output: label + spill + patch {spill_mpix:.1} Mpixel \
         in {spill_ms:.1} ms ({:.1} Mpx/s incl. disk)",
        spill_mpix / (spill_ms / 1e3)
    );

    let result = TilesBench {
        width: WIDTH,
        tile: TILE,
        density: DENSITY,
        threads,
        merger: merger.to_string(),
        fold: fold.to_string(),
        prefetch: args.prefetch,
        pipeline: args.pipeline,
        rows,
        spill_ms,
        spill_height,
    };
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    write_json(&json_path, &result).expect("write json");
    ccl_bench::append_history("tiles_demo", &result).expect("append history");
    eprintln!("wrote {json_path} (+ {})", ccl_bench::HISTORY_PATH);
}
