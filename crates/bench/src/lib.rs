//! # ccl-bench
//!
//! Benchmark harness reproducing **every table and figure** of Gupta et
//! al. (IPPS 2014). Two layers:
//!
//! * **Table binaries** (`src/bin/`): print paper-formatted tables and
//!   ASCII figures from full measurement sweeps —
//!   `cargo run --release -p ccl-bench --bin table2` (and `table4`,
//!   `fig4`, `fig5`, `stream_demo`, `repro_all`). See each binary's
//!   `--help`. `repro_all` also leaves two trajectory snapshots under
//!   `results/` (`BENCH_paremsp.json`, `BENCH_stream.json`) so perf is
//!   tracked commit to commit.
//! * **Criterion benches** (`benches/`): statistical micro-benchmarks per
//!   experiment, the three design-choice ablations of DESIGN.md
//!   (union-find variant, scan strategy, merger implementation), and the
//!   `ccl-stream` scaling bench — `cargo bench -p ccl-bench`.
//!
//! This library crate holds the shared experiment configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Thread counts of Table IV.
pub const TABLE4_THREADS: [usize; 4] = [2, 6, 16, 24];

/// Thread counts of Figure 4.
pub const FIG4_THREADS: [usize; 5] = [2, 6, 8, 16, 24];

/// Thread counts swept in Figure 5 (the paper plots 1–24).
pub const FIG5_THREADS: [usize; 8] = [1, 2, 4, 8, 12, 16, 20, 24];

/// Default NLCD scale for the table binaries: 0.05 × Table III keeps the
/// largest image at ≈ 23 Mpixel, big enough to show near-linear scaling
/// while regenerating in seconds. Use `--scale 1.0` for full fidelity.
pub const DEFAULT_NLCD_SCALE: f64 = 0.05;

/// Best-of-`reps` PAREMSP phase timings in milliseconds: every metric is
/// the minimum across repetitions, taken independently (the same
/// semantics fig5 has always used for its scan / local+merge / total
/// series). Shared by `fig5` and `repro_all`'s `BENCH_paremsp.json`
/// snapshot so the phase-timing logic exists exactly once.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct PhaseMsBest {
    /// Phase 1 (per-chunk scans), the paper's "local" time.
    pub scan: f64,
    /// Phase 2 (boundary merge).
    pub merge: f64,
    /// Phase 3 (FLATTEN).
    pub flatten: f64,
    /// Phase 4 (relabel).
    pub relabel: f64,
    /// Scan + merge — Figure 5b's quantity.
    pub local_plus_merge: f64,
    /// All four phases.
    pub total: f64,
}

/// Runs PAREMSP `reps` times (at least once) and returns the per-metric
/// best-of phase timings.
pub fn paremsp_phase_ms_best_of(
    image: &ccl_image::BinaryImage,
    cfg: &ccl_core::par::ParemspConfig,
    reps: usize,
) -> PhaseMsBest {
    let mut best = PhaseMsBest {
        scan: f64::INFINITY,
        merge: f64::INFINITY,
        flatten: f64::INFINITY,
        relabel: f64::INFINITY,
        local_plus_merge: f64::INFINITY,
        total: f64::INFINITY,
    };
    for _ in 0..reps.max(1) {
        let (_, ph) = ccl_core::par::paremsp_with(image, cfg);
        best.scan = best.scan.min(ph.scan.as_secs_f64() * 1e3);
        best.merge = best.merge.min(ph.merge.as_secs_f64() * 1e3);
        best.flatten = best.flatten.min(ph.flatten.as_secs_f64() * 1e3);
        best.relabel = best.relabel.min(ph.relabel.as_secs_f64() * 1e3);
        best.local_plus_merge = best
            .local_plus_merge
            .min(ph.local_plus_merge().as_secs_f64() * 1e3);
        best.total = best.total.min(ph.total().as_secs_f64() * 1e3);
    }
    best
}

/// Tiny CLI-argument helper shared by the table binaries: supports
/// `--scale <f64>`, `--reps <usize>`, `--threads <csv>`, `--json <path>`,
/// `--merger <locked|cas>`, `--fold <seq|fused>`, `--prefetch`,
/// `--pipeline`, `--depth <n>`, `--print-sizes` and `--help`.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// NLCD scale factor (fraction of the Table III sizes).
    pub scale: f64,
    /// Timing repetitions per cell (best-of).
    pub reps: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional thread-count override.
    pub threads: Option<Vec<usize>>,
    /// Optional boundary-merger override (parsed via
    /// [`MergerKind::from_str`](std::str::FromStr)).
    pub merger: Option<ccl_core::par::MergerKind>,
    /// Optional accumulation-strategy override (`--fold seq|fused`).
    pub fold: Option<ccl_stream::FoldMode>,
    /// `--prefetch`: wrap the source in a `ccl-pipeline` prefetcher
    /// (decode on a worker thread).
    pub prefetch: bool,
    /// `--pipeline`: use the pipelined tile-row executor
    /// (scan ∥ merge) where the binary supports it.
    pub pipeline: bool,
    /// `--depth <n>`: prefetch queue depth (default 2).
    pub depth: usize,
    /// `--print-sizes` flag (fig5: print Table III).
    pub print_sizes: bool,
}

impl Default for BinArgs {
    fn default() -> Self {
        BinArgs {
            scale: DEFAULT_NLCD_SCALE,
            reps: 3,
            json: None,
            threads: None,
            merger: None,
            fold: None,
            prefetch: false,
            pipeline: false,
            depth: 2,
            print_sizes: false,
        }
    }
}

impl BinArgs {
    /// The boundary merger to use: the `--merger` override when given,
    /// otherwise the default. Shared by every binary that sweeps PAREMSP
    /// (`table4`, `fig5`, `stream_demo`, `tiles_demo`) so the flag's
    /// semantics exist exactly once.
    pub fn merger_or_default(&self) -> ccl_core::par::MergerKind {
        self.merger.unwrap_or_default()
    }

    /// The accumulation strategy to use: the `--fold` override when
    /// given, otherwise the default ([`ccl_stream::FoldMode::Fused`]).
    /// Shared by `stream_demo`, `tiles_demo` and `pipeline_demo`.
    pub fn fold_or_default(&self) -> ccl_stream::FoldMode {
        self.fold.unwrap_or_default()
    }

    /// Parses `std::env::args`, printing `usage` and exiting on `--help`
    /// or a malformed argument.
    pub fn parse(usage: &str) -> BinArgs {
        let mut out = BinArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}\n{usage}");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--scale" => {
                    out.scale = value("--scale").parse().unwrap_or_else(|_| {
                        eprintln!("invalid --scale\n{usage}");
                        std::process::exit(2);
                    })
                }
                "--reps" => {
                    out.reps = value("--reps").parse().unwrap_or_else(|_| {
                        eprintln!("invalid --reps\n{usage}");
                        std::process::exit(2);
                    })
                }
                "--json" => out.json = Some(value("--json")),
                "--threads" => {
                    let csv = value("--threads");
                    let parsed: Result<Vec<usize>, _> =
                        csv.split(',').map(str::trim).map(str::parse).collect();
                    match parsed {
                        Ok(t) if !t.is_empty() && t.iter().all(|&x| x >= 1) => {
                            out.threads = Some(t)
                        }
                        _ => {
                            eprintln!("invalid --threads\n{usage}");
                            std::process::exit(2);
                        }
                    }
                }
                "--merger" => {
                    out.merger = Some(value("--merger").parse().unwrap_or_else(|e| {
                        eprintln!("invalid --merger: {e}\n{usage}");
                        std::process::exit(2);
                    }))
                }
                "--fold" => {
                    out.fold = Some(value("--fold").parse().unwrap_or_else(|e| {
                        eprintln!("invalid --fold: {e}\n{usage}");
                        std::process::exit(2);
                    }))
                }
                "--prefetch" => out.prefetch = true,
                "--pipeline" => out.pipeline = true,
                "--depth" => {
                    out.depth = value("--depth")
                        .parse()
                        .ok()
                        .filter(|&d| d >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("invalid --depth\n{usage}");
                            std::process::exit(2);
                        })
                }
                "--print-sizes" => out.print_sizes = true,
                "--help" | "-h" => {
                    println!("{usage}");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

/// Path of the committed perf-trajectory log appended by `repro_all`,
/// `stream_demo` and `tiles_demo`: one JSON object per line, so
/// regressions are visible across commits (`git log -p results/…`) and
/// CI uploads the whole `results/` directory as an artifact.
pub const HISTORY_PATH: &str = "results/BENCH_HISTORY.jsonl";

/// Appends one record to [`HISTORY_PATH`]:
/// `{"bench": <name>, "unix_ms": <now>, "data": <value>}` on a single
/// line. Creates `results/` when missing.
pub fn append_history<T: serde::Serialize>(bench: &str, value: &T) -> std::io::Result<()> {
    use std::io::Write as _;
    let to_io = |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    // the name goes through the serializer too, so quotes/backslashes in
    // a future bench name can never corrupt the line log
    let name = serde_json::to_string_pretty(&bench).map_err(to_io)?;
    let data = serde_json::to_string_pretty(value).map_err(to_io)?;
    let line = format!(
        "{{\"bench\": {name}, \"unix_ms\": {unix_ms}, \"data\": {}}}\n",
        compact_json(&data)
    );
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::options()
        .create(true)
        .append(true)
        .open(HISTORY_PATH)?;
    f.write_all(line.as_bytes())
}

/// Collapses pretty-printed JSON to one line by dropping all whitespace
/// outside string literals (JSON whitespace is insignificant there). The
/// offline `serde_json` shim only pretty-prints; this keeps the history
/// file one-record-per-line regardless.
pub fn compact_json(pretty: &str) -> String {
    let mut out = String::with_capacity(pretty.len());
    let mut in_string = false;
    let mut escaped = false;
    for ch in pretty.chars() {
        if in_string {
            out.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
        } else if ch == '"' {
            in_string = true;
            out.push(ch);
        } else if !ch.is_whitespace() {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = BinArgs::default();
        assert_eq!(a.scale, DEFAULT_NLCD_SCALE);
        assert!(a.reps >= 1);
        assert!(a.json.is_none());
        assert!(a.merger.is_none());
        assert!(a.fold.is_none());
        assert_eq!(a.fold_or_default(), ccl_stream::FoldMode::Fused);
        assert!(!a.prefetch);
        assert!(!a.pipeline);
        assert_eq!(a.depth, 2);
        assert!(!a.print_sizes);
    }

    #[test]
    fn thread_constants_match_paper() {
        assert_eq!(TABLE4_THREADS, [2, 6, 16, 24]);
        assert_eq!(FIG4_THREADS, [2, 6, 8, 16, 24]);
        assert!(FIG5_THREADS.contains(&24));
    }

    #[test]
    fn merger_or_default_prefers_override() {
        use ccl_core::par::MergerKind;
        let mut a = BinArgs::default();
        assert_eq!(a.merger_or_default(), MergerKind::default());
        a.merger = Some(MergerKind::Cas);
        assert_eq!(a.merger_or_default(), MergerKind::Cas);
    }

    #[test]
    fn compact_json_strips_formatting_but_not_strings() {
        let pretty = "{\n  \"a b\": [\n    1,\n    \"x \\\" y\\n\"\n  ]\n}";
        assert_eq!(compact_json(pretty), "{\"a b\":[1,\"x \\\" y\\n\"]}");
    }

    #[test]
    fn compact_json_round_trips_serializer_output() {
        #[derive(serde::Serialize)]
        struct S {
            name: String,
            xs: Vec<f64>,
        }
        let s = S {
            name: "two words".into(),
            xs: vec![1.5, 2.0],
        };
        let compact = compact_json(&serde_json::to_string_pretty(&s).unwrap());
        assert!(!compact.contains('\n'));
        assert!(compact.contains("\"two words\""));
    }
}
