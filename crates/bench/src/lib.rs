//! # ccl-bench
//!
//! Benchmark harness reproducing **every table and figure** of Gupta et
//! al. (IPPS 2014). Two layers:
//!
//! * **Table binaries** (`src/bin/`): print paper-formatted tables and
//!   ASCII figures from full measurement sweeps —
//!   `cargo run --release -p ccl-bench --bin table2` (and `table4`,
//!   `fig4`, `fig5`, `repro_all`). See each binary's `--help`.
//! * **Criterion benches** (`benches/`): statistical micro-benchmarks per
//!   experiment plus the three design-choice ablations of DESIGN.md
//!   (union-find variant, scan strategy, merger implementation) —
//!   `cargo bench -p ccl-bench`.
//!
//! This library crate holds the shared experiment configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Thread counts of Table IV.
pub const TABLE4_THREADS: [usize; 4] = [2, 6, 16, 24];

/// Thread counts of Figure 4.
pub const FIG4_THREADS: [usize; 5] = [2, 6, 8, 16, 24];

/// Thread counts swept in Figure 5 (the paper plots 1–24).
pub const FIG5_THREADS: [usize; 8] = [1, 2, 4, 8, 12, 16, 20, 24];

/// Default NLCD scale for the table binaries: 0.05 × Table III keeps the
/// largest image at ≈ 23 Mpixel, big enough to show near-linear scaling
/// while regenerating in seconds. Use `--scale 1.0` for full fidelity.
pub const DEFAULT_NLCD_SCALE: f64 = 0.05;

/// Tiny CLI-argument helper shared by the table binaries: supports
/// `--scale <f64>`, `--reps <usize>`, `--threads <csv>`, `--json <path>`,
/// `--print-sizes` and `--help`.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// NLCD scale factor (fraction of the Table III sizes).
    pub scale: f64,
    /// Timing repetitions per cell (best-of).
    pub reps: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional thread-count override.
    pub threads: Option<Vec<usize>>,
    /// `--print-sizes` flag (fig5: print Table III).
    pub print_sizes: bool,
}

impl Default for BinArgs {
    fn default() -> Self {
        BinArgs {
            scale: DEFAULT_NLCD_SCALE,
            reps: 3,
            json: None,
            threads: None,
            print_sizes: false,
        }
    }
}

impl BinArgs {
    /// Parses `std::env::args`, printing `usage` and exiting on `--help`
    /// or a malformed argument.
    pub fn parse(usage: &str) -> BinArgs {
        let mut out = BinArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}\n{usage}");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--scale" => {
                    out.scale = value("--scale").parse().unwrap_or_else(|_| {
                        eprintln!("invalid --scale\n{usage}");
                        std::process::exit(2);
                    })
                }
                "--reps" => {
                    out.reps = value("--reps").parse().unwrap_or_else(|_| {
                        eprintln!("invalid --reps\n{usage}");
                        std::process::exit(2);
                    })
                }
                "--json" => out.json = Some(value("--json")),
                "--threads" => {
                    let csv = value("--threads");
                    let parsed: Result<Vec<usize>, _> =
                        csv.split(',').map(str::trim).map(str::parse).collect();
                    match parsed {
                        Ok(t) if !t.is_empty() && t.iter().all(|&x| x >= 1) => {
                            out.threads = Some(t)
                        }
                        _ => {
                            eprintln!("invalid --threads\n{usage}");
                            std::process::exit(2);
                        }
                    }
                }
                "--print-sizes" => out.print_sizes = true,
                "--help" | "-h" => {
                    println!("{usage}");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = BinArgs::default();
        assert_eq!(a.scale, DEFAULT_NLCD_SCALE);
        assert!(a.reps >= 1);
        assert!(a.json.is_none());
        assert!(!a.print_sizes);
    }

    #[test]
    fn thread_constants_match_paper() {
        assert_eq!(TABLE4_THREADS, [2, 6, 16, 24]);
        assert_eq!(FIG4_THREADS, [2, 6, 8, 16, 24]);
        assert!(FIG5_THREADS.contains(&24));
    }
}
