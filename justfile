# Local dev targets mirroring .github/workflows/ci.yml step-for-step, so
# local runs and CI cannot drift. `just ci` is the full gate.

# Full CI gate: everything the workflow runs, in the same order.
ci: fmt-check clippy build test doc smoke stream-smoke tiles-smoke pipeline-smoke fold-smoke bench-smoke

# Format the whole workspace in place.
fmt:
    cargo fmt --all

# CI's format gate (check only).
fmt-check:
    cargo fmt --all --check

# CI's lint gate.
clippy:
    cargo clippy --locked --workspace --all-targets -- -D warnings

# Release build of every crate.
build:
    cargo build --locked --release --workspace

# Full test suite: unit, integration, property and doc tests.
test:
    cargo test --locked -q --workspace

# CI's rustdoc gate: every public item documented, no broken links.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --locked --no-deps --workspace

# Run the quickstart example end to end.
smoke:
    cargo run --locked --release --example quickstart

# Run the streaming (ccl-stream) example end to end.
stream-smoke:
    cargo run --locked --release --example stream_components

# Run the tile-grid spill (ccl-tiles) example end to end.
tiles-smoke:
    cargo run --locked --release --example tiles_outofcore

# Run the prefetch/pipeline (ccl-pipeline) example and a quick
# pipeline_demo sweep end to end.
pipeline-smoke:
    cargo run --locked --release --example pipeline_prefetch
    cargo run --locked --release -p ccl-bench --bin pipeline_demo -- --reps 1 --json /tmp/BENCH_pipeline_smoke.json

# Fused-vs-sequential accumulation equivalence: strip + tile analyzers,
# synchronous + pipelined, 1 and 4 threads, records compared field by
# field. Fast enough for every push.
fold-smoke:
    cargo run --locked --release -p ccl-bench --bin fold_smoke

# Compile all eleven criterion benches without running them.
bench-smoke:
    cargo bench --locked --no-run --workspace

# Run the criterion benches (shim harness; CCL_BENCH_MS bounds per-bench time).
bench:
    cargo bench --workspace

# Reproduce the paper's tables and figures (synthetic datasets) and
# refresh the results/BENCH_*.json perf snapshots.
repro:
    cargo run --release -p ccl-bench --bin repro_all

# Full-scale streaming acceptance run: 268 Mpixel in 1024-row bands,
# analysis identical to whole-image AREMSP, <= 2 bands resident.
stream-stress:
    cargo test --release -p ccl-stream --test stream_equivalence -- --ignored

# Full-scale tile-grid acceptance run: 100 Mpixel in 512x512 tiles with
# spill-to-disk output, <= 2 tile rows resident, exact reconstruction —
# synchronous and pipelined.
tiles-stress:
    cargo test --release -p ccl-tiles --test tiles_equivalence -- --ignored

# Full-scale staged-pipeline run: 67 Mpixel through the composed
# decode ∥ scan ∥ merge stack, <= 2 tile rows + carry resident, analysis
# identical to whole-image AREMSP.
pipeline-stress:
    cargo test --release -p ccl-pipeline --test pipeline_equivalence -- --ignored
