//! Offline `#[derive(Serialize)]` for the serde shim.
//!
//! Supports plain non-generic structs with named fields — the only shape
//! this workspace derives. The generated impl writes each field through
//! `serde::Serializer::begin_struct`. Written against `proc_macro` alone
//! (no `syn`/`quote`) because the build environment has no registry access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(id) = tok {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                body = iter.find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.clone()),
                    _ => None,
                });
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize) shim: expected `struct Name`");
    let body = body.expect("derive(Serialize) shim: expected named fields");

    let mut code = format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize(&self, __s: &mut ::serde::Serializer) {{\n        let mut __st = __s.begin_struct();\n"
    );
    for field in parse_field_names(body.stream()) {
        code.push_str(&format!(
            "        __st.field(\"{field}\", &self.{field});\n"
        ));
    }
    code.push_str("        __st.end();\n    }\n}\n");
    code.parse()
        .expect("derive(Serialize) shim: generated code failed to parse")
}

/// Extracts field names from the token stream of a braced field list,
/// skipping attributes (incl. doc comments), visibility, and types
/// (tracking `<`/`>` depth so commas inside generics don't split fields).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip `#[...]` attributes.
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        // Skip `pub` / `pub(...)`.
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(
                toks.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                toks.next();
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            Some(other) => {
                panic!("derive(Serialize) shim: unexpected token `{other}` in field list")
            }
        }
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}
