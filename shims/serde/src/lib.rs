//! Offline shim for the subset of [serde](https://crates.io/crates/serde)
//! this workspace uses: the [`Serialize`] trait plus `#[derive(Serialize)]`.
//!
//! Unlike real serde, this shim is not format-generic: [`Serializer`]
//! writes pretty-printed JSON directly (the only format the workspace
//! emits, via the `serde_json` shim). See `shims/README.md`.

pub use serde_derive::Serialize;

/// Types serializable to JSON through [`Serializer`].
pub trait Serialize {
    /// Writes `self` into `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// A pretty-printing JSON writer (two-space indent, like
/// `serde_json::to_string_pretty`).
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
    indent: usize,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the serializer, returning the JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Starts a JSON object; used by `#[derive(Serialize)]`.
    pub fn begin_struct(&mut self) -> StructSerializer<'_> {
        self.out.push('{');
        self.indent += 1;
        StructSerializer {
            s: self,
            any_fields: false,
        }
    }

    fn serialize_seq<'a, T, I>(&mut self, items: I)
    where
        T: Serialize + 'a,
        I: Iterator<Item = &'a T>,
    {
        let mut items = items.peekable();
        if items.peek().is_none() {
            self.out.push_str("[]");
            return;
        }
        self.out.push('[');
        self.indent += 1;
        let mut first = true;
        for item in items {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.newline_indent();
            item.serialize(self);
        }
        self.indent -= 1;
        self.newline_indent();
        self.out.push(']');
    }
}

/// In-progress JSON object writer returned by [`Serializer::begin_struct`].
pub struct StructSerializer<'a> {
    s: &'a mut Serializer,
    any_fields: bool,
}

impl StructSerializer<'_> {
    /// Writes one `"name": value` member.
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        if self.any_fields {
            self.s.out.push(',');
        }
        self.any_fields = true;
        self.s.newline_indent();
        self.s.write_escaped(name);
        self.s.out.push_str(": ");
        value.serialize(self.s);
    }

    /// Closes the object.
    pub fn end(self) {
        self.s.indent -= 1;
        if self.any_fields {
            self.s.newline_indent();
        }
        self.s.out.push('}');
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                if self.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats,
                    // matching serde_json's output.
                    s.out.push_str(&format!("{self:?}"));
                } else {
                    // serde_json maps non-finite floats to null.
                    s.out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.write_escaped(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.write_escaped(self);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_seq(self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_seq(self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_seq(self.iter());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.out.push_str("null"),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.out.push('[');
                s.indent += 1;
                let mut first = true;
                $(
                    if !first { s.out.push(','); }
                    first = false;
                    s.newline_indent();
                    self.$idx.serialize(s);
                )+
                let _ = first;
                s.indent -= 1;
                s.newline_indent();
                s.out.push(']');
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::{Serialize, Serializer};

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = Serializer::new();
        v.serialize(&mut s);
        s.into_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&1.0f64), "1.0");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&42u32), "42");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn sequences_and_tuples() {
        assert_eq!(to_json(&Vec::<u32>::new()), "[]");
        assert_eq!(to_json(&vec![1u32, 2]), "[\n  1,\n  2\n]");
        assert_eq!(to_json(&("x".to_string(), 1u32)), "[\n  \"x\",\n  1\n]");
    }

    #[test]
    fn structs_via_manual_impl() {
        struct P {
            x: u32,
            label: String,
        }
        impl Serialize for P {
            fn serialize(&self, s: &mut Serializer) {
                let mut st = s.begin_struct();
                st.field("x", &self.x);
                st.field("label", &self.label);
                st.end();
            }
        }
        let p = P {
            x: 7,
            label: "seven".into(),
        };
        assert_eq!(to_json(&p), "{\n  \"x\": 7,\n  \"label\": \"seven\"\n}");
    }
}
