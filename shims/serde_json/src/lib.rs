//! Offline shim for the subset of
//! [serde_json](https://crates.io/crates/serde_json) this workspace uses:
//! [`to_string_pretty`]. Rides on the `serde` shim's JSON-direct
//! [`serde::Serializer`]. See `shims/README.md`.

/// Serialization error. The shim's serializer is infallible, so this is
/// never produced; it exists so call sites can keep serde_json's `Result`
/// signature.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error (unreachable in shim)")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let mut s = serde::Serializer::new();
    value.serialize(&mut s);
    Ok(s.into_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_values() {
        let v = vec![vec!["a".to_string()], vec![]];
        assert_eq!(
            super::to_string_pretty(&v).unwrap(),
            "[\n  [\n    \"a\"\n  ],\n  []\n]"
        );
    }
}
