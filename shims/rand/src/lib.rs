//! Offline shim for the subset of the
//! [rand](https://crates.io/crates/rand) 0.9 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{random, random_range}`.
//!
//! `StdRng` here is a SplitMix64 generator: fully deterministic per seed
//! (which is all the synthetic dataset generators rely on), but its stream
//! differs from real rand's ChaCha12-based `StdRng`. See `shims/README.md`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait UniformInt: Copy {
    /// Widening conversion used for unbiased range reduction.
    fn to_u64(self) -> u64;
    /// Narrowing conversion back from the reduced offset.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift range reduction (Lemire); bias is negligible for the
    // small spans the dataset generators use.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + reduce(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        // Wrapping: the full-u64 domain makes `hi - lo + 1` overflow to 0.
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + reduce(rng, span))
    }
}

/// User-facing sampling methods, mirroring rand 0.9's `Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(42);
        let mut b = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(0..3u32);
            assert!(x < 3);
            let y: usize = rng.random_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
