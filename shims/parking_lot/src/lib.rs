//! Offline shim for the subset of
//! [parking_lot](https://crates.io/crates/parking_lot) this workspace uses:
//! a `Mutex` whose `lock` returns the guard directly (no poisoning).
//! Backed by [`std::sync::Mutex`]; see `shims/README.md`.

/// RAII guard; see [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison
    /// it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_is_exclusive_and_unpoisoned() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
