//! Offline shim for the subset of
//! [criterion](https://crates.io/crates/criterion) this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups with the usual
//! knobs, `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput` and
//! `BatchSize`.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short fixed loop (1 warm-up iteration, then until ~`CCL_BENCH_MS`
//! milliseconds — default 200 — or 25 iterations, whichever first) and
//! prints the mean wall time, plus derived throughput when configured.
//! Good enough to catch bench bit-rot and give ballpark numbers; use real
//! criterion for publishable measurements. See `shims/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Input volume processed per iteration, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Hint for how `iter_batched` should size batches (ignored by the shim;
/// every batch is a single iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Measurement state handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

fn budget() -> Duration {
    let ms = std::env::var("CCL_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

const MAX_ITERS: u64 = 25;

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, not timed
        let budget = budget();
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= budget || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, not timed
        let budget = budget();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= budget || self.iters >= MAX_ITERS {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted, ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored by the shim; use the
    /// `CCL_BENCH_MS` env var to change the shim's budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted, ignored by the shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        let mean = if b.iters > 0 {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let gib = n as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!("  {gib:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let melem = n as f64 / mean.as_secs_f64() / 1e6;
                format!("  {melem:8.3} Melem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{}/{}  mean {:>12.3?}  ({} iters){rate}",
            self.name, id.function, id.parameter, mean, b.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (for `harness = false`
/// bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("batched", 8), &8usize, |b, &n| {
            b.iter_batched(|| vec![1u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        std::env::set_var("CCL_BENCH_MS", "1");
        benches();
    }
}
