//! Offline shim for the subset of
//! [proptest](https://crates.io/crates/proptest) this workspace uses:
//! the `proptest!` macro, `prop_assert*`, the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_flat_map`, and the range / tuple /
//! `collection::vec` / `bool::ANY` / `num::*::ANY` strategies.
//!
//! Differences from real proptest (see `shims/README.md`):
//!
//! * cases are generated from a deterministic per-test seed (hash of the
//!   test name), so every run explores the same inputs;
//! * there is **no shrinking** — a failing case panics with the plain
//!   assert message rather than a minimized counterexample;
//! * `prop_assert*` panic immediately instead of returning `Err`.

/// Test-runner plumbing: the RNG driving generation and the run config.
pub mod test_runner {
    /// Deterministic RNG (SplitMix64) used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so each
        /// test gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi]` (inclusive).
        pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            // Wrapping: the full-u64 domain makes `hi - lo + 1` overflow to 0.
            let span = hi.wrapping_sub(lo).wrapping_add(1);
            if span == 0 {
                return self.next_u64();
            }
            lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to obtain a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Integer types whose ranges are strategies.
    pub trait RangeInt: Copy {
        /// Widening conversion for uniform reduction.
        fn to_u64(self) -> u64;
        /// Narrowing conversion back.
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl RangeInt for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize);

    impl<T: RangeInt> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
            assert!(lo < hi, "empty range strategy");
            T::from_u64(rng.in_range_u64(lo, hi - 1))
        }
    }

    impl<T: RangeInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
            assert!(lo <= hi, "empty range strategy");
            T::from_u64(rng.in_range_u64(lo, hi))
        }
    }

    macro_rules! impl_float_range_strategy {
        // Shift/denominator sized to the type's mantissa so the unit draw
        // stays strictly below 1.0 after the cast (a 53-bit integer cast
        // to f32 can round up to 2^53, which would yield exactly `end`).
        ($($t:ty => $shift:literal, $bits:literal);*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> $shift) as $t
                        / (1u64 << $bits) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32 => 40, 24; f64 => 11, 53);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification accepted by [`vec()`]: a fixed `usize`, a
    /// `Range<usize>` or a `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies (`num::u8::ANY`, …).
pub mod num {
    macro_rules! num_any_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// Strategies for the same-named primitive type.
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy generating arbitrary values of the type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Generates uniformly distributed values.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    num_any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// Everything a proptest-using test module needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; the
/// shim has no shrinking, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vecs() -> impl Strategy<Value = Vec<u8>> {
        (1usize..=4).prop_flat_map(|n| crate::collection::vec(crate::num::u8::ANY, n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 5usize..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn tuples_and_vec((w, h) in (1usize..=5, 1usize..=5), bits in crate::collection::vec(crate::bool::ANY, 0..25)) {
            prop_assert!(w >= 1 && h <= 5);
            prop_assert!(bits.len() < 25);
        }

        #[test]
        fn flat_map_respects_dependent_len(v in small_vecs()) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
