//! Offline shim for the subset of [rayon](https://crates.io/crates/rayon)
//! this workspace uses: `scope`/`spawn`, `current_num_threads`,
//! `ThreadPoolBuilder`/`ThreadPool::install`, and `par_iter`/`par_iter_mut`
//! with `for_each` on slices.
//!
//! Parallelism is real (scoped OS threads), but there is no work-stealing
//! pool: each `scope` or `for_each` spawns its own scoped threads. That
//! keeps the parallel *semantics* the PAREMSP tests assert while staying
//! dependency-free. See `shims/README.md`.

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads the "current pool" would use: the
/// [`ThreadPool::install`] override when inside one, otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A scope in which tasks can be spawned; mirrors `rayon::Scope` on top of
/// [`std::thread::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task running concurrently with the rest of the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Error returned by [`ThreadPoolBuilder::build`]; the shim never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .filter(|&n| n > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// A "pool" that records its size; [`install`](ThreadPool::install) makes
/// [`current_num_threads`] report that size inside the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Returns the pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool as the "current" pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(Some(self.num_threads))));
        op()
    }
}

/// Parallel iterator adapters (`par_iter`, `par_iter_mut`) for slices.
pub mod iter {
    use super::current_num_threads;

    /// Shared-reference parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    /// Mutable parallel iterator over a slice.
    pub struct ParIterMut<'a, T> {
        items: &'a mut [T],
    }

    /// Extension trait providing [`par_iter`](ParallelSliceExt::par_iter).
    pub trait ParallelSliceExt<T: Sync> {
        /// Parallel counterpart of `[T]::iter`.
        fn par_iter(&self) -> ParIter<'_, T>;
    }

    /// Mutable parallel iterator over fixed-size chunks of a slice.
    pub struct ParChunksMut<'a, T> {
        items: &'a mut [T],
        chunk_size: usize,
    }

    /// Extension trait providing
    /// [`par_iter_mut`](ParallelSliceMutExt::par_iter_mut) and
    /// [`par_chunks_mut`](ParallelSliceMutExt::par_chunks_mut).
    pub trait ParallelSliceMutExt<T: Send> {
        /// Parallel counterpart of `[T]::iter_mut`.
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

        /// Parallel counterpart of `[T]::chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Sync> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { items: self }
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunksMut {
                items: self,
                chunk_size,
            }
        }
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Applies `f` to every element, splitting the slice across the
        /// current thread count.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            let len = self.items.len();
            let threads = current_num_threads().clamp(1, len.max(1));
            if threads <= 1 || len <= 1 {
                self.items.iter().for_each(f);
                return;
            }
            let chunk = len.div_ceil(threads);
            std::thread::scope(|s| {
                for part in self.items.chunks(chunk) {
                    let f = &f;
                    s.spawn(move || part.iter().for_each(f));
                }
            });
        }
    }

    impl<T: Send> ParIterMut<'_, T> {
        /// Applies `f` to every element, splitting the slice across the
        /// current thread count.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            let len = self.items.len();
            let threads = current_num_threads().clamp(1, len.max(1));
            if threads <= 1 || len <= 1 {
                self.items.iter_mut().for_each(f);
                return;
            }
            let chunk = len.div_ceil(threads);
            std::thread::scope(|s| {
                for part in self.items.chunks_mut(chunk) {
                    let f = &f;
                    s.spawn(move || part.iter_mut().for_each(f));
                }
            });
        }
    }
    impl<T: Send> ParChunksMut<'_, T> {
        /// Applies `f` to every chunk, distributing chunks across the
        /// current thread count.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            let num_chunks = self.items.len().div_ceil(self.chunk_size.max(1));
            let threads = current_num_threads().clamp(1, num_chunks.max(1));
            if threads <= 1 || num_chunks <= 1 {
                self.items.chunks_mut(self.chunk_size).for_each(f);
                return;
            }
            // Hand each thread a contiguous run of whole chunks.
            let chunks_per_thread = num_chunks.div_ceil(threads);
            std::thread::scope(|s| {
                for part in self.items.chunks_mut(chunks_per_thread * self.chunk_size) {
                    let f = &f;
                    let chunk_size = self.chunk_size;
                    s.spawn(move || part.chunks_mut(chunk_size).for_each(f));
                }
            });
        }
    }
}

/// Rayon-style prelude: brings the parallel-iterator traits into scope.
pub mod prelude {
    pub use crate::iter::{ParallelSliceExt, ParallelSliceMutExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawn_runs_all_tasks() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<usize> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_iter_observes_every_element() {
        let v: Vec<usize> = (0..257).collect();
        let sum = AtomicUsize::new(0);
        v[1..].par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..257).sum::<usize>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        assert_ne!(super::current_num_threads(), 0);
    }
}
