//! Cross-crate integration: every labeling algorithm must produce
//! bit-identical output on every synthetic generator family.

use paremsp::core::seq::flood_fill_label;
use paremsp::core::Algorithm;
use paremsp::datasets::synth::adversarial::{comb, fine_checkerboard, serpentine, spiral};
use paremsp::datasets::synth::blobs::{blob_field, BlobParams};
use paremsp::datasets::synth::landcover::{landcover, LandcoverParams};
use paremsp::datasets::synth::noise::bernoulli;
use paremsp::datasets::synth::shapes::{shape_scene, text_page};
use paremsp::datasets::synth::texture::{checkerboard, grating, rings, stripes};
use paremsp::image::BinaryImage;

fn gallery() -> Vec<(String, BinaryImage)> {
    let mut out: Vec<(String, BinaryImage)> = vec![
        ("spiral".into(), spiral(61)),
        ("serpentine".into(), serpentine(57, 44)),
        ("comb".into(), comb(63, 41, 20)),
        ("fine-checker".into(), fine_checkerboard(49, 37)),
        ("stripes".into(), stripes(71, 53, 7, 3, (1, 1))),
        ("checker4".into(), checkerboard(64, 48, 4)),
        ("grating".into(), grating(80, 60, 0.3, 0.4, 0.2)),
        ("rings".into(), rings(66, 66, 7.0)),
        ("shapes".into(), shape_scene(90, 70, 25, 5)),
        ("text".into(), text_page(96, 72, 1, 6)),
        (
            "blobs".into(),
            blob_field(
                100,
                80,
                BlobParams {
                    coverage: 0.35,
                    min_radius: 2,
                    max_radius: 9,
                },
                7,
            ),
        ),
        (
            "landcover".into(),
            landcover(
                96,
                64,
                LandcoverParams {
                    base_scale: 16.0,
                    octaves: 4,
                    persistence: 0.5,
                },
                8,
            ),
        ),
    ];
    for (i, &density) in [0.05, 0.2, 0.45, 0.6, 0.95].iter().enumerate() {
        out.push((
            format!("noise-{density}"),
            bernoulli(83, 61, density, 100 + i as u64),
        ));
    }
    out
}

#[test]
fn all_sequential_algorithms_agree_on_gallery() {
    use paremsp::core::algorithm::Numbering;
    for (name, img) in gallery() {
        // flood fill's numbering is canonical (raster order)
        let raster = flood_fill_label(&img);
        let pair = Algorithm::Aremsp.run(&img);
        assert_eq!(
            raster.canonicalized(),
            pair.canonicalized(),
            "aremsp partition on {name}"
        );
        for algo in Algorithm::all_sequential() {
            let out = algo.run(&img);
            match algo.numbering() {
                Numbering::Raster => {
                    assert_eq!(out, raster, "{} on {name}", algo.name())
                }
                Numbering::PairScan => {
                    assert_eq!(out, pair, "{} on {name}", algo.name())
                }
            }
        }
    }
}

#[test]
fn paremsp_agrees_on_gallery_across_thread_counts() {
    for (name, img) in gallery() {
        // same scan family: PAREMSP must equal AREMSP bit for bit
        let reference = Algorithm::Aremsp.run(&img);
        for threads in [1, 2, 3, 4, 8, 24] {
            assert_eq!(
                Algorithm::Paremsp(threads).run(&img),
                reference,
                "paremsp({threads}) on {name}"
            );
        }
        assert_eq!(
            reference.canonicalized(),
            flood_fill_label(&img),
            "partition on {name}"
        );
    }
}

#[test]
fn rayon_backend_agrees_on_gallery() {
    use paremsp::core::par::paremsp_rayon;
    for (name, img) in gallery() {
        assert_eq!(paremsp_rayon(&img), Algorithm::Aremsp.run(&img), "{name}");
    }
}

#[test]
fn verify_labeling_accepts_every_algorithm_output() {
    use paremsp::core::verify::verify_labeling;
    use paremsp::image::Connectivity;
    for (name, img) in gallery().into_iter().take(6) {
        for algo in [Algorithm::Aremsp, Algorithm::Paremsp(4)] {
            let labels = algo.run(&img);
            verify_labeling(&img, &labels, Connectivity::Eight)
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", algo.name()));
        }
    }
}

#[test]
fn component_statistics_are_consistent() {
    for (name, img) in gallery().into_iter().take(8) {
        let labels = Algorithm::Aremsp.run(&img);
        let sizes = labels.component_sizes();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            img.len(),
            "{name}: sizes partition the image"
        );
        assert_eq!(sizes[0], img.len() - img.count_foreground(), "{name}");
        let boxes = labels.bounding_boxes();
        assert_eq!(boxes.len() as u32, labels.num_components(), "{name}");
        for (i, b) in boxes.iter().enumerate() {
            assert!(b.0 <= b.2 && b.1 <= b.3, "{name}: box {i} degenerate");
            let area = (b.2 - b.0 + 1) * (b.3 - b.1 + 1);
            assert!(
                sizes[i + 1] <= area,
                "{name}: component {} larger than its bbox",
                i + 1
            );
        }
    }
}
