//! Exhaustive oracle: every algorithm against BFS flood fill on *all*
//! binary images of small sizes. This is the test that pins down the
//! scan-phase case analyses (including the paper's two pseudocode
//! fixes, DESIGN.md §6) — any missed merge case must show up here.
//!
//! All algorithms are checked in a single pass per image so the 2^16
//! 4×4 space stays fast; `[profile.test]` enables light optimization.

use paremsp::core::algorithm::Numbering;
use paremsp::core::seq::flood_fill_label;
use paremsp::core::Algorithm;
use paremsp::image::BinaryImage;

fn image_from_bits(width: usize, height: usize, bits: u32) -> BinaryImage {
    BinaryImage::from_fn(width, height, |r, c| (bits >> (r * width + c)) & 1 == 1)
}

/// Checks `algorithms` against the oracle on every image of the given
/// shape, computing each reference exactly once per image.
fn exhaustive_check(width: usize, height: usize, algorithms: &[Algorithm]) {
    let n = width * height;
    assert!(n <= 20, "too many pixels for exhaustive enumeration");
    let needs_pair = algorithms
        .iter()
        .any(|a| a.numbering() == Numbering::PairScan);
    for bits in 0..(1u32 << n) {
        let img = image_from_bits(width, height, bits);
        // flood fill's raster numbering is the canonical form
        let reference = flood_fill_label(&img);
        let pair_reference = if needs_pair {
            let pr = Algorithm::Aremsp.run(&img);
            assert_eq!(
                pr.canonicalized(),
                reference,
                "aremsp partition differs on {width}x{height} bits={bits:#x}\n{img:?}"
            );
            Some(pr)
        } else {
            None
        };
        for algo in algorithms {
            let out = algo.run(&img);
            let expected = match algo.numbering() {
                Numbering::Raster => &reference,
                Numbering::PairScan => pair_reference.as_ref().unwrap(),
            };
            assert_eq!(
                &out,
                expected,
                "{} differs on {width}x{height} bits={bits:#x}\n{img:?}",
                algo.name()
            );
        }
    }
}

#[test]
fn exhaustive_4x4_all_sequential() {
    // one pass over all 65536 images, every sequential algorithm at once
    exhaustive_check(
        4,
        4,
        &[
            Algorithm::Ccllrpc,
            Algorithm::Cclremsp,
            Algorithm::Arun,
            Algorithm::Aremsp,
            Algorithm::RunBased,
            Algorithm::Multipass,
        ],
    );
}

#[test]
fn exhaustive_3x4_paremsp() {
    // threaded algorithm on a smaller exhaustive space (4096 images);
    // chunking differs between 2 and 3 threads, so check both
    exhaustive_check(3, 4, &[Algorithm::Paremsp(2), Algorithm::Paremsp(3)]);
}

#[test]
fn exhaustive_5x3_and_3x5() {
    // rectangular shapes exercise the row-pair boundaries differently
    let algos = [Algorithm::Aremsp, Algorithm::Arun, Algorithm::Cclremsp];
    exhaustive_check(5, 3, &algos);
    exhaustive_check(3, 5, &algos);
}

#[test]
fn exhaustive_2x8_tall_pairs() {
    // height 8 = four row pairs; PAREMSP gets up to 4 chunks
    exhaustive_check(2, 8, &[Algorithm::Aremsp, Algorithm::Paremsp(4)]);
}

#[test]
fn exhaustive_8x2_wide_single_pair() {
    exhaustive_check(8, 2, &[Algorithm::Aremsp, Algorithm::Arun]);
}

#[test]
fn exhaustive_1xn_and_nx1() {
    // single-row and single-column images: pair-scan and raster numbering
    // coincide (one pixel per column step), so exact equality holds for
    // every algorithm here.
    for n in 1..=14 {
        for bits in 0..(1u32 << n) {
            let row = image_from_bits(n, 1, bits);
            let col = image_from_bits(1, n, bits);
            for img in [row, col] {
                let reference = flood_fill_label(&img);
                for algo in [Algorithm::Aremsp, Algorithm::Ccllrpc] {
                    assert_eq!(algo.run(&img), reference, "{} on {img:?}", algo.name());
                }
            }
        }
    }
}
