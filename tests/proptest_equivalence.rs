//! Property-based tests (proptest) over the core invariants:
//!
//! * all labeling algorithms are bit-identical on arbitrary images,
//! * PAREMSP is invariant under thread count and merger choice,
//! * union-find variants induce identical partitions under arbitrary
//!   union scripts, and flatten renumbers consecutively,
//! * Netpbm serialization round-trips.

use proptest::prelude::*;

use paremsp::core::seq::{aremsp, flood_fill_label};
use paremsp::core::Algorithm;
use paremsp::image::io::pbm;
use paremsp::image::BinaryImage;
use paremsp::unionfind::testing::partition_of;
use paremsp::unionfind::{HeEquivalence, MinUF, RankUF, RemSP, SizeUF, UnionFind};

/// Arbitrary small binary image: dimensions 1..=24, arbitrary pixels.
fn arb_image() -> impl Strategy<Value = BinaryImage> {
    (1usize..=24, 1usize..=24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::bool::ANY, w * h)
            .prop_map(move |bits| BinaryImage::from_fn(w, h, |r, c| bits[r * w + c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_algorithms_match_flood_fill(img in arb_image()) {
        use paremsp::core::algorithm::Numbering;
        // flood fill's raster numbering is the canonical form
        let raster = flood_fill_label(&img);
        let pair = Algorithm::Aremsp.run(&img);
        prop_assert_eq!(&pair.canonicalized(), &raster, "aremsp partition");
        for algo in Algorithm::all_sequential() {
            let out = algo.run(&img);
            let expected = match algo.numbering() {
                Numbering::Raster => &raster,
                Numbering::PairScan => &pair,
            };
            prop_assert_eq!(&out, expected, "{}", algo.name());
        }
    }

    #[test]
    fn paremsp_invariant_under_threads_and_merger(
        img in arb_image(),
        threads in 1usize..=9,
        cas in proptest::bool::ANY,
        stripes in 1usize..=64,
        parallel_flatten in proptest::bool::ANY,
    ) {
        use paremsp::core::par::{paremsp_with, MergerKind, ParemspConfig};
        let cfg = ParemspConfig {
            threads,
            merger: if cas { MergerKind::Cas } else { MergerKind::Locked },
            lock_stripes: Some(stripes),
            parallel_flatten,
        };
        let (out, _) = paremsp_with(&img, &cfg);
        prop_assert_eq!(out, aremsp(&img));
    }

    #[test]
    fn labeling_is_a_valid_partition(img in arb_image()) {
        let labels = aremsp(&img);
        // component sizes partition the pixels
        let sizes = labels.component_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), img.len());
        // labels are exactly 0..=num_components
        let max = labels.as_slice().iter().max().copied().unwrap_or(0);
        prop_assert!(max <= labels.num_components());
        for (l, &size) in sizes.iter().enumerate().skip(1) {
            prop_assert!(size > 0, "label {} empty", l);
        }
    }

    #[test]
    fn unionfind_variants_agree(
        n in 1u32..40,
        unions in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
    ) {
        let unions: Vec<(u32, u32)> =
            unions.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let reference = partition_of::<RemSP>(n, &unions);
        prop_assert_eq!(&partition_of::<RankUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<SizeUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<MinUF>(n, &unions), &reference);
        prop_assert_eq!(&partition_of::<HeEquivalence>(n, &unions), &reference);
    }

    #[test]
    fn flatten_is_consecutive_and_order_preserving(
        n in 2u32..40,
        unions in proptest::collection::vec((1u32..40, 1u32..40), 0..60),
    ) {
        // element 0 reserved as background, as in CCL usage
        let unions: Vec<(u32, u32)> = unions
            .into_iter()
            .map(|(a, b)| (1 + a % (n - 1), 1 + b % (n - 1)))
            .collect();
        let mut uf = RemSP::new();
        for _ in 0..n {
            uf.make_set();
        }
        for &(x, y) in &unions {
            uf.union(x, y);
        }
        let k = uf.flatten();
        prop_assert_eq!(uf.resolve(0), 0);
        // final labels are exactly 1..=k and appear in first-member order
        let finals: Vec<u32> = (1..n).map(|x| uf.resolve(x)).collect();
        let mut seen_order = Vec::new();
        for &f in &finals {
            prop_assert!(f >= 1 && f <= k);
            if !seen_order.contains(&f) {
                seen_order.push(f);
            }
        }
        let expected: Vec<u32> = (1..=k).collect();
        prop_assert_eq!(seen_order, expected, "labels not in first-member order");
    }

    #[test]
    fn pbm_round_trip(img in arb_image()) {
        prop_assert_eq!(&pbm::read(&pbm::write_binary(&img)).unwrap(), &img);
        prop_assert_eq!(&pbm::read(&pbm::write_ascii(&img)).unwrap(), &img);
    }

    #[test]
    fn transpose_commutes_with_labeling(img in arb_image()) {
        // number of components is invariant under transposition
        let a = aremsp(&img).num_components();
        let b = aremsp(&img.transposed()).num_components();
        prop_assert_eq!(a, b);
    }
}
