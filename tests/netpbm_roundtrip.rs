//! End-to-end pipeline: generate → serialize (Netpbm) → parse → label →
//! verify, across formats.

use paremsp::core::seq::aremsp;
use paremsp::core::verify::verify_labeling;
use paremsp::datasets::synth::landcover::{landcover, LandcoverParams};
use paremsp::datasets::synth::noise::bernoulli;
use paremsp::image::io::{pbm, pgm, ppm};
use paremsp::image::threshold::{im2bw, otsu_level};
use paremsp::image::{Connectivity, GrayImage, RgbImage};

#[test]
fn binary_pipeline_through_pbm() {
    let img = bernoulli(97, 71, 0.4, 5);
    for bytes in [pbm::write_ascii(&img), pbm::write_binary(&img)] {
        let parsed = pbm::read(&bytes).expect("parse");
        assert_eq!(parsed, img);
        let labels = aremsp(&parsed);
        verify_labeling(&parsed, &labels, Connectivity::Eight).expect("valid labeling");
    }
}

#[test]
fn grayscale_pipeline_through_pgm() {
    let gray = landcover(120, 90, LandcoverParams::default(), 9);
    // promote the binary mask to a grayscale image (0 / 255)
    let gray_img = GrayImage::from_fn(120, 90, |r, c| gray.get(r, c) * 255);
    for bytes in [pgm::write_ascii(&gray_img), pgm::write_binary(&gray_img)] {
        let parsed = pgm::read(&bytes).expect("parse");
        assert_eq!(parsed, gray_img);
        let bw = im2bw(&parsed, 0.5);
        assert_eq!(bw, gray);
    }
}

#[test]
fn color_pipeline_matches_paper_figure3() {
    // RGB scene -> rgb2gray -> im2bw(0.5) -> label, with PPM round trips
    let rgb = RgbImage::from_fn(80, 60, |r, c| {
        if (r / 10 + c / 10) % 2 == 0 {
            [250, 240, 230]
        } else {
            [20, 30, 40]
        }
    });
    let bytes = ppm::write_binary(&rgb);
    let parsed = ppm::read(&bytes).expect("parse");
    assert_eq!(parsed, rgb);
    let bw = im2bw(&parsed.to_gray(), 0.5);
    // bright cells are foreground, dark cells background
    assert_eq!(bw.get(0, 0), 1);
    assert_eq!(bw.get(0, 10), 0);
    let labels = aremsp(&bw);
    // 8-connectivity joins diagonal bright cells into one component
    assert_eq!(labels.num_components(), 1);
}

#[test]
fn otsu_level_binarizes_like_fixed_threshold_on_bimodal() {
    let gray = GrayImage::from_fn(64, 64, |r, _| if r < 32 { 30 } else { 220 });
    let level = otsu_level(&gray);
    let bw = im2bw(&gray, level);
    assert_eq!(bw, im2bw(&gray, 0.5));
}

#[test]
fn label_colormap_is_parseable_and_consistent() {
    let img = bernoulli(50, 40, 0.5, 13);
    let labels = aremsp(&img);
    let bytes = ppm::write_label_colormap(labels.as_slice(), 50, 40);
    let rendered = ppm::read(&bytes).expect("parse");
    // same label -> same color; background -> black
    for r in 0..40 {
        for c in 0..50 {
            if labels.get(r, c) == 0 {
                assert_eq!(rendered.get(r, c), [0, 0, 0]);
            }
        }
    }
}
