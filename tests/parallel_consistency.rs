//! Concurrency-focused integration tests: PAREMSP determinism, merger
//! equivalence under contention, chunk-boundary coverage.

use ::paremsp::core::par::{paremsp, paremsp_with, MergerKind, ParemspConfig};
use ::paremsp::core::seq::aremsp;
use ::paremsp::datasets::synth::adversarial::comb;
use ::paremsp::datasets::synth::noise::bernoulli;
use ::paremsp::image::BinaryImage;

#[test]
fn dense_thread_sweep_matches_sequential() {
    let img = bernoulli(127, 93, 0.5, 1);
    let seq = aremsp(&img);
    for threads in 1..=32 {
        assert_eq!(paremsp(&img, threads), seq, "{threads} threads");
    }
}

#[test]
fn mergers_agree_under_heavy_boundary_contention() {
    // comb with the bar on a chunk boundary: every tooth merges at the
    // same row, all threads hammering overlapping label chains.
    for bar_row in [0, 15, 16, 29] {
        let img = comb(257, 30, bar_row);
        let seq = aremsp(&img);
        for merger in [MergerKind::Locked, MergerKind::Cas] {
            for stripes in [1, 2, 64] {
                let cfg = ParemspConfig {
                    threads: 15,
                    merger,
                    lock_stripes: Some(stripes),
                    parallel_flatten: false,
                };
                let (out, _) = paremsp_with(&img, &cfg);
                assert_eq!(out, seq, "bar={bar_row} {merger:?} stripes={stripes}");
            }
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // PAREMSP output must be deterministic despite nondeterministic merge
    // interleavings (final labels depend only on the partition).
    let img = bernoulli(301, 211, 0.55, 3);
    let first = paremsp(&img, 24);
    for _ in 0..20 {
        assert_eq!(paremsp(&img, 24), first);
    }
}

#[test]
fn every_density_extreme() {
    for (name, img) in [
        ("empty", BinaryImage::zeros(100, 67)),
        ("full", BinaryImage::ones(100, 67)),
        ("one-pixel", {
            let mut i = BinaryImage::zeros(100, 67);
            i.set(66, 99, true);
            i
        }),
        ("left-column", BinaryImage::from_fn(100, 67, |_, c| c == 0)),
        ("bottom-row", BinaryImage::from_fn(100, 67, |r, _| r == 66)),
    ] {
        let seq = aremsp(&img);
        for threads in [2, 7, 24] {
            assert_eq!(paremsp(&img, threads), seq, "{name} at {threads} threads");
        }
    }
}

#[test]
fn labels_cross_many_boundaries() {
    // vertical lines touch every chunk boundary simultaneously
    let img = BinaryImage::from_fn(64, 96, |_, c| c % 3 == 0);
    let seq = aremsp(&img);
    assert_eq!(seq.num_components(), 22);
    for threads in [2, 4, 8, 16, 24, 48] {
        assert_eq!(paremsp(&img, threads), seq, "{threads} threads");
    }
}

#[test]
fn more_threads_than_rows() {
    let img = bernoulli(64, 3, 0.5, 9);
    let seq = aremsp(&img);
    assert_eq!(paremsp(&img, 100), seq);
}

#[test]
fn phase_timings_sum_to_total() {
    let img = bernoulli(256, 256, 0.5, 11);
    let (_, t) = paremsp_with(&img, &ParemspConfig::with_threads(8));
    let sum = t.scan + t.merge + t.flatten + t.relabel;
    assert_eq!(sum, t.total());
    assert!(t.local_plus_merge() <= t.total());
}
