//! # paremsp
//!
//! Umbrella crate for the PAREMSP reproduction — *"A New Parallel Algorithm
//! for Two-Pass Connected Component Labeling"* (Gupta, Palsetia, Patwary,
//! Agrawal, Choudhary; IPPS 2014).
//!
//! This crate re-exports the six component crates under stable module
//! names so applications need a single dependency:
//!
//! * [`image`] — binary/gray/RGB rasters, thresholding (`im2bw`), Netpbm
//!   I/O (whole-buffer and incremental band decoding)
//! * [`unionfind`] — REM's union-find with splicing plus every comparison
//!   variant, and the parallel mergers
//! * [`core`] — the labeling algorithms: CCLLRPC, CCLREMSP, ARUN, AREMSP
//!   (sequential) and PAREMSP (parallel)
//! * [`datasets`] — synthetic stand-ins for the paper's Aerial / Texture /
//!   Miscellaneous / NLCD datasets (whole-image and streamed), and the
//!   measurement harness
//! * [`stream`] — bounded-memory streaming labeling: row-band sources,
//!   the strip labeler with on-the-fly component analysis, and labeled
//!   strip output — gigapixel rasters in O(band) memory
//! * [`tiles`] — the 2-D generalization: tile-grid sources, the grid
//!   labeler (vertical *and* horizontal seam merges over a tile row),
//!   and spill-to-disk label output with a sidecar merge table — both
//!   input and output bounded by O(tile row)
//! * [`pipeline`] — prefetching source adapters (decode on a worker
//!   thread, bounded double buffer) and, together with the `*_pipelined`
//!   drivers in [`tiles`], a decode ∥ scan ∥ merge execution pipeline
//!   with bit-identical output
//!
//! ## Quickstart
//!
//! ```
//! // Leading `::` disambiguates the crate from the `paremsp` *function*
//! // being imported out of it.
//! use ::paremsp::prelude::{aremsp, labelings_equivalent, paremsp, BinaryImage};
//!
//! // A small scene: three 8-connected components. (Rows separated by
//! // spaces — rustdoc treats lines *starting* with `#` specially.)
//! let img = BinaryImage::parse("##..## ##..## ...... .##...");
//!
//! // Label with the paper's best sequential algorithm…
//! let seq = aremsp(&img);
//! assert_eq!(seq.num_components(), 3);
//!
//! // …or in parallel with PAREMSP.
//! let par = paremsp(&img, 4);
//! assert_eq!(par.num_components(), 3);
//! assert!(labelings_equivalent(&seq, &par));
//! ```

pub use ccl_core as core;
pub use ccl_datasets as datasets;
pub use ccl_image as image;
pub use ccl_pipeline as pipeline;
pub use ccl_stream as stream;
pub use ccl_tiles as tiles;
pub use ccl_unionfind as unionfind;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ccl_core::analysis::{
        count_holes, count_holes_per_label, euler_number, keep_largest_component,
        region_properties, remove_small_components,
    };
    pub use ccl_core::label::LabelImage;
    pub use ccl_core::par::{
        multipass_parallel, paremsp, paremsp_rayon, paremsp_with, MergerKind, ParemspConfig,
    };
    pub use ccl_core::seq::{
        aremsp, arun, ccllrpc, cclremsp, contour_label, flood_fill_label, label_four_connectivity,
        label_grayscale, multipass, run_based,
    };
    pub use ccl_core::verify::{labelings_equivalent, verify_labeling};
    pub use ccl_core::Algorithm;
    pub use ccl_image::threshold::im2bw;
    pub use ccl_image::{BinaryImage, Connectivity, GrayImage, RgbImage};
    pub use ccl_pipeline::{PacedRows, PacedTiles, PipelineError, PrefetchRows, PrefetchTiles};
    pub use ccl_stream::{
        analyze_stream, analyze_stream_pipelined, label_stream, label_stream_pipelined,
        stream_to_label_image, stream_to_label_image_pipelined, ComponentRecord, ComponentSink,
        FoldMode, MemorySource, OwnedMemorySource, RowSource, StreamStats, StripConfig,
        StripLabeler,
    };
    pub use ccl_tiles::{
        analyze_tiles, analyze_tiles_pipelined, label_tiles, label_tiles_pipelined,
        read_spilled_label_image, spill_tiles, spill_tiles_pipelined, tiles_to_label_image,
        tiles_to_label_image_pipelined, GridSource, SpillFormat, TileGridConfig, TileGridLabeler,
        TileGridStats, TileSource,
    };
}
